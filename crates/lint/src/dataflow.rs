//! Dataflow-lite intraprocedural analysis over fn-body token streams.
//!
//! One extra pass per function body, walking the same scrubbed token
//! stream the parser already produced. It maintains a *binding table* —
//! local name → coarse type class — fed by parameter type annotations,
//! `let` type ascriptions, and `Type::ctor(..)` initializers, and uses
//! it to answer the questions the three hot-path rules ask:
//!
//! * **Allocation sites** (`alloc-in-hot-path`): heap-container
//!   constructors (`Vec::new`, `String::with_capacity`, `Box::new`,
//!   ...), allocating macros (`format!`, `vec!`), allocating methods
//!   (`.to_string()`, `.collect()`, ...), `.clone()` on a receiver the
//!   table resolves to a heap-owning local, and `.push(..)` onto a
//!   *locally built* heap buffer. Pushes onto parameters, fields, and
//!   destructured scratch (`scratch.truths.push(..)`) are sanctioned —
//!   that is exactly the `SweepScratch` reuse idiom the rule protects.
//! * **Purity hazards** (`cache-purity`): interior-mutable types,
//!   locks, atomics, `thread_local!`, local `static` items, wall-clock
//!   reads, nondeterministic RNG seeding, and I/O. Sites with
//!   [`PuritySite::shared`] set are the subset the
//!   `shared-state-escape` rule cares about.
//! * **Receiver-typed hash iteration** (`determinism-taint`): an
//!   iteration method only counts as a hash-order hazard when its
//!   receiver *resolves* to a `HashMap`/`HashSet` binding, or when the
//!   method name alone implies a keyed container (`.keys()`,
//!   `.values()`) and the body mentions a hash type. This replaces the
//!   earlier per-body heuristic ("a hash type appears somewhere AND an
//!   iteration method appears somewhere"), which fired on functions
//!   that looked up a `HashMap` but iterated a `Vec`.
//!
//! Approximations, deliberately: the table is flat (shadowing takes
//! the last writer; block scoping is ignored), field types are opaque
//! (`self.buf.push(..)` never resolves), and flows through returns or
//! collections are invisible. Every consumer of these facts treats an
//! unresolved receiver conservatively in whichever direction keeps the
//! rule's false positives down; see `DESIGN.md` §10.

use std::collections::BTreeMap;

use crate::parser::{DetHazard, FnItem, Tok, Token};

/// Coarse type classification for a local binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BindClass {
    /// Heap-owning std container or smart pointer, hash-ordered.
    Hash,
    /// Heap-owning std container or smart pointer, deterministic order.
    Heap,
    /// A `mira-units` newtype.
    Unit,
    /// A lock guard (`MutexGuard`, `RwLockReadGuard`, `RwLockWriteGuard`
    /// annotation, or a `lock()/read()/write()` initializer).
    Guard,
    /// Annotated with something else (known, but none of the above).
    Other,
}

/// Where a binding came from — pushes onto locally built buffers are
/// allocation-adjacent; pushes onto parameters are the scratch-reuse
/// idiom.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Origin {
    /// Function parameter (caller-owned storage).
    Param,
    /// `let`-bound local.
    Local,
}

/// One allocation site in a function body.
#[derive(Debug, Clone)]
pub struct AllocSite {
    /// 1-based line.
    pub line: usize,
    /// What was matched (`Vec::with_capacity`, `format! macro`, ...).
    pub what: String,
}

/// One purity hazard in a function body.
#[derive(Debug, Clone)]
pub struct PuritySite {
    /// 1-based line.
    pub line: usize,
    /// What was matched.
    pub what: &'static str,
    /// Interior-mutable or static state that must not be reachable
    /// from sweep worker closures (`shared-state-escape`); locks and
    /// atomics are excluded — they are the sanctioned slot-per-shard
    /// discipline.
    pub shared: bool,
}

/// How a lock was acquired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcqKind {
    /// `Mutex::lock` (exclusive).
    Lock,
    /// `RwLock::read` (shared).
    Read,
    /// `RwLock::write` (exclusive).
    Write,
}

/// One lock acquisition in a fn body: a `let`-bound guard live until
/// `end_line` (end of scope, `drop(guard)`, or a shadowing rebind), or
/// a statement temporary (`end_line == line`).
#[derive(Debug, Clone)]
pub struct GuardSpan {
    /// Binding name; empty for temporaries and `match` scrutinees.
    pub name: String,
    /// Lock identity: the receiver ident of the acquiring call
    /// (`"stats"` for `self.stats.lock()`), or — when [`Self::via_call`]
    /// — the helper method name pending interprocedural resolution.
    pub lock: String,
    /// Acquired through a call to a guard-returning workspace fn
    /// (`self.lock_stats()`); resolved by the concurrency pass.
    pub via_call: bool,
    /// Acquisition mode (placeholder [`AcqKind::Lock`] while
    /// [`Self::via_call`] is unresolved).
    pub kind: AcqKind,
    /// 1-based acquisition line.
    pub line: usize,
    /// 1-based last line on which the guard is live.
    pub end_line: usize,
}

impl GuardSpan {
    /// Whether a body line falls inside the live span, excluding the
    /// acquisition line itself (same-statement chains are not "across"
    /// the guard).
    #[must_use]
    pub fn covers(&self, line: usize) -> bool {
        line > self.line && line <= self.end_line
    }
}

/// One `Ordering::X` argument to an atomic operation.
#[derive(Debug, Clone)]
pub struct OrderingSite {
    /// 1-based line.
    pub line: usize,
    /// `Relaxed` / `Acquire` / `Release` / `AcqRel` / `SeqCst`.
    pub ordering: String,
    /// The atomic method consuming it (`load`, `store`, `fetch_add`,
    /// ...); empty when not attributable.
    pub op: String,
    /// The call feeds an `if`/`while` condition directly — a `Relaxed`
    /// load here gates control flow on unsynchronized state.
    pub gates_branch: bool,
}

/// One `thread::spawn(..)` producing a `JoinHandle`.
#[derive(Debug, Clone)]
pub struct SpawnSite {
    /// 1-based line.
    pub line: usize,
    /// `.join()` was observed — chained on the call or later on the
    /// `let`-bound handle.
    pub joined: bool,
}

/// One potentially blocking call: socket/console I/O, `accept`,
/// channel `recv`, thread `join`, `sleep`.
#[derive(Debug, Clone)]
pub struct BlockingSite {
    /// 1-based line.
    pub line: usize,
    /// What was matched (`.read_line()`, `thread::sleep`, ...).
    pub what: String,
}

/// Heap-owning std types whose constructors allocate.
const HEAP_TYPES: [&str; 13] = [
    "Arc",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "Box",
    "HashMap",
    "HashSet",
    "OsString",
    "PathBuf",
    "Rc",
    "String",
    "Vec",
    "VecDeque",
];

/// The subset of [`HEAP_TYPES`] with nondeterministic iteration order.
const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];

/// Constructor-ish associated fns on [`HEAP_TYPES`] that allocate (or
/// stand for an allocation the rule should pin to a source line).
const CTOR_METHODS: [&str; 5] = ["default", "from", "from_iter", "new", "with_capacity"];

/// Method calls that allocate regardless of receiver.
const ALLOC_METHODS: [&str; 6] = [
    "collect",
    "into_owned",
    "repeat",
    "to_owned",
    "to_string",
    "to_vec",
];

/// Macros that allocate.
const ALLOC_MACROS: [&str; 2] = ["format", "vec"];

/// Iteration methods that make `HashMap`/`HashSet` order observable.
const HASH_ITER_METHODS: [&str; 8] = [
    "drain",
    "into_iter",
    "into_keys",
    "iter",
    "keys",
    "retain",
    "values",
    "values_mut",
];

/// The subset of [`HASH_ITER_METHODS`] whose name alone implies a
/// keyed container — used as a fallback when the receiver does not
/// resolve (fields, call results).
const KEYED_ITER_METHODS: [&str; 4] = ["into_keys", "keys", "values", "values_mut"];

/// Interior-mutable cell types: state that mutates through `&self`,
/// invisible to the borrow checker's exclusivity and to the sweep's
/// merge-order reasoning.
const INTERIOR_MUT_TYPES: [&str; 6] = [
    "Cell",
    "LazyLock",
    "OnceCell",
    "OnceLock",
    "RefCell",
    "UnsafeCell",
];

/// Lock types: impure (observable cross-call state) but *not* shared
/// hazards — the sweep executor's slot-per-shard Mutex discipline is
/// sanctioned.
const LOCK_TYPES: [&str; 2] = ["Mutex", "RwLock"];

/// Guard types, as they appear in annotations and return types.
pub const GUARD_TYPES: [&str; 3] = ["MutexGuard", "RwLockReadGuard", "RwLockWriteGuard"];

fn interior_mut_what(name: &str) -> &'static str {
    match name {
        "Cell" => "interior mutability (Cell)",
        "RefCell" => "interior mutability (RefCell)",
        "UnsafeCell" => "interior mutability (UnsafeCell)",
        "OnceCell" => "interior mutability (OnceCell)",
        "OnceLock" => "interior mutability (OnceLock)",
        _ => "interior mutability (LazyLock)",
    }
}

/// Classify a list of type identifiers (from an annotation or a
/// parameter type).
fn classify_idents<S: AsRef<str>>(idents: &[S], unit_types: &[&str]) -> BindClass {
    if idents.iter().any(|s| GUARD_TYPES.contains(&s.as_ref())) {
        BindClass::Guard
    } else if idents.iter().any(|s| HASH_TYPES.contains(&s.as_ref())) {
        BindClass::Hash
    } else if idents.iter().any(|s| HEAP_TYPES.contains(&s.as_ref())) {
        BindClass::Heap
    } else if idents.iter().any(|s| unit_types.contains(&s.as_ref())) {
        BindClass::Unit
    } else {
        BindClass::Other
    }
}

/// Is `ident :: target` at position `i` (the leading ident)?
fn path_to(toks: &[Token], i: usize, target: &str) -> bool {
    matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::P(b':')))
        && matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::P(b':')))
        && matches!(&toks.get(i + 3).map(|t| &t.tok), Some(Tok::Ident(s)) if *s == target)
}

fn punct_at(toks: &[Token], i: usize, b: u8) -> bool {
    matches!(toks.get(i).map(|t| &t.tok), Some(Tok::P(p)) if *p == b)
}

fn ident_str(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

/// Does a call-paren follow token `i` (the method name), skipping an
/// optional turbofish `::<..>`?
fn call_paren_follows(toks: &[Token], i: usize) -> bool {
    let mut j = i + 1;
    if punct_at(toks, j, b':') && punct_at(toks, j + 1, b':') && punct_at(toks, j + 2, b'<') {
        let mut depth = 0usize;
        j += 2;
        while j < toks.len() {
            if punct_at(toks, j, b'<') {
                depth += 1;
            } else if punct_at(toks, j, b'>') {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    punct_at(toks, j, b'(')
}

/// The declared target class of a `.collect()` at `i`, when the
/// statement names one: a turbofish (`.collect::<Welford>()`) or a
/// `let x: Type = ...` ascription at the statement head. `None` when
/// no concrete target is named (`::<_>`, tail expressions, chains
/// crossing block boundaries) — callers stay conservative and keep the
/// site. A named target that is not a known container suppresses it:
/// collecting into a `FromIterator` accumulator like `Welford` is a
/// streaming fold, not an allocation.
fn collect_target_class(toks: &[Token], i: usize, unit_types: &[&str]) -> Option<BindClass> {
    // Turbofish: `.collect::<Type<..>>()`.
    if punct_at(toks, i + 1, b':') && punct_at(toks, i + 2, b':') && punct_at(toks, i + 3, b'<') {
        let mut depth = 0usize;
        let mut j = i + 3;
        let mut heads: Vec<&str> = Vec::new();
        while j < toks.len() {
            if punct_at(toks, j, b'<') {
                depth += 1;
            } else if punct_at(toks, j, b'>') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if let Some(s) = ident_str(toks, j) {
                if s != "_" {
                    heads.push(s);
                }
            }
            j += 1;
        }
        if heads.is_empty() {
            return None; // `::<_>` names nothing concrete.
        }
        return Some(classify_idents(&heads, unit_types));
    }
    // `let [mut] x: Type = ... .collect();` — walk back to the
    // statement head. Any intervening `{`/`}`/`;` (closure blocks,
    // earlier statements) ends the scan conservatively.
    let mut j = i;
    while j > 0 {
        j -= 1;
        if punct_at(toks, j, b';') || punct_at(toks, j, b'{') || punct_at(toks, j, b'}') {
            j += 1;
            break;
        }
    }
    if ident_str(toks, j) != Some("let") {
        return None;
    }
    let mut k = j + 1;
    if ident_str(toks, k) == Some("mut") {
        k += 1;
    }
    // Pattern must be a simple ident followed by a `:` ascription.
    if ident_str(toks, k).is_none() || !punct_at(toks, k + 1, b':') || punct_at(toks, k + 2, b':') {
        return None;
    }
    let mut heads: Vec<&str> = Vec::new();
    let mut m = k + 2;
    while m < i {
        if punct_at(toks, m, b'=') && !punct_at(toks, m + 1, b'=') {
            break;
        }
        if let Some(s) = ident_str(toks, m) {
            if s != "_" {
                heads.push(s);
            }
        }
        m += 1;
    }
    if heads.is_empty() {
        None
    } else {
        Some(classify_idents(&heads, unit_types))
    }
}

/// The simple-identifier receiver of the method at `i` (`x.m(..)` with
/// `i` on `m`), or `None` for chained/field receivers (`a.b.m(..)`,
/// `f().m(..)`).
fn simple_receiver(toks: &[Token], i: usize) -> Option<&str> {
    if i < 2 || !punct_at(toks, i - 1, b'.') {
        return None;
    }
    let recv = ident_str(toks, i - 2)?;
    // `self.x.m(..)` / `a.b.m(..)`: the ident before `.m` is a field.
    if i >= 3 && punct_at(toks, i - 3, b'.') {
        return None;
    }
    Some(recv)
}

/// A deferred hash-iteration candidate, resolved after the whole body
/// is seen (the hash-type mention may come later than the call).
struct IterCandidate {
    line: usize,
    method_implies_keys: bool,
    /// `Some(class)` when the receiver resolved in the binding table.
    receiver: Option<BindClass>,
}

/// Run the dataflow-lite pass over one body (`toks` is the same slice
/// [`crate::parser`] hands to its body scanner: from the opening `{`
/// to just before the matching `}`). Fills [`FnItem::allocs`],
/// [`FnItem::impurities`], and appends receiver-typed hash-iteration
/// hazards to [`FnItem::hazards`].
#[allow(clippy::too_many_lines)]
pub fn analyze(toks: &[Token], item: &mut FnItem, unit_types: &[&str]) {
    let mut bindings: BTreeMap<String, (BindClass, Origin)> = BTreeMap::new();
    for (name, ty) in &item.params {
        let Some(name) = name else { continue };
        let class = classify_idents(ty, unit_types);
        if class != BindClass::Other {
            bindings.insert(name.clone(), (class, Origin::Param));
        }
    }

    let mut saw_hash_mention = false;
    let mut iter_candidates: Vec<IterCandidate> = Vec::new();

    let mut i = 0;
    while i < toks.len() {
        let line = toks[i].line;
        let Tok::Ident(word) = &toks[i].tok else {
            i += 1;
            continue;
        };
        let word = word.as_str();

        if HASH_TYPES.contains(&word) {
            saw_hash_mention = true;
        }

        // `let [mut] name [: Type] [= init]` — extend the binding
        // table. Pattern lets (`let Some(x) = ..`, destructuring) are
        // skipped: only simple-identifier bindings resolve.
        if word == "let" {
            let mut j = i + 1;
            while ident_str(toks, j) == Some("mut") {
                j += 1;
            }
            if let Some(name) = ident_str(toks, j) {
                let after = j + 1;
                // `:` (not `::`) → annotated; `=` → initializer only.
                let annotated = punct_at(toks, after, b':') && !punct_at(toks, after + 1, b':');
                let assigned = punct_at(toks, after, b'=') && !punct_at(toks, after + 1, b'=');
                if annotated || assigned {
                    let mut class = BindClass::Other;
                    let mut k = after;
                    if annotated {
                        let mut ann: Vec<&str> = Vec::new();
                        k += 1;
                        while k < toks.len() {
                            match &toks[k].tok {
                                Tok::P(b'=' | b';') => break,
                                Tok::Ident(t) => {
                                    ann.push(t.as_str());
                                    k += 1;
                                }
                                _ => k += 1,
                            }
                        }
                        class = classify_idents(&ann, unit_types);
                    }
                    // `= Type::ctor(..)` / `= vec![..]` initializers.
                    if class == BindClass::Other && punct_at(toks, k, b'=') {
                        if let Some(head) = ident_str(toks, k + 1) {
                            if punct_at(toks, k + 2, b':') && punct_at(toks, k + 3, b':') {
                                class = classify_idents(&[head], unit_types);
                            } else if head == "vec" && punct_at(toks, k + 2, b'!') {
                                class = BindClass::Heap;
                            }
                        }
                        // `= <recv>.lock()/.read()/.write()` initializers
                        // bind guards.
                        if class == BindClass::Other {
                            let mut m = k + 1;
                            while m < toks.len() && !punct_at(toks, m, b';') {
                                if acquisition_at(toks, m).is_some() && punct_at(toks, m - 1, b'.')
                                {
                                    class = BindClass::Guard;
                                    break;
                                }
                                m += 1;
                            }
                        }
                    }
                    if class != BindClass::Other {
                        bindings.insert(name.to_owned(), (class, Origin::Local));
                    }
                }
            }
            i += 1;
            continue;
        }

        // --- Allocation sites -----------------------------------------

        // `Vec::new(..)`, `String::with_capacity(..)`, `Box::new(..)`.
        if HEAP_TYPES.contains(&word) {
            if let Some(method) = ident_str(toks, i + 3) {
                if punct_at(toks, i + 1, b':')
                    && punct_at(toks, i + 2, b':')
                    && CTOR_METHODS.contains(&method)
                    && call_paren_follows(toks, i + 3)
                {
                    item.allocs.push(AllocSite {
                        line,
                        what: format!("{word}::{method}"),
                    });
                }
            }
        }

        // `format!(..)` / `vec![..]`.
        if ALLOC_MACROS.contains(&word)
            && punct_at(toks, i + 1, b'!')
            && (punct_at(toks, i + 2, b'(') || punct_at(toks, i + 2, b'['))
        {
            item.allocs.push(AllocSite {
                line,
                what: format!("{word}! macro"),
            });
        }

        let is_method = i >= 1 && punct_at(toks, i - 1, b'.');
        if is_method && call_paren_follows(toks, i) {
            // `.to_string()` / `.collect::<Vec<_>>()` / ... A collect
            // whose named target is not a container (e.g. a `Welford`
            // accumulator) folds without allocating and is skipped.
            if ALLOC_METHODS.contains(&word) {
                let folds_in_place = word == "collect"
                    && matches!(
                        collect_target_class(toks, i, unit_types),
                        Some(BindClass::Unit | BindClass::Other)
                    );
                if !folds_in_place {
                    item.allocs.push(AllocSite {
                        line,
                        what: format!(".{word}()"),
                    });
                }
            }
            // `.clone()` on a receiver known to own heap storage.
            if word == "clone" {
                if let Some((class, _)) = simple_receiver(toks, i).and_then(|r| bindings.get(r)) {
                    if matches!(class, BindClass::Heap | BindClass::Hash) {
                        item.allocs.push(AllocSite {
                            line,
                            what: ".clone() of heap-owning value".to_owned(),
                        });
                    }
                }
            }
            // `.push(..)` onto a locally built buffer. Params and
            // fields (unresolved receivers) are the scratch-reuse
            // idiom and stay exempt.
            if word == "push" {
                if let Some(&(class, Origin::Local)) =
                    simple_receiver(toks, i).and_then(|r| bindings.get(r))
                {
                    if matches!(class, BindClass::Heap | BindClass::Hash) {
                        item.allocs.push(AllocSite {
                            line,
                            what: ".push onto locally built buffer".to_owned(),
                        });
                    }
                }
            }
            // Hash iteration: defer — the container mention may come
            // later in the body.
            if HASH_ITER_METHODS.contains(&word) {
                iter_candidates.push(IterCandidate {
                    line,
                    method_implies_keys: KEYED_ITER_METHODS.contains(&word),
                    receiver: simple_receiver(toks, i)
                        .and_then(|r| bindings.get(r))
                        .map(|&(class, _)| class),
                });
            }
        }

        // --- Purity hazards -------------------------------------------

        if let Some(what) = INTERIOR_MUT_TYPES
            .iter()
            .find(|t| **t == word)
            .copied()
            .map(interior_mut_what)
        {
            item.impurities.push(PuritySite {
                line,
                what,
                shared: true,
            });
        }
        if LOCK_TYPES.contains(&word) {
            item.impurities.push(PuritySite {
                line,
                what: "lock-based shared state (Mutex/RwLock)",
                shared: false,
            });
        }
        if word.starts_with("Atomic") && word.len() > "Atomic".len() {
            item.impurities.push(PuritySite {
                line,
                what: "atomic shared state",
                shared: false,
            });
        }
        match word {
            "thread_local" if punct_at(toks, i + 1, b'!') => {
                item.impurities.push(PuritySite {
                    line,
                    what: "thread_local! state",
                    shared: true,
                });
            }
            "static" => {
                item.impurities.push(PuritySite {
                    line,
                    what: "static item in fn body",
                    shared: true,
                });
            }
            "SystemTime" => {
                item.impurities.push(PuritySite {
                    line,
                    what: "SystemTime wall-clock read",
                    shared: false,
                });
            }
            "Instant" if path_to(toks, i, "now") => {
                item.impurities.push(PuritySite {
                    line,
                    what: "Instant::now wall-clock read",
                    shared: false,
                });
            }
            "thread_rng" | "from_entropy" | "from_os_rng" => {
                item.impurities.push(PuritySite {
                    line,
                    what: "nondeterministic RNG",
                    shared: false,
                });
            }
            "rand" if path_to(toks, i, "rng") => {
                item.impurities.push(PuritySite {
                    line,
                    what: "nondeterministic RNG",
                    shared: false,
                });
            }
            "File" | "fs" if punct_at(toks, i + 1, b':') && punct_at(toks, i + 2, b':') => {
                item.impurities.push(PuritySite {
                    line,
                    what: "file I/O",
                    shared: false,
                });
            }
            "env" if path_to(toks, i, "var") || path_to(toks, i, "vars") => {
                item.impurities.push(PuritySite {
                    line,
                    what: "environment read",
                    shared: false,
                });
            }
            "stdin" | "stdout" | "stderr" if punct_at(toks, i + 1, b'(') => {
                item.impurities.push(PuritySite {
                    line,
                    what: "console I/O",
                    shared: false,
                });
            }
            "print" | "println" | "eprint" | "eprintln" if punct_at(toks, i + 1, b'!') => {
                item.impurities.push(PuritySite {
                    line,
                    what: "console I/O",
                    shared: false,
                });
            }
            _ => {}
        }

        i += 1;
    }

    // Resolve the deferred hash-iteration candidates.
    for cand in iter_candidates {
        let hazard = match cand.receiver {
            Some(BindClass::Hash) => true,
            // Receiver resolved to a deterministic container: proof it
            // is *not* hash iteration (the pre-dataflow heuristic fired
            // here).
            Some(BindClass::Heap | BindClass::Unit | BindClass::Guard | BindClass::Other) => false,
            // Unresolved (field, call result): only the keyed method
            // names count, and only when a hash type appears in the
            // body at all.
            None => cand.method_implies_keys && saw_hash_mention,
        };
        if hazard {
            item.hazards.push(DetHazard {
                line: cand.line,
                what: "HashMap/HashSet iteration order",
            });
        }
    }
}

// --- Concurrency facts --------------------------------------------------

/// Result adapters that pass a guard through unchanged — a chain of
/// these after an acquisition still ends in the statement's binding.
const GUARD_ADAPTERS: [&str; 6] = [
    "expect",
    "into_inner",
    "map_err",
    "ok",
    "unwrap",
    "unwrap_or_else",
];

/// Method calls that can block the calling thread.
const BLOCKING_METHODS: [&str; 10] = [
    "accept",
    "connect",
    "flush",
    "read_exact",
    "read_line",
    "read_to_end",
    "read_to_string",
    "recv",
    "write_all",
    "write_fmt",
];

/// Std stream handles whose locks are per-thread reentrant and intended
/// to be held across I/O — never guard hazards.
const STD_STREAM_LOCKS: [&str; 3] = ["stderr", "stdin", "stdout"];

/// The five atomic memory orderings.
const ORDERINGS: [&str; 5] = ["AcqRel", "Acquire", "Relaxed", "Release", "SeqCst"];

/// `lock()`/`read()`/`write()` with an *empty* argument list at `i` —
/// the zero-arg signatures of `Mutex`/`RwLock` acquisition, which is
/// what keeps `io::Read::read(&mut buf)` and `slice::join(sep)` out.
fn acquisition_at(toks: &[Token], i: usize) -> Option<AcqKind> {
    let kind = match ident_str(toks, i) {
        Some("lock") => AcqKind::Lock,
        Some("read") => AcqKind::Read,
        Some("write") => AcqKind::Write,
        _ => return None,
    };
    (punct_at(toks, i + 1, b'(') && punct_at(toks, i + 2, b')')).then_some(kind)
}

/// Balanced-group-aware receiver of the method at `i`:
/// `slots[i].lock()` → `slots`, `stdout().lock()` → `stdout`,
/// `self.stats.lock()` → `stats`.
fn receiver_ident(toks: &[Token], method: usize) -> Option<&str> {
    if method < 2 || !punct_at(toks, method - 1, b'.') {
        return None;
    }
    let mut j = method - 2;
    for (open, close) in [(b'(', b')'), (b'[', b']')] {
        if punct_at(toks, j, close) {
            let mut depth = 0usize;
            loop {
                if punct_at(toks, j, close) {
                    depth += 1;
                } else if punct_at(toks, j, open) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j = j.checked_sub(1)?;
            }
            j = j.checked_sub(1)?;
        }
    }
    ident_str(toks, j)
}

/// Index just past the `)` matching the `(` at `i`.
fn skip_parens(toks: &[Token], i: usize) -> usize {
    let mut depth = 0usize;
    let mut j = i;
    while j < toks.len() {
        if punct_at(toks, j, b'(') {
            depth += 1;
        } else if punct_at(toks, j, b')') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// Where the value produced just before `k` flows, after skipping `?`
/// and guard-adapter chains.
enum Flow {
    /// `;` or `else` ends the statement — a `let` head binds it.
    Stmt,
    /// `{` — a `match`/`if let` block consumes it.
    Block,
    /// Consumed mid-expression: a temporary.
    Expr,
}

fn flow_after(toks: &[Token], mut k: usize) -> Flow {
    loop {
        if punct_at(toks, k, b'?') {
            k += 1;
        } else if punct_at(toks, k, b'.')
            && ident_str(toks, k + 1).is_some_and(|m| GUARD_ADAPTERS.contains(&m))
            && punct_at(toks, k + 2, b'(')
        {
            k = skip_parens(toks, k + 2);
        } else {
            break;
        }
    }
    if punct_at(toks, k, b';') || ident_str(toks, k) == Some("else") {
        Flow::Stmt
    } else if punct_at(toks, k, b'{') {
        Flow::Block
    } else {
        Flow::Expr
    }
}

/// Index of the first token of the statement containing `i`.
fn stmt_start(toks: &[Token], i: usize) -> usize {
    let mut j = i;
    while j > 0 {
        if matches!(&toks[j - 1].tok, Tok::P(b';' | b'{' | b'}')) {
            break;
        }
        j -= 1;
    }
    j
}

/// The binding context of the statement starting at `s`.
enum Head {
    /// `let [mut] name =` / `let Pat(name) =`.
    Let(String),
    /// `if let` / `while let` — the binding lives in the block.
    CondLet(String),
    /// `match <scrutinee> {` — anonymous scrutinee temporary.
    Match,
    /// No binding.
    None,
}

fn stmt_head(toks: &[Token], s: usize) -> Head {
    let mut j = s;
    let conditional = matches!(ident_str(toks, j), Some("if" | "while"));
    if conditional {
        j += 1;
    }
    if ident_str(toks, j) == Some("match") {
        return Head::Match;
    }
    if ident_str(toks, j) != Some("let") {
        return Head::None;
    }
    j += 1;
    while ident_str(toks, j) == Some("mut") {
        j += 1;
    }
    let Some(first) = ident_str(toks, j) else {
        return Head::None;
    };
    let name = if punct_at(toks, j + 1, b'(') {
        // One-level tuple-variant pattern: `Ok(guard)` / `Some(mut g)`.
        let mut k = j + 2;
        if ident_str(toks, k) == Some("mut") {
            k += 1;
        }
        match ident_str(toks, k) {
            Some(inner) if punct_at(toks, k + 1, b')') => inner,
            _ => return Head::None,
        }
    } else {
        first
    };
    if conditional {
        Head::CondLet(name.to_owned())
    } else {
        Head::Let(name.to_owned())
    }
}

/// `module :: name (` at `i` (on `name`)?
fn path_call_on(toks: &[Token], i: usize, module: &str) -> bool {
    i >= 3
        && punct_at(toks, i - 1, b':')
        && punct_at(toks, i - 2, b':')
        && ident_str(toks, i - 3) == Some(module)
        && punct_at(toks, i + 1, b'(')
}

/// The atomic method consuming the `Ordering::` path at `i`, plus
/// whether that call's receiver chain sits directly under an `if` /
/// `while` condition (walking back over `.`-chains and `!` only — `&&`
/// compounds are not seen).
fn ordering_op(toks: &[Token], i: usize) -> (String, bool) {
    let mut depth = 0usize;
    let mut j = i;
    while j > 0 {
        j -= 1;
        match &toks[j].tok {
            Tok::P(b')') => depth += 1,
            Tok::P(b'(') => {
                if depth > 0 {
                    depth -= 1;
                    continue;
                }
                let Some(op) = (j > 0).then(|| ident_str(toks, j - 1)).flatten() else {
                    return (String::new(), false);
                };
                let mut k = j - 1;
                while k >= 2 && punct_at(toks, k - 1, b'.') && ident_str(toks, k - 2).is_some() {
                    k -= 2;
                }
                let mut b = k;
                while b > 0 && punct_at(toks, b - 1, b'!') {
                    b -= 1;
                }
                let gates = b > 0 && matches!(ident_str(toks, b - 1), Some("if" | "while"));
                return (op.to_owned(), gates);
            }
            Tok::P(b';' | b'{' | b'}') if depth == 0 => break,
            _ => {}
        }
    }
    (String::new(), false)
}

/// Collect guard spans, atomic-ordering sites, spawn sites, and
/// blocking-call sites for one body. A separate walk from [`analyze`]:
/// guard lifetimes need brace-depth scope tracking that the flat
/// binding table deliberately ignores.
#[allow(clippy::too_many_lines)]
pub fn concurrency_facts(toks: &[Token], item: &mut FnItem) {
    let mut depth = 0usize;
    // (guard index, scope depth) of spans still live.
    let mut live: Vec<(usize, usize)> = Vec::new();
    // (spawn index, handle name) of let-bound spawn handles.
    let mut handles: Vec<(usize, String)> = Vec::new();
    // Locals bound to `stdout()`/`stdin()`/`stderr()`: locking those is
    // console buffering, not data-lock acquisition.
    let mut streams: Vec<String> = Vec::new();

    // Ends every live span named `name` at `line` (drop / shadowing).
    fn end_named(
        guards: &mut [GuardSpan],
        live: &mut Vec<(usize, usize)>,
        name: &str,
        line: usize,
    ) {
        live.retain(|&(gi, _)| {
            if guards[gi].name == name {
                guards[gi].end_line = line;
                false
            } else {
                true
            }
        });
    }

    let mut i = 0;
    while i < toks.len() {
        let line = toks[i].line;
        let Tok::Ident(w) = &toks[i].tok else {
            if punct_at(toks, i, b'{') {
                depth += 1;
            } else if punct_at(toks, i, b'}') {
                depth = depth.saturating_sub(1);
                live.retain(|&(gi, d)| {
                    if d > depth {
                        item.guards[gi].end_line = line;
                        false
                    } else {
                        true
                    }
                });
            }
            i += 1;
            continue;
        };
        let w = w.as_str();
        let is_method = i >= 1 && punct_at(toks, i - 1, b'.');

        match w {
            // A rebind of a live guard's name releases the old guard.
            "let" => {
                let mut j = i + 1;
                while ident_str(toks, j) == Some("mut") {
                    j += 1;
                }
                if let Some(name) = ident_str(toks, j).map(str::to_owned) {
                    end_named(&mut item.guards, &mut live, &name, line);
                }
            }
            // Explicit early release: `drop(guard)`.
            "drop" if punct_at(toks, i + 1, b'(') && punct_at(toks, i + 3, b')') => {
                if let Some(name) = ident_str(toks, i + 2).map(str::to_owned) {
                    end_named(&mut item.guards, &mut live, &name, line);
                }
            }
            "Ordering" if punct_at(toks, i + 1, b':') && punct_at(toks, i + 2, b':') => {
                if let Some(ord) = ident_str(toks, i + 3) {
                    if ORDERINGS.contains(&ord) {
                        let (op, gates_branch) = ordering_op(toks, i);
                        item.orderings.push(OrderingSite {
                            line,
                            ordering: ord.to_owned(),
                            op,
                            gates_branch,
                        });
                    }
                }
            }
            // `thread::spawn(..)` — scoped `scope.spawn` is a method
            // call and never lands here.
            "spawn" if path_call_on(toks, i, "thread") => {
                let after = skip_parens(toks, i + 1);
                let joined = punct_at(toks, after, b'.')
                    && ident_str(toks, after + 1) == Some("join")
                    && punct_at(toks, after + 2, b'(');
                let si = item.spawns.len();
                item.spawns.push(SpawnSite { line, joined });
                if !joined {
                    if let Head::Let(name) | Head::CondLet(name) =
                        stmt_head(toks, stmt_start(toks, i))
                    {
                        handles.push((si, name));
                    }
                }
            }
            "sleep" if path_call_on(toks, i, "thread") => {
                item.blocking.push(BlockingSite {
                    line,
                    what: "thread::sleep".to_owned(),
                });
            }
            // `let out = stdout();` — remember the alias so a later
            // `out.lock()` stays exempt like `stdout().lock()`.
            "stdout" | "stdin" | "stderr"
                if !is_method && punct_at(toks, i + 1, b'(') && punct_at(toks, i + 2, b')') =>
            {
                if let Head::Let(name) | Head::CondLet(name) = stmt_head(toks, stmt_start(toks, i))
                {
                    streams.push(name);
                }
            }
            _ => {
                if let Some(kind) = acquisition_at(toks, i).filter(|_| is_method) {
                    let recv = receiver_ident(toks, i).unwrap_or("").to_owned();
                    if !STD_STREAM_LOCKS.contains(&recv.as_str()) && !streams.contains(&recv) {
                        let flow = flow_after(toks, skip_parens(toks, i + 1));
                        let head = stmt_head(toks, stmt_start(toks, i));
                        let bound = match (flow, head) {
                            (Flow::Stmt | Flow::Block, Head::Let(n)) => Some((n, depth)),
                            (Flow::Stmt | Flow::Block, Head::CondLet(n)) => Some((n, depth + 1)),
                            (Flow::Block, Head::Match | Head::None) => {
                                Some((String::new(), depth + 1))
                            }
                            _ => None,
                        };
                        let gi = item.guards.len();
                        let (name, end_line) = match &bound {
                            Some((n, _)) => (n.clone(), line),
                            None => (String::new(), line),
                        };
                        item.guards.push(GuardSpan {
                            name,
                            lock: recv,
                            via_call: false,
                            kind,
                            line,
                            end_line,
                        });
                        if let Some((_, d)) = bound {
                            live.push((gi, d));
                        }
                    }
                } else if is_method && BLOCKING_METHODS.contains(&w) && call_paren_follows(toks, i)
                {
                    item.blocking.push(BlockingSite {
                        line,
                        what: format!(".{w}(..)"),
                    });
                } else if is_method
                    && w == "join"
                    && punct_at(toks, i + 1, b'(')
                    && punct_at(toks, i + 2, b')')
                {
                    // Zero-arg `.join()`: a thread-handle join, not
                    // `slice::join(sep)`.
                    item.blocking.push(BlockingSite {
                        line,
                        what: "thread join".to_owned(),
                    });
                } else if !is_method
                    && w == "connect"
                    && i >= 2
                    && punct_at(toks, i - 1, b':')
                    && punct_at(toks, i - 2, b':')
                    && punct_at(toks, i + 1, b'(')
                {
                    item.blocking.push(BlockingSite {
                        line,
                        what: "::connect(..)".to_owned(),
                    });
                } else if is_method && punct_at(toks, i + 1, b'(') && !GUARD_ADAPTERS.contains(&w) {
                    // A let-bound method-call result is a candidate
                    // guard acquired through a helper
                    // (`let g = self.lock_stats();`) — kept only if the
                    // concurrency pass resolves the method to a
                    // guard-returning workspace fn.
                    let flow = flow_after(toks, skip_parens(toks, i + 1));
                    let head = stmt_head(toks, stmt_start(toks, i));
                    let bound = match (flow, head) {
                        (Flow::Stmt | Flow::Block, Head::Let(n)) => Some((n, depth)),
                        (Flow::Stmt | Flow::Block, Head::CondLet(n)) => Some((n, depth + 1)),
                        _ => None,
                    };
                    if let Some((name, d)) = bound {
                        let gi = item.guards.len();
                        item.guards.push(GuardSpan {
                            name,
                            lock: w.to_owned(),
                            via_call: true,
                            kind: AcqKind::Lock,
                            line,
                            end_line: line,
                        });
                        live.push((gi, d));
                    }
                }
            }
        }
        i += 1;
    }

    let last_line = toks.last().map_or(0, |t| t.line);
    for (gi, _) in live {
        item.guards[gi].end_line = last_line;
    }

    // Resolve `.join()` on let-bound spawn handles anywhere in the body.
    for (si, name) in handles {
        let mut j = 0;
        while j + 3 < toks.len() {
            if ident_str(toks, j) == Some(name.as_str())
                && punct_at(toks, j + 1, b'.')
                && ident_str(toks, j + 2) == Some("join")
                && punct_at(toks, j + 3, b'(')
            {
                item.spawns[si].joined = true;
                break;
            }
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::analyze as lex_analyze;
    use crate::parser::parse_file;
    use std::path::Path;

    const UNITS: [&str; 2] = ["Celsius", "Watts"];

    fn first_fn(src: &str) -> FnItem {
        let file = parse_file(
            Path::new("crates/x/src/lib.rs"),
            src,
            &lex_analyze(src),
            &UNITS,
        );
        file.fns.into_iter().next().expect("one fn parsed")
    }

    fn alloc_whats(src: &str) -> Vec<String> {
        first_fn(src)
            .allocs
            .iter()
            .map(|a| a.what.clone())
            .collect()
    }

    #[test]
    fn heap_constructors_are_alloc_sites() {
        let whats = alloc_whats(
            "fn f() {\n    let v = Vec::with_capacity(4);\n    let s = String::new();\n    let b = Box::new(1);\n}\n",
        );
        assert_eq!(whats, vec!["Vec::with_capacity", "String::new", "Box::new"]);
    }

    #[test]
    fn alloc_macros_and_methods_fire() {
        let whats = alloc_whats(
            "fn f(n: u32) {\n    let s = format!(\"{n}\");\n    let v = vec![1, 2];\n    let t = n.to_string();\n    let c = (0..n).collect::<Vec<_>>();\n}\n",
        );
        assert!(whats.contains(&"format! macro".to_owned()));
        assert!(whats.contains(&"vec! macro".to_owned()));
        assert!(whats.contains(&".to_string()".to_owned()));
        assert!(whats.contains(&".collect()".to_owned()), "{whats:?}");
    }

    #[test]
    fn clone_fires_only_on_heap_typed_receivers() {
        let heap = alloc_whats("fn f(v: &Vec<f64>) {\n    let w = v.clone();\n}\n");
        assert_eq!(heap, vec![".clone() of heap-owning value"]);
        let copy = alloc_whats("fn f(x: u64) {\n    let y = x.clone();\n}\n");
        assert!(copy.is_empty(), "{copy:?}");
        let unknown = alloc_whats("fn f(&self) {\n    let y = self.flows.clone();\n}\n");
        assert!(unknown.is_empty(), "field receivers stay unresolved");
    }

    #[test]
    fn push_exempts_params_and_fields() {
        // Scratch-reuse idiom: push onto a parameter or a field.
        let reuse = alloc_whats(
            "fn f(out: &mut Vec<f64>, scratch: &mut Scratch) {\n    out.push(1.0);\n    scratch.truths.push(2.0);\n}\n",
        );
        assert!(reuse.is_empty(), "{reuse:?}");
        // Locally built buffer: the ctor and the push both pin lines.
        let local =
            alloc_whats("fn f() {\n    let mut v: Vec<f64> = Vec::new();\n    v.push(1.0);\n}\n");
        assert_eq!(local, vec!["Vec::new", ".push onto locally built buffer"]);
    }

    #[test]
    fn purity_hazards_detected() {
        let item = first_fn(
            "fn f() {\n    let c = RefCell::new(1);\n    let m = Mutex::new(2);\n    let t = std::time::Instant::now();\n    let r = thread_rng();\n    println!(\"x\");\n}\n",
        );
        let whats: Vec<_> = item.impurities.iter().map(|p| p.what).collect();
        assert!(whats.contains(&"interior mutability (RefCell)"));
        assert!(whats.contains(&"lock-based shared state (Mutex/RwLock)"));
        assert!(whats.contains(&"Instant::now wall-clock read"));
        assert!(whats.contains(&"nondeterministic RNG"));
        assert!(whats.contains(&"console I/O"));
        let shared: Vec<_> = item.impurities.iter().filter(|p| p.shared).collect();
        assert_eq!(shared.len(), 1, "only the RefCell is a shared hazard");
    }

    #[test]
    fn pure_arithmetic_has_no_hazards() {
        let item = first_fn("fn f(x: f64) -> f64 {\n    let y = x * 2.0;\n    y + 1.0\n}\n");
        assert!(item.impurities.is_empty(), "{:?}", item.impurities);
        assert!(item.allocs.is_empty(), "{:?}", item.allocs);
    }

    #[test]
    fn hash_iteration_requires_resolved_or_keyed_receiver() {
        // Resolved hash receiver: hazard.
        let hit = first_fn(
            "fn f() {\n    let m: HashMap<u8, u8> = HashMap::new();\n    for k in m.keys() {}\n}\n",
        );
        assert!(hit
            .hazards
            .iter()
            .any(|h| h.what == "HashMap/HashSet iteration order"));

        // The pre-dataflow false positive: a hash type mentioned, but
        // the iteration runs over a Vec.
        let fp = first_fn(
            "fn f(m: &HashMap<u8, u8>) {\n    let v: Vec<u8> = Vec::new();\n    for x in v.iter() {}\n    let _ = m.get(&1);\n}\n",
        );
        assert!(
            fp.hazards.is_empty(),
            "Vec iteration is not a hash hazard: {:?}",
            fp.hazards
        );

        // Unresolved receiver + keyed method + hash mention: hazard.
        let field = first_fn(
            "fn f(&self) {\n    let m: HashMap<u8, u8> = HashMap::new();\n    let _ = m.len();\n    for k in self.map.keys() {}\n}\n",
        );
        assert!(
            field
                .hazards
                .iter()
                .any(|h| h.what == "HashMap/HashSet iteration order"),
            "{:?}",
            field.hazards
        );

        // Unresolved receiver + generic method: no hazard without
        // receiver proof, even with a hash mention.
        let generic = first_fn(
            "fn f(&self, m: &HashMap<u8, u8>) {\n    let _ = m.get(&1);\n    for x in self.items.iter() {}\n}\n",
        );
        assert!(generic.hazards.is_empty(), "{:?}", generic.hazards);
    }

    #[test]
    fn let_else_and_patterns_do_not_bind() {
        let item = first_fn(
            "fn f(o: Option<Vec<u8>>) {\n    let Some(v) = o else {\n        return;\n    };\n    let (a, b) = (1, 2);\n    let _ = (a, b, v);\n}\n",
        );
        // No spurious allocs or hazards from pattern bindings.
        assert!(item.allocs.is_empty(), "{:?}", item.allocs);
    }

    #[test]
    fn nested_closures_and_turbofish_chains_scan() {
        let item = first_fn(
            "fn f(xs: &[u64]) -> Vec<u64> {\n    xs.iter().map(|x| {\n        let inner = move |y: u64| y + 1;\n        inner(*x)\n    }).collect::<Vec<u64>>()\n}\n",
        );
        assert_eq!(
            item.allocs
                .iter()
                .map(|a| a.what.as_str())
                .collect::<Vec<_>>(),
            vec![".collect()"]
        );
    }

    #[test]
    fn collect_into_non_container_target_is_not_an_alloc() {
        // Turbofish naming a plain accumulator: streaming fold.
        let fold = alloc_whats(
            "fn f(xs: &[f64]) -> f64 {\n    xs.iter().copied().collect::<Welford>().mean()\n}\n",
        );
        assert!(fold.is_empty(), "{fold:?}");
        // Let ascription naming a plain accumulator: same.
        let ascribed =
            alloc_whats("fn f(xs: &[f64]) -> f64 {\n    let w: Welford = xs.iter().copied().collect();\n    w.mean()\n}\n");
        assert!(ascribed.is_empty(), "{ascribed:?}");
        // Containers keep firing through both spellings.
        let heap = alloc_whats(
            "fn f(xs: &[f64]) {\n    let v: Vec<f64> = xs.iter().copied().collect();\n}\n",
        );
        assert_eq!(heap, vec![".collect()"]);
        // No named target at all: conservative, still a site.
        let bare =
            alloc_whats("fn f(xs: &[f64]) {\n    let v = xs.iter().copied().collect::<_>();\n}\n");
        assert_eq!(bare, vec![".collect()"]);
    }

    #[test]
    fn static_and_thread_local_are_shared_hazards() {
        let item = first_fn(
            "fn f() -> u64 {\n    static SEED: u64 = 7;\n    thread_local! { static TL: u8 = 0; }\n    SEED\n}\n",
        );
        assert!(item.impurities.iter().any(|p| p.shared));
        let whats: Vec<_> = item.impurities.iter().map(|p| p.what).collect();
        assert!(whats.contains(&"static item in fn body"));
        assert!(whats.contains(&"thread_local! state"));
    }

    // ----- concurrency facts -----

    #[test]
    fn let_bound_guard_lives_to_scope_end() {
        let item = first_fn(
            "fn f(&self) {\n    let g = self.stats.lock().unwrap();\n    g.bump();\n    g.bump();\n}\n",
        );
        assert_eq!(item.guards.len(), 1);
        let g = &item.guards[0];
        assert_eq!((g.name.as_str(), g.lock.as_str()), ("g", "stats"));
        assert_eq!(g.kind, AcqKind::Lock);
        assert!(!g.via_call);
        assert_eq!((g.line, g.end_line), (2, 4));
        assert!(g.covers(3) && g.covers(4) && !g.covers(2));
    }

    #[test]
    fn match_scrutinee_guard_is_an_anonymous_block_span() {
        // The poisoned-lock recovery idiom: the guard escapes the match
        // through both arms, so it is live for the whole enclosing
        // block even though no binding names it at statement level.
        let item = first_fn(
            "fn f(&self) -> Guard {\n    match self.sweep.read() {\n        Ok(guard) => guard,\n        Err(poisoned) => poisoned.into_inner(),\n    }\n}\n",
        );
        assert_eq!(item.guards.len(), 1);
        let g = &item.guards[0];
        assert_eq!((g.name.as_str(), g.lock.as_str()), ("", "sweep"));
        assert_eq!(g.kind, AcqKind::Read);
        assert!(g.end_line >= 5, "live through the match: {}", g.end_line);
    }

    #[test]
    fn if_let_guard_covers_the_block_only() {
        let item = first_fn(
            "fn f(&self) {\n    if let Ok(mut slot) = self.slots.lock() {\n        slot.store(1);\n    }\n    self.after();\n}\n",
        );
        assert_eq!(item.guards.len(), 1);
        let g = &item.guards[0];
        assert_eq!((g.name.as_str(), g.lock.as_str()), ("slot", "slots"));
        assert!(g.covers(3), "body line covered");
        assert!(!g.covers(5), "line after the block not covered");
    }

    #[test]
    fn drop_releases_the_guard_early() {
        let item = first_fn(
            "fn f(&self) {\n    let g = self.stats.lock().unwrap();\n    g.bump();\n    drop(g);\n    self.slow_io();\n}\n",
        );
        assert_eq!(item.guards.len(), 1);
        let g = &item.guards[0];
        assert_eq!(g.end_line, 4, "span ends at the drop");
        assert!(!g.covers(5));
    }

    #[test]
    fn shadowing_rebind_ends_the_previous_span() {
        let item = first_fn(
            "fn f(&self) {\n    let g = self.a.lock().unwrap();\n    g.bump();\n    let g = self.b.lock().unwrap();\n    g.bump();\n}\n",
        );
        assert_eq!(item.guards.len(), 2);
        assert_eq!(item.guards[0].lock, "a");
        assert_eq!(item.guards[0].end_line, 4, "shadow ends the first span");
        assert_eq!(item.guards[1].lock, "b");
        assert_eq!(item.guards[1].end_line, 5);
    }

    #[test]
    fn statement_temporary_covers_nothing() {
        let item = first_fn(
            "fn f(&self) {\n    *self.slot.lock().unwrap() = Some(1);\n    self.next();\n}\n",
        );
        assert_eq!(item.guards.len(), 1);
        let g = &item.guards[0];
        assert_eq!((g.line, g.end_line), (2, 2));
        assert!(!g.covers(3));
    }

    #[test]
    fn std_stream_locks_are_exempt() {
        let item = first_fn(
            "fn f() {\n    let out = std::io::stdout();\n    let mut h = out.lock();\n    let g = stdout().lock();\n}\n",
        );
        assert!(item.guards.is_empty(), "{:?}", item.guards);
    }

    #[test]
    fn io_read_write_with_args_are_not_acquisitions() {
        // `Read::read(&mut buf)` / `Write::write(&buf)` take arguments;
        // only empty-parens `lock()/read()/write()` acquire directly.
        // (They remain via-call *candidates*, culled later unless the
        // method resolves to a guard-returning workspace fn.)
        let item = first_fn(
            "fn f(s: &mut TcpStream, buf: &mut [u8]) {\n    let n = s.read(buf).unwrap();\n    let m = s.write(buf).unwrap();\n}\n",
        );
        assert!(item.guards.iter().all(|g| g.via_call), "{:?}", item.guards);
    }

    #[test]
    fn helper_call_guard_is_a_via_call_candidate() {
        let item =
            first_fn("fn f(&self) {\n    let stats = self.lock_stats();\n    stats.bump();\n}\n");
        assert_eq!(item.guards.len(), 1);
        let g = &item.guards[0];
        assert!(g.via_call);
        assert_eq!(g.lock, "lock_stats", "helper name pending resolution");
        assert_eq!(g.end_line, 3);
    }

    #[test]
    fn scope_spawns_are_exempt_and_bare_spawns_are_tracked() {
        // thread::scope joins by construction: no spawn site recorded.
        let scoped = first_fn(
            "fn f() {\n    std::thread::scope(|s| {\n        s.spawn(|| work());\n    });\n}\n",
        );
        assert!(scoped.spawns.is_empty(), "{:?}", scoped.spawns);

        let joined = first_fn(
            "fn f() {\n    let h = std::thread::spawn(|| work());\n    h.join().unwrap();\n}\n",
        );
        assert_eq!(joined.spawns.len(), 1);
        assert!(joined.spawns[0].joined);

        let chained = first_fn("fn f() {\n    std::thread::spawn(|| work()).join().unwrap();\n}\n");
        assert_eq!(chained.spawns.len(), 1);
        assert!(chained.spawns[0].joined);

        let detached = first_fn("fn f() {\n    std::thread::spawn(|| work());\n}\n");
        assert_eq!(detached.spawns.len(), 1);
        assert!(!detached.spawns[0].joined);
    }

    #[test]
    fn ordering_sites_attribute_op_and_branch() {
        let item = first_fn(
            "fn f(&self) {\n    self.flag.store(true, Ordering::Release);\n    if self.flag.load(Ordering::Relaxed) {\n        work();\n    }\n    self.count.fetch_add(1, Ordering::Relaxed);\n}\n",
        );
        let by_line: Vec<_> = item
            .orderings
            .iter()
            .map(|o| (o.line, o.op.as_str(), o.ordering.as_str(), o.gates_branch))
            .collect();
        assert_eq!(
            by_line,
            vec![
                (2, "store", "Release", false),
                (3, "load", "Relaxed", true),
                (6, "fetch_add", "Relaxed", false),
            ]
        );
    }

    #[test]
    fn blocking_sites_cover_io_join_and_sleep() {
        let item = first_fn(
            "fn f(s: &mut TcpStream, h: JoinHandle<()>) {\n    s.write_all(b\"x\").unwrap();\n    std::thread::sleep(ms);\n    h.join().unwrap();\n}\n",
        );
        let whats: Vec<_> = item.blocking.iter().map(|b| b.what.as_str()).collect();
        assert!(whats.contains(&".write_all(..)"), "{whats:?}");
        assert!(whats.contains(&"thread::sleep"), "{whats:?}");
        assert!(whats.contains(&"thread join"), "{whats:?}");
    }
}
