//! Dataflow-lite intraprocedural analysis over fn-body token streams.
//!
//! One extra pass per function body, walking the same scrubbed token
//! stream the parser already produced. It maintains a *binding table* —
//! local name → coarse type class — fed by parameter type annotations,
//! `let` type ascriptions, and `Type::ctor(..)` initializers, and uses
//! it to answer the questions the three hot-path rules ask:
//!
//! * **Allocation sites** (`alloc-in-hot-path`): heap-container
//!   constructors (`Vec::new`, `String::with_capacity`, `Box::new`,
//!   ...), allocating macros (`format!`, `vec!`), allocating methods
//!   (`.to_string()`, `.collect()`, ...), `.clone()` on a receiver the
//!   table resolves to a heap-owning local, and `.push(..)` onto a
//!   *locally built* heap buffer. Pushes onto parameters, fields, and
//!   destructured scratch (`scratch.truths.push(..)`) are sanctioned —
//!   that is exactly the `SweepScratch` reuse idiom the rule protects.
//! * **Purity hazards** (`cache-purity`): interior-mutable types,
//!   locks, atomics, `thread_local!`, local `static` items, wall-clock
//!   reads, nondeterministic RNG seeding, and I/O. Sites with
//!   [`PuritySite::shared`] set are the subset the
//!   `shared-state-escape` rule cares about.
//! * **Receiver-typed hash iteration** (`determinism-taint`): an
//!   iteration method only counts as a hash-order hazard when its
//!   receiver *resolves* to a `HashMap`/`HashSet` binding, or when the
//!   method name alone implies a keyed container (`.keys()`,
//!   `.values()`) and the body mentions a hash type. This replaces the
//!   earlier per-body heuristic ("a hash type appears somewhere AND an
//!   iteration method appears somewhere"), which fired on functions
//!   that looked up a `HashMap` but iterated a `Vec`.
//!
//! Approximations, deliberately: the table is flat (shadowing takes
//! the last writer; block scoping is ignored), field types are opaque
//! (`self.buf.push(..)` never resolves), and flows through returns or
//! collections are invisible. Every consumer of these facts treats an
//! unresolved receiver conservatively in whichever direction keeps the
//! rule's false positives down; see `DESIGN.md` §10.

use std::collections::BTreeMap;

use crate::parser::{DetHazard, FnItem, Tok, Token};

/// Coarse type classification for a local binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BindClass {
    /// Heap-owning std container or smart pointer, hash-ordered.
    Hash,
    /// Heap-owning std container or smart pointer, deterministic order.
    Heap,
    /// A `mira-units` newtype.
    Unit,
    /// Annotated with something else (known, but none of the above).
    Other,
}

/// Where a binding came from — pushes onto locally built buffers are
/// allocation-adjacent; pushes onto parameters are the scratch-reuse
/// idiom.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Origin {
    /// Function parameter (caller-owned storage).
    Param,
    /// `let`-bound local.
    Local,
}

/// One allocation site in a function body.
#[derive(Debug, Clone)]
pub struct AllocSite {
    /// 1-based line.
    pub line: usize,
    /// What was matched (`Vec::with_capacity`, `format! macro`, ...).
    pub what: String,
}

/// One purity hazard in a function body.
#[derive(Debug, Clone)]
pub struct PuritySite {
    /// 1-based line.
    pub line: usize,
    /// What was matched.
    pub what: &'static str,
    /// Interior-mutable or static state that must not be reachable
    /// from sweep worker closures (`shared-state-escape`); locks and
    /// atomics are excluded — they are the sanctioned slot-per-shard
    /// discipline.
    pub shared: bool,
}

/// Heap-owning std types whose constructors allocate.
const HEAP_TYPES: [&str; 13] = [
    "Arc",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "Box",
    "HashMap",
    "HashSet",
    "OsString",
    "PathBuf",
    "Rc",
    "String",
    "Vec",
    "VecDeque",
];

/// The subset of [`HEAP_TYPES`] with nondeterministic iteration order.
const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];

/// Constructor-ish associated fns on [`HEAP_TYPES`] that allocate (or
/// stand for an allocation the rule should pin to a source line).
const CTOR_METHODS: [&str; 5] = ["default", "from", "from_iter", "new", "with_capacity"];

/// Method calls that allocate regardless of receiver.
const ALLOC_METHODS: [&str; 6] = [
    "collect",
    "into_owned",
    "repeat",
    "to_owned",
    "to_string",
    "to_vec",
];

/// Macros that allocate.
const ALLOC_MACROS: [&str; 2] = ["format", "vec"];

/// Iteration methods that make `HashMap`/`HashSet` order observable.
const HASH_ITER_METHODS: [&str; 8] = [
    "drain",
    "into_iter",
    "into_keys",
    "iter",
    "keys",
    "retain",
    "values",
    "values_mut",
];

/// The subset of [`HASH_ITER_METHODS`] whose name alone implies a
/// keyed container — used as a fallback when the receiver does not
/// resolve (fields, call results).
const KEYED_ITER_METHODS: [&str; 4] = ["into_keys", "keys", "values", "values_mut"];

/// Interior-mutable cell types: state that mutates through `&self`,
/// invisible to the borrow checker's exclusivity and to the sweep's
/// merge-order reasoning.
const INTERIOR_MUT_TYPES: [&str; 6] = [
    "Cell",
    "LazyLock",
    "OnceCell",
    "OnceLock",
    "RefCell",
    "UnsafeCell",
];

/// Lock types: impure (observable cross-call state) but *not* shared
/// hazards — the sweep executor's slot-per-shard Mutex discipline is
/// sanctioned.
const LOCK_TYPES: [&str; 2] = ["Mutex", "RwLock"];

fn interior_mut_what(name: &str) -> &'static str {
    match name {
        "Cell" => "interior mutability (Cell)",
        "RefCell" => "interior mutability (RefCell)",
        "UnsafeCell" => "interior mutability (UnsafeCell)",
        "OnceCell" => "interior mutability (OnceCell)",
        "OnceLock" => "interior mutability (OnceLock)",
        _ => "interior mutability (LazyLock)",
    }
}

/// Classify a list of type identifiers (from an annotation or a
/// parameter type).
fn classify_idents<S: AsRef<str>>(idents: &[S], unit_types: &[&str]) -> BindClass {
    if idents.iter().any(|s| HASH_TYPES.contains(&s.as_ref())) {
        BindClass::Hash
    } else if idents.iter().any(|s| HEAP_TYPES.contains(&s.as_ref())) {
        BindClass::Heap
    } else if idents.iter().any(|s| unit_types.contains(&s.as_ref())) {
        BindClass::Unit
    } else {
        BindClass::Other
    }
}

/// Is `ident :: target` at position `i` (the leading ident)?
fn path_to(toks: &[Token], i: usize, target: &str) -> bool {
    matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::P(b':')))
        && matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::P(b':')))
        && matches!(&toks.get(i + 3).map(|t| &t.tok), Some(Tok::Ident(s)) if *s == target)
}

fn punct_at(toks: &[Token], i: usize, b: u8) -> bool {
    matches!(toks.get(i).map(|t| &t.tok), Some(Tok::P(p)) if *p == b)
}

fn ident_str(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

/// Does a call-paren follow token `i` (the method name), skipping an
/// optional turbofish `::<..>`?
fn call_paren_follows(toks: &[Token], i: usize) -> bool {
    let mut j = i + 1;
    if punct_at(toks, j, b':') && punct_at(toks, j + 1, b':') && punct_at(toks, j + 2, b'<') {
        let mut depth = 0usize;
        j += 2;
        while j < toks.len() {
            if punct_at(toks, j, b'<') {
                depth += 1;
            } else if punct_at(toks, j, b'>') {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    punct_at(toks, j, b'(')
}

/// The declared target class of a `.collect()` at `i`, when the
/// statement names one: a turbofish (`.collect::<Welford>()`) or a
/// `let x: Type = ...` ascription at the statement head. `None` when
/// no concrete target is named (`::<_>`, tail expressions, chains
/// crossing block boundaries) — callers stay conservative and keep the
/// site. A named target that is not a known container suppresses it:
/// collecting into a `FromIterator` accumulator like `Welford` is a
/// streaming fold, not an allocation.
fn collect_target_class(toks: &[Token], i: usize, unit_types: &[&str]) -> Option<BindClass> {
    // Turbofish: `.collect::<Type<..>>()`.
    if punct_at(toks, i + 1, b':') && punct_at(toks, i + 2, b':') && punct_at(toks, i + 3, b'<') {
        let mut depth = 0usize;
        let mut j = i + 3;
        let mut heads: Vec<&str> = Vec::new();
        while j < toks.len() {
            if punct_at(toks, j, b'<') {
                depth += 1;
            } else if punct_at(toks, j, b'>') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if let Some(s) = ident_str(toks, j) {
                if s != "_" {
                    heads.push(s);
                }
            }
            j += 1;
        }
        if heads.is_empty() {
            return None; // `::<_>` names nothing concrete.
        }
        return Some(classify_idents(&heads, unit_types));
    }
    // `let [mut] x: Type = ... .collect();` — walk back to the
    // statement head. Any intervening `{`/`}`/`;` (closure blocks,
    // earlier statements) ends the scan conservatively.
    let mut j = i;
    while j > 0 {
        j -= 1;
        if punct_at(toks, j, b';') || punct_at(toks, j, b'{') || punct_at(toks, j, b'}') {
            j += 1;
            break;
        }
    }
    if ident_str(toks, j) != Some("let") {
        return None;
    }
    let mut k = j + 1;
    if ident_str(toks, k) == Some("mut") {
        k += 1;
    }
    // Pattern must be a simple ident followed by a `:` ascription.
    if ident_str(toks, k).is_none() || !punct_at(toks, k + 1, b':') || punct_at(toks, k + 2, b':') {
        return None;
    }
    let mut heads: Vec<&str> = Vec::new();
    let mut m = k + 2;
    while m < i {
        if punct_at(toks, m, b'=') && !punct_at(toks, m + 1, b'=') {
            break;
        }
        if let Some(s) = ident_str(toks, m) {
            if s != "_" {
                heads.push(s);
            }
        }
        m += 1;
    }
    if heads.is_empty() {
        None
    } else {
        Some(classify_idents(&heads, unit_types))
    }
}

/// The simple-identifier receiver of the method at `i` (`x.m(..)` with
/// `i` on `m`), or `None` for chained/field receivers (`a.b.m(..)`,
/// `f().m(..)`).
fn simple_receiver(toks: &[Token], i: usize) -> Option<&str> {
    if i < 2 || !punct_at(toks, i - 1, b'.') {
        return None;
    }
    let recv = ident_str(toks, i - 2)?;
    // `self.x.m(..)` / `a.b.m(..)`: the ident before `.m` is a field.
    if i >= 3 && punct_at(toks, i - 3, b'.') {
        return None;
    }
    Some(recv)
}

/// A deferred hash-iteration candidate, resolved after the whole body
/// is seen (the hash-type mention may come later than the call).
struct IterCandidate {
    line: usize,
    method_implies_keys: bool,
    /// `Some(class)` when the receiver resolved in the binding table.
    receiver: Option<BindClass>,
}

/// Run the dataflow-lite pass over one body (`toks` is the same slice
/// [`crate::parser`] hands to its body scanner: from the opening `{`
/// to just before the matching `}`). Fills [`FnItem::allocs`],
/// [`FnItem::impurities`], and appends receiver-typed hash-iteration
/// hazards to [`FnItem::hazards`].
#[allow(clippy::too_many_lines)]
pub fn analyze(toks: &[Token], item: &mut FnItem, unit_types: &[&str]) {
    let mut bindings: BTreeMap<String, (BindClass, Origin)> = BTreeMap::new();
    for (name, ty) in &item.params {
        let Some(name) = name else { continue };
        let class = classify_idents(ty, unit_types);
        if class != BindClass::Other {
            bindings.insert(name.clone(), (class, Origin::Param));
        }
    }

    let mut saw_hash_mention = false;
    let mut iter_candidates: Vec<IterCandidate> = Vec::new();

    let mut i = 0;
    while i < toks.len() {
        let line = toks[i].line;
        let Tok::Ident(word) = &toks[i].tok else {
            i += 1;
            continue;
        };
        let word = word.as_str();

        if HASH_TYPES.contains(&word) {
            saw_hash_mention = true;
        }

        // `let [mut] name [: Type] [= init]` — extend the binding
        // table. Pattern lets (`let Some(x) = ..`, destructuring) are
        // skipped: only simple-identifier bindings resolve.
        if word == "let" {
            let mut j = i + 1;
            while ident_str(toks, j) == Some("mut") {
                j += 1;
            }
            if let Some(name) = ident_str(toks, j) {
                let after = j + 1;
                // `:` (not `::`) → annotated; `=` → initializer only.
                let annotated = punct_at(toks, after, b':') && !punct_at(toks, after + 1, b':');
                let assigned = punct_at(toks, after, b'=') && !punct_at(toks, after + 1, b'=');
                if annotated || assigned {
                    let mut class = BindClass::Other;
                    let mut k = after;
                    if annotated {
                        let mut ann: Vec<&str> = Vec::new();
                        k += 1;
                        while k < toks.len() {
                            match &toks[k].tok {
                                Tok::P(b'=' | b';') => break,
                                Tok::Ident(t) => {
                                    ann.push(t.as_str());
                                    k += 1;
                                }
                                _ => k += 1,
                            }
                        }
                        class = classify_idents(&ann, unit_types);
                    }
                    // `= Type::ctor(..)` / `= vec![..]` initializers.
                    if class == BindClass::Other && punct_at(toks, k, b'=') {
                        if let Some(head) = ident_str(toks, k + 1) {
                            if punct_at(toks, k + 2, b':') && punct_at(toks, k + 3, b':') {
                                class = classify_idents(&[head], unit_types);
                            } else if head == "vec" && punct_at(toks, k + 2, b'!') {
                                class = BindClass::Heap;
                            }
                        }
                    }
                    if class != BindClass::Other {
                        bindings.insert(name.to_owned(), (class, Origin::Local));
                    }
                }
            }
            i += 1;
            continue;
        }

        // --- Allocation sites -----------------------------------------

        // `Vec::new(..)`, `String::with_capacity(..)`, `Box::new(..)`.
        if HEAP_TYPES.contains(&word) {
            if let Some(method) = ident_str(toks, i + 3) {
                if punct_at(toks, i + 1, b':')
                    && punct_at(toks, i + 2, b':')
                    && CTOR_METHODS.contains(&method)
                    && call_paren_follows(toks, i + 3)
                {
                    item.allocs.push(AllocSite {
                        line,
                        what: format!("{word}::{method}"),
                    });
                }
            }
        }

        // `format!(..)` / `vec![..]`.
        if ALLOC_MACROS.contains(&word)
            && punct_at(toks, i + 1, b'!')
            && (punct_at(toks, i + 2, b'(') || punct_at(toks, i + 2, b'['))
        {
            item.allocs.push(AllocSite {
                line,
                what: format!("{word}! macro"),
            });
        }

        let is_method = i >= 1 && punct_at(toks, i - 1, b'.');
        if is_method && call_paren_follows(toks, i) {
            // `.to_string()` / `.collect::<Vec<_>>()` / ... A collect
            // whose named target is not a container (e.g. a `Welford`
            // accumulator) folds without allocating and is skipped.
            if ALLOC_METHODS.contains(&word) {
                let folds_in_place = word == "collect"
                    && matches!(
                        collect_target_class(toks, i, unit_types),
                        Some(BindClass::Unit | BindClass::Other)
                    );
                if !folds_in_place {
                    item.allocs.push(AllocSite {
                        line,
                        what: format!(".{word}()"),
                    });
                }
            }
            // `.clone()` on a receiver known to own heap storage.
            if word == "clone" {
                if let Some((class, _)) = simple_receiver(toks, i).and_then(|r| bindings.get(r)) {
                    if matches!(class, BindClass::Heap | BindClass::Hash) {
                        item.allocs.push(AllocSite {
                            line,
                            what: ".clone() of heap-owning value".to_owned(),
                        });
                    }
                }
            }
            // `.push(..)` onto a locally built buffer. Params and
            // fields (unresolved receivers) are the scratch-reuse
            // idiom and stay exempt.
            if word == "push" {
                if let Some(&(class, Origin::Local)) =
                    simple_receiver(toks, i).and_then(|r| bindings.get(r))
                {
                    if matches!(class, BindClass::Heap | BindClass::Hash) {
                        item.allocs.push(AllocSite {
                            line,
                            what: ".push onto locally built buffer".to_owned(),
                        });
                    }
                }
            }
            // Hash iteration: defer — the container mention may come
            // later in the body.
            if HASH_ITER_METHODS.contains(&word) {
                iter_candidates.push(IterCandidate {
                    line,
                    method_implies_keys: KEYED_ITER_METHODS.contains(&word),
                    receiver: simple_receiver(toks, i)
                        .and_then(|r| bindings.get(r))
                        .map(|&(class, _)| class),
                });
            }
        }

        // --- Purity hazards -------------------------------------------

        if let Some(what) = INTERIOR_MUT_TYPES
            .iter()
            .find(|t| **t == word)
            .copied()
            .map(interior_mut_what)
        {
            item.impurities.push(PuritySite {
                line,
                what,
                shared: true,
            });
        }
        if LOCK_TYPES.contains(&word) {
            item.impurities.push(PuritySite {
                line,
                what: "lock-based shared state (Mutex/RwLock)",
                shared: false,
            });
        }
        if word.starts_with("Atomic") && word.len() > "Atomic".len() {
            item.impurities.push(PuritySite {
                line,
                what: "atomic shared state",
                shared: false,
            });
        }
        match word {
            "thread_local" if punct_at(toks, i + 1, b'!') => {
                item.impurities.push(PuritySite {
                    line,
                    what: "thread_local! state",
                    shared: true,
                });
            }
            "static" => {
                item.impurities.push(PuritySite {
                    line,
                    what: "static item in fn body",
                    shared: true,
                });
            }
            "SystemTime" => {
                item.impurities.push(PuritySite {
                    line,
                    what: "SystemTime wall-clock read",
                    shared: false,
                });
            }
            "Instant" if path_to(toks, i, "now") => {
                item.impurities.push(PuritySite {
                    line,
                    what: "Instant::now wall-clock read",
                    shared: false,
                });
            }
            "thread_rng" | "from_entropy" | "from_os_rng" => {
                item.impurities.push(PuritySite {
                    line,
                    what: "nondeterministic RNG",
                    shared: false,
                });
            }
            "rand" if path_to(toks, i, "rng") => {
                item.impurities.push(PuritySite {
                    line,
                    what: "nondeterministic RNG",
                    shared: false,
                });
            }
            "File" | "fs" if punct_at(toks, i + 1, b':') && punct_at(toks, i + 2, b':') => {
                item.impurities.push(PuritySite {
                    line,
                    what: "file I/O",
                    shared: false,
                });
            }
            "env" if path_to(toks, i, "var") || path_to(toks, i, "vars") => {
                item.impurities.push(PuritySite {
                    line,
                    what: "environment read",
                    shared: false,
                });
            }
            "stdin" | "stdout" | "stderr" if punct_at(toks, i + 1, b'(') => {
                item.impurities.push(PuritySite {
                    line,
                    what: "console I/O",
                    shared: false,
                });
            }
            "print" | "println" | "eprint" | "eprintln" if punct_at(toks, i + 1, b'!') => {
                item.impurities.push(PuritySite {
                    line,
                    what: "console I/O",
                    shared: false,
                });
            }
            _ => {}
        }

        i += 1;
    }

    // Resolve the deferred hash-iteration candidates.
    for cand in iter_candidates {
        let hazard = match cand.receiver {
            Some(BindClass::Hash) => true,
            // Receiver resolved to a deterministic container: proof it
            // is *not* hash iteration (the pre-dataflow heuristic fired
            // here).
            Some(BindClass::Heap | BindClass::Unit | BindClass::Other) => false,
            // Unresolved (field, call result): only the keyed method
            // names count, and only when a hash type appears in the
            // body at all.
            None => cand.method_implies_keys && saw_hash_mention,
        };
        if hazard {
            item.hazards.push(DetHazard {
                line: cand.line,
                what: "HashMap/HashSet iteration order",
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::analyze as lex_analyze;
    use crate::parser::parse_file;
    use std::path::Path;

    const UNITS: [&str; 2] = ["Celsius", "Watts"];

    fn first_fn(src: &str) -> FnItem {
        let file = parse_file(
            Path::new("crates/x/src/lib.rs"),
            src,
            &lex_analyze(src),
            &UNITS,
        );
        file.fns.into_iter().next().expect("one fn parsed")
    }

    fn alloc_whats(src: &str) -> Vec<String> {
        first_fn(src)
            .allocs
            .iter()
            .map(|a| a.what.clone())
            .collect()
    }

    #[test]
    fn heap_constructors_are_alloc_sites() {
        let whats = alloc_whats(
            "fn f() {\n    let v = Vec::with_capacity(4);\n    let s = String::new();\n    let b = Box::new(1);\n}\n",
        );
        assert_eq!(whats, vec!["Vec::with_capacity", "String::new", "Box::new"]);
    }

    #[test]
    fn alloc_macros_and_methods_fire() {
        let whats = alloc_whats(
            "fn f(n: u32) {\n    let s = format!(\"{n}\");\n    let v = vec![1, 2];\n    let t = n.to_string();\n    let c = (0..n).collect::<Vec<_>>();\n}\n",
        );
        assert!(whats.contains(&"format! macro".to_owned()));
        assert!(whats.contains(&"vec! macro".to_owned()));
        assert!(whats.contains(&".to_string()".to_owned()));
        assert!(whats.contains(&".collect()".to_owned()), "{whats:?}");
    }

    #[test]
    fn clone_fires_only_on_heap_typed_receivers() {
        let heap = alloc_whats("fn f(v: &Vec<f64>) {\n    let w = v.clone();\n}\n");
        assert_eq!(heap, vec![".clone() of heap-owning value"]);
        let copy = alloc_whats("fn f(x: u64) {\n    let y = x.clone();\n}\n");
        assert!(copy.is_empty(), "{copy:?}");
        let unknown = alloc_whats("fn f(&self) {\n    let y = self.flows.clone();\n}\n");
        assert!(unknown.is_empty(), "field receivers stay unresolved");
    }

    #[test]
    fn push_exempts_params_and_fields() {
        // Scratch-reuse idiom: push onto a parameter or a field.
        let reuse = alloc_whats(
            "fn f(out: &mut Vec<f64>, scratch: &mut Scratch) {\n    out.push(1.0);\n    scratch.truths.push(2.0);\n}\n",
        );
        assert!(reuse.is_empty(), "{reuse:?}");
        // Locally built buffer: the ctor and the push both pin lines.
        let local =
            alloc_whats("fn f() {\n    let mut v: Vec<f64> = Vec::new();\n    v.push(1.0);\n}\n");
        assert_eq!(local, vec!["Vec::new", ".push onto locally built buffer"]);
    }

    #[test]
    fn purity_hazards_detected() {
        let item = first_fn(
            "fn f() {\n    let c = RefCell::new(1);\n    let m = Mutex::new(2);\n    let t = std::time::Instant::now();\n    let r = thread_rng();\n    println!(\"x\");\n}\n",
        );
        let whats: Vec<_> = item.impurities.iter().map(|p| p.what).collect();
        assert!(whats.contains(&"interior mutability (RefCell)"));
        assert!(whats.contains(&"lock-based shared state (Mutex/RwLock)"));
        assert!(whats.contains(&"Instant::now wall-clock read"));
        assert!(whats.contains(&"nondeterministic RNG"));
        assert!(whats.contains(&"console I/O"));
        let shared: Vec<_> = item.impurities.iter().filter(|p| p.shared).collect();
        assert_eq!(shared.len(), 1, "only the RefCell is a shared hazard");
    }

    #[test]
    fn pure_arithmetic_has_no_hazards() {
        let item = first_fn("fn f(x: f64) -> f64 {\n    let y = x * 2.0;\n    y + 1.0\n}\n");
        assert!(item.impurities.is_empty(), "{:?}", item.impurities);
        assert!(item.allocs.is_empty(), "{:?}", item.allocs);
    }

    #[test]
    fn hash_iteration_requires_resolved_or_keyed_receiver() {
        // Resolved hash receiver: hazard.
        let hit = first_fn(
            "fn f() {\n    let m: HashMap<u8, u8> = HashMap::new();\n    for k in m.keys() {}\n}\n",
        );
        assert!(hit
            .hazards
            .iter()
            .any(|h| h.what == "HashMap/HashSet iteration order"));

        // The pre-dataflow false positive: a hash type mentioned, but
        // the iteration runs over a Vec.
        let fp = first_fn(
            "fn f(m: &HashMap<u8, u8>) {\n    let v: Vec<u8> = Vec::new();\n    for x in v.iter() {}\n    let _ = m.get(&1);\n}\n",
        );
        assert!(
            fp.hazards.is_empty(),
            "Vec iteration is not a hash hazard: {:?}",
            fp.hazards
        );

        // Unresolved receiver + keyed method + hash mention: hazard.
        let field = first_fn(
            "fn f(&self) {\n    let m: HashMap<u8, u8> = HashMap::new();\n    let _ = m.len();\n    for k in self.map.keys() {}\n}\n",
        );
        assert!(
            field
                .hazards
                .iter()
                .any(|h| h.what == "HashMap/HashSet iteration order"),
            "{:?}",
            field.hazards
        );

        // Unresolved receiver + generic method: no hazard without
        // receiver proof, even with a hash mention.
        let generic = first_fn(
            "fn f(&self, m: &HashMap<u8, u8>) {\n    let _ = m.get(&1);\n    for x in self.items.iter() {}\n}\n",
        );
        assert!(generic.hazards.is_empty(), "{:?}", generic.hazards);
    }

    #[test]
    fn let_else_and_patterns_do_not_bind() {
        let item = first_fn(
            "fn f(o: Option<Vec<u8>>) {\n    let Some(v) = o else {\n        return;\n    };\n    let (a, b) = (1, 2);\n    let _ = (a, b, v);\n}\n",
        );
        // No spurious allocs or hazards from pattern bindings.
        assert!(item.allocs.is_empty(), "{:?}", item.allocs);
    }

    #[test]
    fn nested_closures_and_turbofish_chains_scan() {
        let item = first_fn(
            "fn f(xs: &[u64]) -> Vec<u64> {\n    xs.iter().map(|x| {\n        let inner = move |y: u64| y + 1;\n        inner(*x)\n    }).collect::<Vec<u64>>()\n}\n",
        );
        assert_eq!(
            item.allocs
                .iter()
                .map(|a| a.what.as_str())
                .collect::<Vec<_>>(),
            vec![".collect()"]
        );
    }

    #[test]
    fn collect_into_non_container_target_is_not_an_alloc() {
        // Turbofish naming a plain accumulator: streaming fold.
        let fold = alloc_whats(
            "fn f(xs: &[f64]) -> f64 {\n    xs.iter().copied().collect::<Welford>().mean()\n}\n",
        );
        assert!(fold.is_empty(), "{fold:?}");
        // Let ascription naming a plain accumulator: same.
        let ascribed =
            alloc_whats("fn f(xs: &[f64]) -> f64 {\n    let w: Welford = xs.iter().copied().collect();\n    w.mean()\n}\n");
        assert!(ascribed.is_empty(), "{ascribed:?}");
        // Containers keep firing through both spellings.
        let heap = alloc_whats(
            "fn f(xs: &[f64]) {\n    let v: Vec<f64> = xs.iter().copied().collect();\n}\n",
        );
        assert_eq!(heap, vec![".collect()"]);
        // No named target at all: conservative, still a site.
        let bare =
            alloc_whats("fn f(xs: &[f64]) {\n    let v = xs.iter().copied().collect::<_>();\n}\n");
        assert_eq!(bare, vec![".collect()"]);
    }

    #[test]
    fn static_and_thread_local_are_shared_hazards() {
        let item = first_fn(
            "fn f() -> u64 {\n    static SEED: u64 = 7;\n    thread_local! { static TL: u8 = 0; }\n    SEED\n}\n",
        );
        assert!(item.impurities.iter().any(|p| p.shared));
        let whats: Vec<_> = item.impurities.iter().map(|p| p.what).collect();
        assert!(whats.contains(&"static item in fn body"));
        assert!(whats.contains(&"thread_local! state"));
    }
}
