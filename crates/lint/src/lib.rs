//! `mira-lint`: workspace-wide domain-invariant static analysis.
//!
//! The paper's conclusions rest on six years of trustworthy telemetry;
//! a single unit mix-up, silent `NaN`, or nondeterministic RNG call
//! invalidates every downstream figure. This crate machine-enforces the
//! conventions the workspace relies on, with zero registry dependencies
//! (a hand-rolled scanner in [`lexer`] and item parser in [`parser`],
//! not `syn`):
//!
//! | rule | invariant |
//! |------|-----------|
//! | `raw-f64-in-public-api` | physics-crate public `fn`s use `mira-units` newtypes |
//! | `no-unwrap-in-lib` | no `unwrap()` / `expect(..)` / `panic!` in library code |
//! | `lossy-cast` | no `as f64` / `as usize` / `as u32` / `as i64` |
//! | `nan-unsafe-compare` | no `partial_cmp().unwrap()`, no bare float `==` |
//! | `nondeterminism` | no wall clocks / unseeded RNGs in simulation crates |
//! | `panic-reachability` | no panic site reachable from audited public fns |
//! | `unit-flow` | no raw unit `f64` crossing crates untagged |
//! | `determinism-taint` | no nondeterminism reachable from sweep/summary |
//! | `deprecated-call` | no in-workspace calls to deprecated shims |
//! | `alloc-in-hot-path` | no allocation reachable from the sweep hot roots |
//! | `cache-purity` | fns feeding memo layers are pure |
//! | `shared-state-escape` | no shared mutable state under spawned work |
//! | `lock-order` | no cycle in the workspace lock-acquisition graph |
//! | `guard-across-blocking` | no guard held across blocking I/O |
//! | `guard-across-panic` | no guard held across a panic-reachable call |
//! | `atomic-ordering` | orderings name the protocol, no blanket `SeqCst` |
//! | `unjoined-thread` | every `thread::spawn` handle is joined |
//!
//! The first five are *line* rules; the rest are *semantic* rules
//! that run over a workspace [`index::SymbolIndex`] and
//! [`callgraph::CallGraph`] built by [`parser`] (several also over the
//! per-body facts from [`dataflow`]; the five lock/atomic/thread rules
//! live in [`concurrency`]). Files are scanned in
//! parallel (`MIRA_LINT_THREADS`, same shard-claim discipline as
//! `mira-core::sweep`) and findings merge in deterministic file order,
//! so output is byte-identical at any worker count — and byte-identical
//! between cold and incremental-cache runs ([`cache`]).
//!
//! Violations can be waved through inline (`// mira-lint:
//! allow(<rule>)` on the offending line or the one above) or
//! grandfathered in bulk via `lint-allow.toml` budgets
//! ([`allowlist`]). The binary walks `crates/*/src/**/*.rs` and exits
//! nonzero on any unallowed finding; `tests/lint_gate.rs` runs the same
//! engine under `cargo test`, so the gate cannot be skipped.

pub mod allowlist;
pub mod cache;
pub mod callgraph;
pub(crate) mod concurrency;
pub mod dataflow;
pub mod index;
pub mod lexer;
pub mod parser;
pub mod rules;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

pub use allowlist::{gate, Allowlist, Gated};
pub use callgraph::CallGraph;
pub use index::SymbolIndex;
pub use rules::{check_file, semantic_findings, Finding, Rule};

/// Environment variable pinning the scan worker count.
pub const THREADS_ENV: &str = "MIRA_LINT_THREADS";

/// Worker count: `MIRA_LINT_THREADS` if set to a positive integer,
/// otherwise available parallelism capped at 8. The cap keeps the
/// file-claim loop from drowning in spawn overhead on big hosts; the
/// merge is deterministic at any value.
#[must_use]
pub fn effective_threads() -> usize {
    std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| thread::available_parallelism().map_or(1, |n| n.get().min(8)))
}

/// Scan one source string as though it lived at `path` (which decides
/// crate-specific rules). Line rules only — semantic rules need the
/// whole workspace; see [`Workspace::scan`].
#[must_use]
pub fn scan_source(path: &Path, source: &str) -> Vec<Finding> {
    check_file(path, &lexer::analyze(source))
}

/// All `.rs` files under `crates/*/src`, workspace-relative, sorted.
///
/// # Errors
/// Returns any I/O error hit while walking (a vanished dir mid-walk).
pub fn workspace_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    for entry in fs::read_dir(&crates_dir)? {
        let entry = entry?;
        if !entry.file_type()?.is_dir() {
            continue;
        }
        let src = entry.path().join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    for file in &mut files {
        if let Ok(rel) = file.strip_prefix(root) {
            *file = rel.to_path_buf();
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if entry.file_type()?.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Everything the scan needs, loaded into memory: sources and crate
/// manifests, both workspace-relative.
#[derive(Debug)]
pub struct Workspace {
    /// `(relative path, contents)` of every `crates/*/src/**/*.rs`,
    /// sorted by path.
    pub sources: Vec<(PathBuf, String)>,
    /// `(relative path, contents)` of every `crates/*/Cargo.toml`.
    pub manifests: Vec<(PathBuf, String)>,
}

impl Workspace {
    /// Load a workspace from disk.
    ///
    /// # Errors
    /// Returns the first unreadable file or directory.
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let mut sources = Vec::new();
        for rel in workspace_sources(root)? {
            let text = fs::read_to_string(root.join(&rel))?;
            sources.push((rel, text));
        }
        let mut manifests = Vec::new();
        let crates_dir = root.join("crates");
        let mut dirs: Vec<PathBuf> = Vec::new();
        for entry in fs::read_dir(&crates_dir)? {
            let entry = entry?;
            if entry.file_type()?.is_dir() {
                dirs.push(entry.path());
            }
        }
        dirs.sort();
        for dir in dirs {
            let manifest = dir.join("Cargo.toml");
            if manifest.is_file() {
                let text = fs::read_to_string(&manifest)?;
                let rel = manifest
                    .strip_prefix(root)
                    .map_or_else(|_| manifest.clone(), Path::to_path_buf);
                manifests.push((rel, text));
            }
        }
        Ok(Workspace { sources, manifests })
    }

    /// Build a workspace from in-memory files (fixtures, tests). `.rs`
    /// entries become sources; `Cargo.toml` entries become manifests.
    #[must_use]
    pub fn from_files(files: Vec<(PathBuf, String)>) -> Workspace {
        let mut sources = Vec::new();
        let mut manifests = Vec::new();
        for (rel, text) in files {
            if rel.extension().is_some_and(|e| e == "rs") {
                sources.push((rel, text));
            } else if rel.file_name().is_some_and(|n| n == "Cargo.toml") {
                manifests.push((rel, text));
            }
        }
        sources.sort_by(|a, b| a.0.cmp(&b.0));
        manifests.sort_by(|a, b| a.0.cmp(&b.0));
        Workspace { sources, manifests }
    }

    /// Run every rule with `threads` workers. The per-file pass
    /// (lexing, line rules, parsing) is sharded exactly like
    /// `mira-core::sweep` — workers claim file indices from an atomic
    /// counter — and results merge in file order, so findings are
    /// byte-identical at any worker count. The semantic pass is
    /// single-threaded over the merged index (it is a small fraction of
    /// the work).
    #[must_use]
    pub fn scan(&self, threads: usize) -> Vec<Finding> {
        let cached = vec![None; self.sources.len()];
        self.assemble(scan_files_sharded(&self.sources, threads.max(1), &cached))
    }

    /// [`Workspace::scan`] with an incremental cache at `cache_path`.
    ///
    /// Per-file *line* findings are keyed by content hash: an unchanged
    /// file skips its line rules (it is still lexed and parsed — the
    /// semantic pass needs the whole-workspace index either way), and a
    /// fully unchanged workspace returns the stored final findings
    /// without scanning at all. Cached and cold results are
    /// byte-identical (gated in ci.sh); the cache self-invalidates on
    /// any [`cache::RULE_VERSION`] bump.
    #[must_use]
    pub fn scan_with_cache(&self, threads: usize, cache_path: &Path) -> Vec<Finding> {
        let digest: Vec<(String, u64)> = self
            .sources
            .iter()
            .map(|(rel, text)| {
                (
                    rel.to_string_lossy().replace('\\', "/"),
                    cache::content_hash(text),
                )
            })
            .collect();
        let prior = cache::ScanCache::load(cache_path);
        if let Some(cache) = &prior {
            if cache.matches(&digest) {
                return cache.final_findings.clone();
            }
        }
        let cached: Vec<Option<Vec<Finding>>> = digest
            .iter()
            .map(|(path, hash)| {
                prior
                    .as_ref()
                    .and_then(|c| c.line_findings_for(path, *hash))
                    .map(<[Finding]>::to_vec)
            })
            .collect();
        let per_file = scan_files_sharded(&self.sources, threads.max(1), &cached);
        let raw: Vec<Vec<Finding>> = per_file.iter().map(|(f, _)| f.clone()).collect();
        let findings = self.assemble(per_file);
        let next = cache::ScanCache::new(&digest, raw, findings.clone());
        // Best-effort: a read-only target dir degrades to cold scans.
        let _ = next.store(cache_path);
        findings
    }

    /// The post-shard pipeline: merge per-file passes in file order,
    /// build the index and call graph, run the semantic rules, and sort
    /// by the total key (file, line, column, rule, message).
    fn assemble(&self, per_file: Vec<FilePass>) -> Vec<Finding> {
        let mut findings = Vec::new();
        let mut parsed = Vec::with_capacity(per_file.len());
        for (mut file_findings, parsed_file) in per_file {
            findings.append(&mut file_findings);
            parsed.push(parsed_file);
        }

        let index = SymbolIndex::build(parsed, &self.manifests);

        // The per-file pass cannot see `#[cfg(test)] mod x;` pointing
        // at a sibling file; the index can. Drop line findings from
        // files it proved test-only so both layers agree on scope.
        let test_paths: std::collections::BTreeSet<&Path> = index
            .test_files
            .iter()
            .map(|&i| index.files[i].rel.as_path())
            .collect();
        findings.retain(|f| !test_paths.contains(f.file.as_path()));

        let graph = CallGraph::build(&index);
        findings.extend(semantic_findings(&index, &graph));

        findings.sort_by(|a, b| {
            (&a.file, a.line, a.column, a.rule, &a.matched)
                .cmp(&(&b.file, b.line, b.column, b.rule, &b.matched))
        });
        findings
    }
}

type FilePass = (Vec<Finding>, parser::ParsedFile);

/// One file's pass. `cached` short-circuits the line rules only: the
/// lex + parse still run because the semantic pass needs every file's
/// items regardless of what changed.
fn scan_file(rel: &Path, text: &str, cached: Option<&[Finding]>) -> FilePass {
    let lines = lexer::analyze(text);
    let findings = cached.map_or_else(|| check_file(rel, &lines), <[Finding]>::to_vec);
    let parsed = parser::parse_file(rel, text, &lines, &rules::UNIT_TYPES);
    (findings, parsed)
}

/// The deterministic shard scan: `workers` threads claim file indices
/// from a shared counter; each result lands in its file's slot; the
/// merge reads slots in file order. `cached[i]` carries file `i`'s
/// cache-hit line findings, when any.
fn scan_files_sharded(
    sources: &[(PathBuf, String)],
    threads: usize,
    cached: &[Option<Vec<Finding>>],
) -> Vec<FilePass> {
    let workers = threads.min(sources.len()).max(1);
    let slots: Vec<Mutex<Option<FilePass>>> = sources.iter().map(|_| Mutex::new(None)).collect();

    if workers > 1 {
        let cursor = AtomicUsize::new(0);
        thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some((rel, text)) = sources.get(i) else {
                        break;
                    };
                    let pass = scan_file(rel, text, cached[i].as_deref());
                    if let Ok(mut slot) = slots[i].lock() {
                        *slot = Some(pass);
                    }
                });
            }
        });
    }

    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            let inner = match slot.into_inner() {
                Ok(v) => v,
                Err(poisoned) => poisoned.into_inner(),
            };
            // Single-threaded mode, or a slot a worker failed to fill:
            // compute inline so the scan never silently drops a file.
            inner.unwrap_or_else(|| scan_file(&sources[i].0, &sources[i].1, cached[i].as_deref()))
        })
        .collect()
}

/// Scan the whole workspace rooted at `root` with [`effective_threads`]
/// workers.
///
/// # Errors
/// Returns the first unreadable file or directory.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    Ok(Workspace::load(root)?.scan(effective_threads()))
}

/// Locate the workspace root: walk upward from `start` until a
/// directory holding both `Cargo.toml` and `crates/` appears.
#[must_use]
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(candidate) = dir {
        if candidate.join("Cargo.toml").is_file() && candidate.join("crates").is_dir() {
            return Some(candidate.to_path_buf());
        }
        dir = candidate.parent();
    }
    None
}

/// Render gated results as JSON with a fixed key order and sorted
/// findings, so output is byte-stable across runs and worker counts
/// (asserted by the golden-file test).
#[must_use]
pub fn render_json(gated: &Gated, allowlist_entries: usize) -> String {
    let mut out = String::from("{\n  \"rejected\": [");
    for (i, finding) in gated.rejected.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\n");
        out.push_str(&format!(
            "      \"file\": {},\n",
            json_str(&finding.file.to_string_lossy().replace('\\', "/"))
        ));
        out.push_str(&format!("      \"line\": {},\n", finding.line));
        out.push_str(&format!("      \"column\": {},\n", finding.column));
        out.push_str(&format!(
            "      \"rule\": {},\n",
            json_str(finding.rule.name())
        ));
        out.push_str(&format!(
            "      \"message\": {},\n",
            json_str(&finding.matched)
        ));
        out.push_str(&format!(
            "      \"suggestion\": {},\n",
            json_str(finding.rule.suggestion())
        ));
        let chain: Vec<String> = finding.chain.iter().map(|c| json_str(c)).collect();
        out.push_str(&format!("      \"chain\": [{}]\n", chain.join(", ")));
        out.push_str("    }");
    }
    if gated.rejected.is_empty() {
        out.push(']');
    } else {
        out.push_str("\n  ]");
    }
    out.push_str(&format!(",\n  \"grandfathered\": {},", gated.grandfathered));
    out.push_str(&format!(
        "\n  \"allowlist_entries\": {allowlist_entries}\n}}\n"
    ));
    out
}

/// Minimal JSON string escaping (std-only).
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => out.push_str(&format!("\\u{:04x}", u32::from(c))),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_source_applies_path_sensitive_rules() {
        let src = "pub fn t(&self) -> f64 { self.v as f64 }\n";
        let cooling = scan_source(Path::new("crates/cooling/src/x.rs"), src);
        assert_eq!(cooling.len(), 2, "{cooling:?}"); // raw-f64 + lossy-cast
        let nn = scan_source(Path::new("crates/nn/src/x.rs"), src);
        assert_eq!(nn.len(), 1, "{nn:?}"); // lossy-cast only
    }

    #[test]
    fn find_root_from_nested_dir() {
        let here = std::env::current_dir().expect("cwd exists");
        let root = find_workspace_root(&here).expect("inside the workspace");
        assert!(root.join("crates").is_dir());
    }

    fn fixture_workspace() -> Workspace {
        Workspace::from_files(vec![
            (
                PathBuf::from("crates/alpha/Cargo.toml"),
                "[package]\nname = \"mira-alpha\"\n[dependencies]\nmira-beta.workspace = true\n"
                    .to_owned(),
            ),
            (
                PathBuf::from("crates/beta/Cargo.toml"),
                "[package]\nname = \"mira-beta\"\n".to_owned(),
            ),
            (
                PathBuf::from("crates/alpha/src/lib.rs"),
                "pub fn touch(o: Option<u8>) -> u8 {\n    o.unwrap()\n}\n".to_owned(),
            ),
            (
                PathBuf::from("crates/beta/src/lib.rs"),
                "pub fn scale(n: u64) -> f64 {\n    n as f64\n}\n".to_owned(),
            ),
        ])
    }

    #[test]
    fn workspace_scan_is_thread_count_invariant() {
        let ws = fixture_workspace();
        let one = ws.scan(1);
        let four = ws.scan(4);
        assert_eq!(one, four);
        assert!(!one.is_empty());
        // Sorted by (file, line, column, rule).
        let keys: Vec<_> = one
            .iter()
            .map(|f| (f.file.clone(), f.line, f.column, f.rule))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn render_json_escapes_and_is_stable() {
        let gated = Gated {
            rejected: vec![Finding {
                file: PathBuf::from("crates/a/src/x.rs"),
                line: 3,
                column: 17,
                rule: Rule::NoUnwrapInLib,
                matched: "`unwrap()` in \"library\" code".to_owned(),
                chain: vec!["a".to_owned(), "b".to_owned()],
            }],
            grandfathered: 2,
            slack: Vec::new(),
        };
        let json = render_json(&gated, 5);
        assert!(json.contains("\"rule\": \"no-unwrap-in-lib\""));
        assert!(json.contains("\"column\": 17"));
        assert!(json.contains("\\\"library\\\""));
        assert!(json.contains("\"chain\": [\"a\", \"b\"]"));
        assert!(json.contains("\"grandfathered\": 2"));
        assert!(json.contains("\"allowlist_entries\": 5"));
        assert_eq!(json, render_json(&gated, 5), "rendering is deterministic");
    }

    #[test]
    fn render_json_empty_rejected_is_compact() {
        let gated = Gated::default();
        let json = render_json(&gated, 0);
        assert!(json.contains("\"rejected\": []"));
    }
}
