//! `mira-lint`: workspace-wide domain-invariant static analysis.
//!
//! The paper's conclusions rest on six years of trustworthy telemetry;
//! a single unit mix-up, silent `NaN`, or nondeterministic RNG call
//! invalidates every downstream figure. This crate machine-enforces the
//! conventions the workspace relies on, with zero registry dependencies
//! (a hand-rolled scanner in [`lexer`], not `syn`):
//!
//! | rule | invariant |
//! |------|-----------|
//! | `raw-f64-in-public-api` | physics-crate public `fn`s use `mira-units` newtypes |
//! | `no-unwrap-in-lib` | no `unwrap()` / `expect(..)` / `panic!` in library code |
//! | `lossy-cast` | no `as f64` / `as usize` / `as u32` / `as i64` |
//! | `nan-unsafe-compare` | no `partial_cmp().unwrap()`, no bare float `==` |
//! | `nondeterminism` | no wall clocks / unseeded RNGs in simulation crates |
//!
//! Violations can be waved through inline (`// mira-lint:
//! allow(<rule>)` on the offending line or the one above) or
//! grandfathered in bulk via `lint-allow.toml` budgets
//! ([`allowlist`]). The binary walks `crates/*/src/**/*.rs` and exits
//! nonzero on any unallowed finding; `tests/lint_gate.rs` runs the same
//! engine under `cargo test`, so the gate cannot be skipped.

pub mod allowlist;
pub mod lexer;
pub mod rules;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use allowlist::{gate, Allowlist, Gated};
pub use rules::{check_file, Finding, Rule};

/// Scan one source string as though it lived at `path` (which decides
/// crate-specific rules). Used by the binary, the gate test, and rule
/// fixtures.
#[must_use]
pub fn scan_source(path: &Path, source: &str) -> Vec<Finding> {
    check_file(path, &lexer::analyze(source))
}

/// All `.rs` files under `crates/*/src`, workspace-relative, sorted.
///
/// # Errors
/// Returns any I/O error hit while walking (a vanished dir mid-walk).
pub fn workspace_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    for entry in fs::read_dir(&crates_dir)? {
        let entry = entry?;
        if !entry.file_type()?.is_dir() {
            continue;
        }
        let src = entry.path().join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    for file in &mut files {
        if let Ok(rel) = file.strip_prefix(root) {
            *file = rel.to_path_buf();
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if entry.file_type()?.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scan the whole workspace rooted at `root`.
///
/// # Errors
/// Returns the first unreadable file or directory.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for rel in workspace_sources(root)? {
        let source = fs::read_to_string(root.join(&rel))?;
        findings.extend(scan_source(&rel, &source));
    }
    Ok(findings)
}

/// Locate the workspace root: walk upward from `start` until a
/// directory holding both `Cargo.toml` and `crates/` appears.
#[must_use]
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(candidate) = dir {
        if candidate.join("Cargo.toml").is_file() && candidate.join("crates").is_dir() {
            return Some(candidate.to_path_buf());
        }
        dir = candidate.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_source_applies_path_sensitive_rules() {
        let src = "pub fn t(&self) -> f64 { self.v as f64 }\n";
        let cooling = scan_source(Path::new("crates/cooling/src/x.rs"), src);
        assert_eq!(cooling.len(), 2, "{cooling:?}"); // raw-f64 + lossy-cast
        let nn = scan_source(Path::new("crates/nn/src/x.rs"), src);
        assert_eq!(nn.len(), 1, "{nn:?}"); // lossy-cast only
    }

    #[test]
    fn find_root_from_nested_dir() {
        let here = std::env::current_dir().expect("cwd exists");
        let root = find_workspace_root(&here).expect("inside the workspace");
        assert!(root.join("crates").is_dir());
    }
}
