//! The workspace symbol index.
//!
//! Aggregates every [`ParsedFile`] into one queryable structure: which
//! crate each file belongs to, which crates depend on which (from the
//! `crates/*/Cargo.toml` manifests), which files are test-only
//! (including `#[cfg(test)] mod tests;` declared in a *separate* file),
//! and name → function lookup tables the call-graph resolver uses.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::path::{Path, PathBuf};

use crate::parser::{FnItem, ParsedFile};

/// Global function id: an index into the flattened fn table.
pub type FnId = usize;

/// Per-crate metadata recovered from its manifest.
#[derive(Debug, Clone, Default)]
pub struct CrateMeta {
    /// Identifiers that name this crate in source paths
    /// (`mira_units`, a `[lib] name`, ...).
    pub idents: Vec<String>,
    /// Directories (under `crates/`) of direct `mira-*` dependencies.
    pub deps: Vec<String>,
}

/// The index over all parsed files.
#[derive(Debug)]
pub struct SymbolIndex {
    /// Parsed files, in the deterministic walk order.
    pub files: Vec<ParsedFile>,
    /// Crate directory (under `crates/`) per file.
    pub file_crate: Vec<String>,
    /// Crate metadata by directory name.
    pub crates: BTreeMap<String, CrateMeta>,
    /// Files that are test-only (their `fn`s never ship).
    pub test_files: BTreeSet<usize>,
    /// Path ident (`mira_units`) → crate directory (`units`).
    ident_to_dir: BTreeMap<String, String>,
    /// First global fn id of each file.
    fn_base: Vec<usize>,
    /// Total fn count across all files.
    pub total_fns: usize,
    /// (crate dir, fn name) → candidate ids, free fns and methods
    /// alike.
    by_name: BTreeMap<(String, String), Vec<FnId>>,
    /// (crate dir, type, fn name) → candidate ids for `Type::name`.
    by_type: BTreeMap<(String, String, String), Vec<FnId>>,
    /// Method name → candidate ids (fns with a `self` type), workspace
    /// wide; the resolver filters by crate.
    methods: BTreeMap<String, Vec<FnId>>,
}

/// Which crate directory a workspace-relative path belongs to.
#[must_use]
pub fn crate_dir_of(path: &Path) -> Option<String> {
    let mut components = path.components().map(|c| c.as_os_str().to_string_lossy());
    while let Some(c) = components.next() {
        if c == "crates" {
            return components.next().map(std::borrow::Cow::into_owned);
        }
    }
    None
}

/// Candidate relative paths for `mod <name>;` declared in `decl_file`.
fn child_candidates(decl_file: &Path, name: &str) -> [PathBuf; 2] {
    let parent = decl_file
        .parent()
        .map_or_else(PathBuf::new, Path::to_path_buf);
    let stem = decl_file
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned());
    let base = match stem.as_deref() {
        Some("lib" | "main" | "mod") | None => parent,
        Some(other) => parent.join(other),
    };
    [
        base.join(format!("{name}.rs")),
        base.join(name).join("mod.rs"),
    ]
}

/// Minimal line-oriented manifest read: `[package] name`, `[lib] name`,
/// and the `mira-*` entries of `[dependencies]` (dev-dependencies are
/// deliberately ignored — they do not create library-code call edges).
#[derive(Debug, Default)]
struct Manifest {
    package: Option<String>,
    lib_name: Option<String>,
    deps: Vec<String>,
}

fn parse_manifest(text: &str) -> Manifest {
    let mut manifest = Manifest::default();
    let mut section = String::new();
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix('[') {
            section = rest.trim_end_matches(']').to_owned();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim().trim_end_matches(".workspace").trim();
        match section.as_str() {
            "package" if key == "name" => {
                manifest.package = Some(value.trim().trim_matches('"').to_owned());
            }
            "lib" if key == "name" => {
                manifest.lib_name = Some(value.trim().trim_matches('"').to_owned());
            }
            "dependencies" => {
                let dep = key.split('.').next().unwrap_or(key).trim();
                if dep.starts_with("mira-") {
                    manifest.deps.push(dep.to_owned());
                }
            }
            _ => {}
        }
    }
    manifest
}

impl SymbolIndex {
    /// Build the index. `manifests` are `(relative path, contents)` of
    /// the `crates/*/Cargo.toml` files; an empty slice degrades to
    /// "every crate may call every other" resolution.
    #[must_use]
    pub fn build(files: Vec<ParsedFile>, manifests: &[(PathBuf, String)]) -> SymbolIndex {
        let file_crate: Vec<String> = files
            .iter()
            .map(|f| crate_dir_of(&f.rel).unwrap_or_default())
            .collect();
        let all_dirs: BTreeSet<String> = file_crate.iter().cloned().collect();

        // Crate metadata from manifests, keyed by directory.
        let mut crates: BTreeMap<String, CrateMeta> = BTreeMap::new();
        let mut package_to_dir: BTreeMap<String, String> = BTreeMap::new();
        let mut raw_deps: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for (rel, text) in manifests {
            let Some(dir) = crate_dir_of(rel) else {
                continue;
            };
            let manifest = parse_manifest(text);
            let meta = crates.entry(dir.clone()).or_default();
            if let Some(package) = &manifest.package {
                package_to_dir.insert(package.clone(), dir.clone());
                meta.idents.push(package.replace('-', "_"));
            }
            if let Some(lib) = &manifest.lib_name {
                meta.idents.push(lib.clone());
            }
            meta.idents.push(format!("mira_{}", dir.replace('-', "_")));
            meta.idents.sort();
            meta.idents.dedup();
            raw_deps.insert(dir, manifest.deps);
        }
        // Resolve dep package names to directories.
        for (dir, deps) in raw_deps {
            let resolved: Vec<String> = deps
                .iter()
                .filter_map(|package| package_to_dir.get(package).cloned())
                .collect();
            if let Some(meta) = crates.get_mut(&dir) {
                meta.deps = resolved;
            }
        }
        // Crates seen in source but with no manifest provided: assume
        // they may call anything (safe over-approximation for fixtures).
        for dir in &all_dirs {
            if !crates.contains_key(dir) {
                crates.insert(
                    dir.clone(),
                    CrateMeta {
                        idents: vec![format!("mira_{}", dir.replace('-', "_"))],
                        deps: all_dirs.iter().filter(|d| *d != dir).cloned().collect(),
                    },
                );
            }
        }

        let mut ident_to_dir = BTreeMap::new();
        for (dir, meta) in &crates {
            for ident in &meta.idents {
                ident_to_dir.insert(ident.clone(), dir.clone());
            }
        }

        // Flatten fns and build lookup tables.
        let mut fn_base = Vec::with_capacity(files.len());
        let mut total = 0usize;
        let mut by_name: BTreeMap<(String, String), Vec<FnId>> = BTreeMap::new();
        let mut by_type: BTreeMap<(String, String, String), Vec<FnId>> = BTreeMap::new();
        let mut methods: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        for (file_idx, file) in files.iter().enumerate() {
            fn_base.push(total);
            let dir = &file_crate[file_idx];
            for (offset, item) in file.fns.iter().enumerate() {
                let id = total + offset;
                by_name
                    .entry((dir.clone(), item.name.clone()))
                    .or_default()
                    .push(id);
                if let Some(ty) = &item.self_type {
                    by_type
                        .entry((dir.clone(), ty.clone(), item.name.clone()))
                        .or_default()
                        .push(id);
                    methods.entry(item.name.clone()).or_default().push(id);
                }
            }
            total += file.fns.len();
        }

        let test_files = propagate_test_files(&files);

        SymbolIndex {
            files,
            file_crate,
            crates,
            test_files,
            ident_to_dir,
            fn_base,
            total_fns: total,
            by_name,
            by_type,
            methods,
        }
    }

    /// The file index a global fn id lives in.
    #[must_use]
    pub fn file_of(&self, id: FnId) -> usize {
        match self.fn_base.binary_search(&id) {
            Ok(exact) => {
                // `id` is the first fn of `exact` — unless that file is
                // empty, in which case later bases repeat the value and
                // binary search may land on any of them; take the last
                // base equal to id.
                let mut idx = exact;
                while idx + 1 < self.fn_base.len() && self.fn_base[idx + 1] == id {
                    idx += 1;
                }
                idx
            }
            Err(insert) => insert.saturating_sub(1),
        }
    }

    /// The function item behind a global id.
    #[must_use]
    pub fn fn_at(&self, id: FnId) -> &FnItem {
        let file = self.file_of(id);
        &self.files[file].fns[id - self.fn_base[file]]
    }

    /// Global id of a (file index, fn offset) pair.
    #[must_use]
    pub fn id_of(&self, file: usize, offset: usize) -> FnId {
        self.fn_base[file] + offset
    }

    /// Crate directory of a fn.
    #[must_use]
    pub fn crate_of(&self, id: FnId) -> &str {
        &self.file_crate[self.file_of(id)]
    }

    /// Test-only: `#[test]`, `#[cfg(test)]`, or living in a test file.
    #[must_use]
    pub fn is_test_fn(&self, id: FnId) -> bool {
        self.fn_at(id).is_test || self.test_files.contains(&self.file_of(id))
    }

    /// Crate directory named by a path ident like `mira_units`, if any.
    #[must_use]
    pub fn dir_for_ident(&self, ident: &str) -> Option<&str> {
        self.ident_to_dir.get(ident).map(String::as_str)
    }

    /// Direct dependency directories of a crate.
    #[must_use]
    pub fn deps_of(&self, dir: &str) -> &[String] {
        self.crates.get(dir).map_or(&[], |meta| &meta.deps)
    }

    /// Candidate fns by (crate dir, name).
    #[must_use]
    pub fn fns_named(&self, dir: &str, name: &str) -> &[FnId] {
        self.by_name
            .get(&(dir.to_owned(), name.to_owned()))
            .map_or(&[], Vec::as_slice)
    }

    /// Candidate fns by (crate dir, self type, name).
    #[must_use]
    pub fn fns_on_type(&self, dir: &str, ty: &str, name: &str) -> &[FnId] {
        self.by_type
            .get(&(dir.to_owned(), ty.to_owned(), name.to_owned()))
            .map_or(&[], Vec::as_slice)
    }

    /// All methods (fns with a self type) named `name`, workspace-wide.
    #[must_use]
    pub fn methods_named(&self, name: &str) -> &[FnId] {
        self.methods.get(name).map_or(&[], Vec::as_slice)
    }

    /// Iterate all global fn ids.
    pub fn fn_ids(&self) -> impl Iterator<Item = FnId> {
        0..self.total_fns
    }
}

/// Mark files reachable from a `#[cfg(test)] mod x;` declaration (or
/// declared by an already-test file) as test-only, to fixpoint.
fn propagate_test_files(files: &[ParsedFile]) -> BTreeSet<usize> {
    let path_to_idx: BTreeMap<&Path, usize> = files
        .iter()
        .enumerate()
        .map(|(idx, f)| (f.rel.as_path(), idx))
        .collect();

    let mut test_files = BTreeSet::new();
    let mut queue: VecDeque<usize> = VecDeque::new();

    let resolve = |decl_file: &Path, name: &str| -> Option<usize> {
        child_candidates(decl_file, name)
            .iter()
            .find_map(|cand| path_to_idx.get(cand.as_path()).copied())
    };

    for file in files {
        for name in &file.test_mods {
            if let Some(child) = resolve(&file.rel, name) {
                queue.push_back(child);
            }
        }
    }
    while let Some(idx) = queue.pop_front() {
        if !test_files.insert(idx) {
            continue;
        }
        // Everything a test file declares is itself test-only.
        let file = &files[idx];
        for name in &file.child_mods {
            if let Some(child) = resolve(&file.rel, name) {
                queue.push_back(child);
            }
        }
    }
    test_files
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::analyze;
    use crate::parser::parse_file;

    fn parsed(rel: &str, src: &str) -> ParsedFile {
        parse_file(Path::new(rel), src, &analyze(src), &["Celsius"])
    }

    #[test]
    fn manifest_parsing_extracts_names_and_deps() {
        let manifest = parse_manifest(
            "[package]\nname = \"mira-ops\"\n\n[lib]\nname = \"mira_ops_cli\"\n\n\
             [dependencies]\nmira-core.workspace = true\nserde.workspace = true\n\n\
             [dev-dependencies]\nmira-nn.workspace = true\n",
        );
        assert_eq!(manifest.package.as_deref(), Some("mira-ops"));
        assert_eq!(manifest.lib_name.as_deref(), Some("mira_ops_cli"));
        assert_eq!(manifest.deps, vec!["mira-core"]);
    }

    #[test]
    fn external_test_mod_marks_child_file_and_descendants() {
        let files = vec![
            parsed(
                "crates/a/src/lib.rs",
                "#[cfg(test)]\nmod tests;\nmod real;\n",
            ),
            parsed("crates/a/src/tests.rs", "mod helpers;\nfn t() {}\n"),
            parsed("crates/a/src/tests/helpers.rs", "fn aid() {}\n"),
            parsed("crates/a/src/real.rs", "pub fn work() {}\n"),
        ];
        let index = SymbolIndex::build(files, &[]);
        assert!(index.test_files.contains(&1), "tests.rs is test-only");
        assert!(index.test_files.contains(&2), "helpers propagates");
        assert!(!index.test_files.contains(&3), "real.rs is live");
        let t = index
            .fn_ids()
            .find(|&id| index.fn_at(id).name == "t")
            .expect("t indexed");
        assert!(index.is_test_fn(t));
        let work = index
            .fn_ids()
            .find(|&id| index.fn_at(id).name == "work")
            .expect("work indexed");
        assert!(!index.is_test_fn(work));
    }

    #[test]
    fn ident_and_dep_resolution_via_manifests() {
        let files = vec![
            parsed("crates/alpha/src/lib.rs", "pub fn a() {}\n"),
            parsed("crates/beta/src/lib.rs", "pub fn b() {}\n"),
        ];
        let manifests = vec![
            (
                PathBuf::from("crates/alpha/Cargo.toml"),
                "[package]\nname = \"mira-alpha\"\n[dependencies]\nmira-beta.workspace = true\n"
                    .to_owned(),
            ),
            (
                PathBuf::from("crates/beta/Cargo.toml"),
                "[package]\nname = \"mira-beta\"\n".to_owned(),
            ),
        ];
        let index = SymbolIndex::build(files, &manifests);
        assert_eq!(index.dir_for_ident("mira_alpha"), Some("alpha"));
        assert_eq!(index.dir_for_ident("mira_beta"), Some("beta"));
        assert_eq!(index.deps_of("alpha"), ["beta".to_owned()]);
        assert!(index.deps_of("beta").is_empty());
    }

    #[test]
    fn lookup_tables_cover_free_fns_and_methods() {
        let files = vec![parsed(
            "crates/a/src/lib.rs",
            "pub fn free() {}\nstruct S;\nimpl S {\n    pub fn method(&self) {}\n}\n",
        )];
        let index = SymbolIndex::build(files, &[]);
        assert_eq!(index.fns_named("a", "free").len(), 1);
        assert_eq!(index.fns_on_type("a", "S", "method").len(), 1);
        assert_eq!(index.methods_named("method").len(), 1);
        assert!(index.fns_named("a", "missing").is_empty());
    }
}
