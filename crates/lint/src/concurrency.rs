//! The five concurrency-discipline rules (v4).
//!
//! All five run over the per-body concurrency facts collected by
//! [`crate::dataflow::concurrency_facts`] (guard spans, atomic-ordering
//! sites, spawn sites, blocking sites), lifted interprocedurally
//! through the [`CallGraph`]:
//!
//! * `lock-order` — a workspace lock-acquisition graph (edge `A -> B`
//!   when `B` is acquired, directly or through any call chain, while a
//!   guard on `A` is live) is checked for cycles; a cycle is a deadlock
//!   inversion and both witness sites are reported with full chains.
//! * `guard-across-blocking` — a guard live across a blocking call
//!   (socket/console I/O, `accept`, `recv`, `join`, `sleep`), directly
//!   or through a call chain, serializes every other acquirer behind
//!   that I/O.
//! * `guard-across-panic` — a guard live across a panic-reachable call
//!   poisons the lock if the panic fires; reuses the panic-reachability
//!   facts.
//! * `atomic-ordering` — per-site sanction list: `SeqCst` anywhere
//!   (blanket strongest-ordering hides the real protocol), `Relaxed`
//!   stores (publish nothing), and `Relaxed` loads gating an
//!   `if`/`while` (control flow on unsynchronized state) are findings;
//!   `Relaxed` counters and explicit acquire/release pairs pass.
//! * `unjoined-thread` — `thread::spawn` handles must be `.join()`ed
//!   (chained or via the bound handle) or explicitly allowed;
//!   `thread::scope` joins by construction and never fires.
//!
//! Lock identity is the receiver ident of the acquiring call, qualified
//! by crate (`serve::stats` for `self.stats.lock()` in mira-serve) so
//! same-named fields in different crates stay distinct. Guards acquired
//! through guard-returning workspace helpers (return type names a
//! `MutexGuard`/`RwLockReadGuard`/`RwLockWriteGuard`) are resolved to
//! the helper's own primary acquisition. The call graph is the same
//! name-based over-approximation the other semantic rules use — see
//! DESIGN.md §12 for the approximations and false-positive policy.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::callgraph::{resolve_call, CallGraph};
use crate::dataflow::{AcqKind, BlockingSite, GuardSpan, GUARD_TYPES};
use crate::index::{FnId, SymbolIndex};
use crate::rules::{live_panic, sem_allowed, Finding, Rule};

/// One lock-order edge's witness: where the inner acquisition happens.
#[derive(Debug, Clone)]
struct EdgeWitness {
    /// Fn holding the outer guard.
    holder: FnId,
    /// Line of the inner acquisition (or of the call reaching it).
    line: usize,
    /// Display chain from the holder to the inner acquisition.
    chain: Vec<String>,
}

/// Run all five concurrency rules over the workspace.
pub(crate) fn check(index: &SymbolIndex, graph: &CallGraph, findings: &mut Vec<Finding>) {
    let guard_fns = guard_returning_fns(index);
    let spans = effective_spans(index, &guard_fns);
    let locks = transitive_locks(index, graph, &spans);

    check_lock_order(index, &spans, &locks, findings);
    check_guard_across(index, graph, &spans, findings);
    check_atomic_ordering(index, findings);
    check_unjoined_thread(index, findings);
}

/// Crate-qualified lock identity for a receiver ident.
fn qualify(dir: &str, lock: &str) -> String {
    format!("{dir}::{lock}")
}

/// Map from guard-returning workspace fns (return type names a guard
/// type) to the qualified lock identity of their primary acquisition.
fn guard_returning_fns(index: &SymbolIndex) -> BTreeMap<FnId, (String, AcqKind)> {
    let mut out = BTreeMap::new();
    for id in index.fn_ids() {
        if index.is_test_fn(id) {
            continue;
        }
        let item = index.fn_at(id);
        if !item.ret.iter().any(|t| GUARD_TYPES.contains(&t.as_str())) {
            continue;
        }
        // Primary acquisition: the first direct (non-via-call) span.
        if let Some(g) = item.guards.iter().find(|g| !g.via_call) {
            out.insert(id, (qualify(index.crate_of(id), &g.lock), g.kind));
        }
    }
    out
}

/// Per-fn guard spans with crate-qualified lock identities and
/// `via_call` spans resolved through the guard-returning fn map.
/// Unresolvable `via_call` candidates (the helper is not a
/// guard-returning workspace fn) are dropped. Test fns have no spans.
fn effective_spans(
    index: &SymbolIndex,
    guard_fns: &BTreeMap<FnId, (String, AcqKind)>,
) -> Vec<Vec<GuardSpan>> {
    let mut out: Vec<Vec<GuardSpan>> = Vec::new();
    for id in index.fn_ids() {
        let mut spans = Vec::new();
        if !index.is_test_fn(id) {
            let dir = index.crate_of(id);
            let item = index.fn_at(id);
            for g in &item.guards {
                if g.via_call {
                    // `g.lock` holds the helper method name; resolve it
                    // like any call site and take the id-lowest
                    // guard-returning candidate for determinism.
                    let mut candidates = Vec::new();
                    resolve_call(
                        index,
                        dir,
                        index.file_of(id),
                        item.self_type.as_deref(),
                        &crate::parser::CallKind::Method(g.lock.clone()),
                        &mut candidates,
                    );
                    candidates.sort_unstable();
                    if let Some((lock, kind)) =
                        candidates.iter().find_map(|c| guard_fns.get(c)).cloned()
                    {
                        spans.push(GuardSpan {
                            lock,
                            kind,
                            ..g.clone()
                        });
                    }
                } else {
                    spans.push(GuardSpan {
                        lock: qualify(dir, &g.lock),
                        ..g.clone()
                    });
                }
            }
        }
        out.push(spans);
    }
    out
}

/// Fixpoint: the set of qualified locks each fn may acquire, directly
/// or through any call chain.
fn transitive_locks(
    index: &SymbolIndex,
    graph: &CallGraph,
    spans: &[Vec<GuardSpan>],
) -> Vec<BTreeSet<String>> {
    let mut locks: Vec<BTreeSet<String>> = spans
        .iter()
        .map(|s| s.iter().map(|g| g.lock.clone()).collect())
        .collect();
    loop {
        let mut changed = false;
        for id in index.fn_ids() {
            let mut add: Vec<String> = Vec::new();
            for &callee in graph.callees(id) {
                for l in &locks[callee] {
                    if !locks[id].contains(l) {
                        add.push(l.clone());
                    }
                }
            }
            for l in add {
                changed |= locks[id].insert(l);
            }
        }
        if !changed {
            return locks;
        }
    }
}

/// Build the lock-acquisition graph and report every cycle once.
fn check_lock_order(
    index: &SymbolIndex,
    spans: &[Vec<GuardSpan>],
    locks: &[BTreeSet<String>],
    findings: &mut Vec<Finding>,
) {
    // Edge (outer, inner) -> witnesses in fn-id order, so an allow on
    // one witness site does not hide the others.
    let mut edges: BTreeMap<(String, String), Vec<EdgeWitness>> = BTreeMap::new();
    for id in index.fn_ids() {
        let item = index.fn_at(id);
        for outer in &spans[id] {
            // Direct: another acquisition while this guard is live.
            for inner in &spans[id] {
                if outer.covers(inner.line) {
                    edges
                        .entry((outer.lock.clone(), inner.lock.clone()))
                        .or_default()
                        .push(EdgeWitness {
                            holder: id,
                            line: inner.line,
                            chain: vec![item.display_name()],
                        });
                }
            }
            // Interprocedural: a call inside the span whose callee may
            // acquire further locks.
            for call in &item.calls {
                if !outer.covers(call.line) {
                    continue;
                }
                for callee in resolved(index, id, &call.kind) {
                    for inner in &locks[callee] {
                        edges
                            .entry((outer.lock.clone(), inner.clone()))
                            .or_default()
                            .push(EdgeWitness {
                                holder: id,
                                line: call.line,
                                chain: vec![
                                    item.display_name(),
                                    index.fn_at(callee).display_name(),
                                ],
                            });
                    }
                }
            }
        }
    }

    let adjacency: BTreeMap<&str, BTreeSet<&str>> =
        edges
            .keys()
            .fold(BTreeMap::new(), |mut adj, (outer, inner)| {
                adj.entry(outer.as_str())
                    .or_default()
                    .insert(inner.as_str());
                adj
            });

    for ((outer, inner), witnesses) in &edges {
        let cycle = if outer == inner {
            // Re-entrant acquisition: self-deadlock on a Mutex.
            Some(vec![outer.clone(), inner.clone()])
        } else if *outer < *inner {
            // Report each two-lock cycle once, from its lexically-first
            // edge; the reverse path proves the inversion.
            path_between(&adjacency, inner, outer).map(|mut p| {
                let mut cycle = vec![outer.clone()];
                cycle.append(&mut p);
                cycle
            })
        } else {
            None
        };
        let Some(cycle) = cycle else { continue };
        let Some(witness) = witnesses.iter().find(|w| {
            let file = &index.files[index.file_of(w.holder)];
            let item = index.fn_at(w.holder);
            !sem_allowed(file, w.line, Rule::LockOrder)
                && !sem_allowed(file, item.line, Rule::LockOrder)
        }) else {
            continue;
        };
        let file = &index.files[index.file_of(witness.holder)];
        let item = index.fn_at(witness.holder);
        findings.push(Finding {
            file: file.rel.clone(),
            line: witness.line,
            column: 0,
            rule: Rule::LockOrder,
            matched: format!(
                "`{}` acquires `{inner}` while holding `{outer}` ({}), closing the cycle {}",
                item.display_name(),
                witness.chain.join(" -> "),
                cycle.join(" -> "),
            ),
            chain: cycle,
        });
    }
}

/// BFS path from `from` to `to` over the lock graph, inclusive of both
/// endpoints; `None` when unreachable.
fn path_between(
    adjacency: &BTreeMap<&str, BTreeSet<&str>>,
    from: &str,
    to: &str,
) -> Option<Vec<String>> {
    let mut parent: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue = VecDeque::from([from]);
    while let Some(at) = queue.pop_front() {
        for &next in adjacency.get(at).into_iter().flatten() {
            if next == from || parent.contains_key(next) {
                continue;
            }
            parent.insert(next, at);
            if next == to {
                let mut path = vec![next.to_owned()];
                let mut walk = at;
                loop {
                    path.push(walk.to_owned());
                    match parent.get(walk) {
                        Some(&up) => walk = up,
                        None => break,
                    }
                }
                path.reverse();
                return Some(path);
            }
            queue.push_back(next);
        }
    }
    None
}

/// The first undischarged blocking site of a non-test fn, if any.
fn live_blocking(index: &SymbolIndex, id: FnId) -> Option<&BlockingSite> {
    if index.is_test_fn(id) {
        return None;
    }
    let file = &index.files[index.file_of(id)];
    index
        .fn_at(id)
        .blocking
        .iter()
        .find(|b| !sem_allowed(file, b.line, Rule::GuardAcrossBlocking))
}

/// `guard-across-blocking` and `guard-across-panic`: one finding per
/// guard (its first hit), anchored at the acquisition line.
fn check_guard_across(
    index: &SymbolIndex,
    graph: &CallGraph,
    spans: &[Vec<GuardSpan>],
    findings: &mut Vec<Finding>,
) {
    for id in index.fn_ids() {
        if spans[id].is_empty() {
            continue;
        }
        let file = &index.files[index.file_of(id)];
        let item = index.fn_at(id);
        for guard in &spans[id] {
            let held = if guard.name.is_empty() {
                format!("guard on `{}`", guard.lock)
            } else {
                format!("guard `{}` on `{}`", guard.name, guard.lock)
            };

            // Blocking: a direct site inside the span beats a chain.
            if !sem_allowed(file, guard.line, Rule::GuardAcrossBlocking)
                && !sem_allowed(file, item.line, Rule::GuardAcrossBlocking)
            {
                if let Some(b) = item.blocking.iter().find(|b| {
                    guard.covers(b.line) && !sem_allowed(file, b.line, Rule::GuardAcrossBlocking)
                }) {
                    findings.push(Finding {
                        file: file.rel.clone(),
                        line: guard.line,
                        column: 0,
                        rule: Rule::GuardAcrossBlocking,
                        matched: format!(
                            "{held} in `{}` is held across `{}` at line {}",
                            item.display_name(),
                            b.what,
                            b.line
                        ),
                        chain: vec![item.display_name()],
                    });
                } else if let Some((names, site)) = first_reached(index, graph, id, guard, &|t| {
                    live_blocking(index, t).map(|b| (b.line, b.what.clone()))
                }) {
                    findings.push(Finding {
                        file: file.rel.clone(),
                        line: guard.line,
                        column: 0,
                        rule: Rule::GuardAcrossBlocking,
                        matched: format!(
                            "{held} in `{}` is held across a call that can block: {} (`{}` at {})",
                            item.display_name(),
                            names.join(" -> "),
                            site.1,
                            site.0,
                        ),
                        chain: names,
                    });
                }
            }

            // Panic: a poisoned lock wedges every later acquirer.
            if sem_allowed(file, guard.line, Rule::GuardAcrossPanic)
                || sem_allowed(file, item.line, Rule::GuardAcrossPanic)
            {
                continue;
            }
            if let Some(p) = item.panics.iter().find(|p| {
                guard.covers(p.line) && !sem_allowed(file, p.line, Rule::GuardAcrossPanic)
            }) {
                findings.push(Finding {
                    file: file.rel.clone(),
                    line: guard.line,
                    column: 0,
                    rule: Rule::GuardAcrossPanic,
                    matched: format!(
                        "{held} in `{}` is held across `{}` at line {}; a panic there poisons the lock",
                        item.display_name(),
                        p.what,
                        p.line
                    ),
                    chain: vec![item.display_name()],
                });
            } else if let Some((names, site)) = first_reached(index, graph, id, guard, &|t| {
                live_panic(index, t).map(|p| (p.line, p.what.to_owned()))
            }) {
                findings.push(Finding {
                    file: file.rel.clone(),
                    line: guard.line,
                    column: 0,
                    rule: Rule::GuardAcrossPanic,
                    matched: format!(
                        "{held} in `{}` is held across a panic-reachable call: {} (`{}` at {}); \
                         a panic there poisons the lock",
                        item.display_name(),
                        names.join(" -> "),
                        site.1,
                        site.0,
                    ),
                    chain: names,
                });
            }
        }
    }
}

/// The first call inside `guard`'s span (call-site order) whose chain
/// reaches a target fn, as (display chain from holder, (line, what)).
fn first_reached(
    index: &SymbolIndex,
    graph: &CallGraph,
    holder: FnId,
    guard: &GuardSpan,
    target: &dyn Fn(FnId) -> Option<(usize, String)>,
) -> Option<(Vec<String>, (usize, String))> {
    let item = index.fn_at(holder);
    for call in &item.calls {
        if !guard.covers(call.line) {
            continue;
        }
        for callee in resolved(index, holder, &call.kind) {
            let Some(chain) = graph.first_chain_to(callee, &|t| target(t).is_some()) else {
                continue;
            };
            let Some(&sink) = chain.last() else { continue };
            let Some(site) = target(sink) else { continue };
            let sink_file = &index.files[index.file_of(sink)];
            let mut names = vec![item.display_name()];
            names.extend(chain.iter().map(|&t| index.fn_at(t).display_name()));
            return Some((
                names,
                (site.0, format!("{} at {}", site.1, sink_file.rel.display())),
            ));
        }
    }
    None
}

/// Resolve one call site into id-sorted candidate callees, test fns
/// and self-calls excluded (mirrors [`CallGraph::build`]).
fn resolved(index: &SymbolIndex, caller: FnId, kind: &crate::parser::CallKind) -> Vec<FnId> {
    let mut out = Vec::new();
    resolve_call(
        index,
        index.crate_of(caller),
        index.file_of(caller),
        index.fn_at(caller).self_type.as_deref(),
        kind,
        &mut out,
    );
    out.retain(|&c| c != caller && !index.is_test_fn(c));
    out.sort_unstable();
    out.dedup();
    out
}

/// Per-site atomic-ordering sanction list.
fn check_atomic_ordering(index: &SymbolIndex, findings: &mut Vec<Finding>) {
    for id in index.fn_ids() {
        if index.is_test_fn(id) {
            continue;
        }
        let file = &index.files[index.file_of(id)];
        let item = index.fn_at(id);
        for site in &item.orderings {
            let verdict = match site.ordering.as_str() {
                "SeqCst" => Some(
                    "`SeqCst` is the blanket strongest ordering; name the actual protocol \
                     (`Acquire` load / `Release` store) instead",
                ),
                "Relaxed" if site.op == "store" => {
                    Some("a `Relaxed` store publishes nothing to other threads")
                }
                "Relaxed" if site.op == "load" && site.gates_branch => {
                    Some("a `Relaxed` load gating control flow reads unsynchronized state")
                }
                _ => None,
            };
            let Some(why) = verdict else { continue };
            if sem_allowed(file, site.line, Rule::AtomicOrdering)
                || sem_allowed(file, item.line, Rule::AtomicOrdering)
            {
                continue;
            }
            let op = if site.op.is_empty() {
                "atomic op".to_owned()
            } else {
                format!("`{}`", site.op)
            };
            findings.push(Finding {
                file: file.rel.clone(),
                line: site.line,
                column: 0,
                rule: Rule::AtomicOrdering,
                matched: format!(
                    "{op} with `Ordering::{}` in `{}`: {why}",
                    site.ordering,
                    item.display_name()
                ),
                chain: Vec::new(),
            });
        }
    }
}

/// Every `thread::spawn` handle must be joined or allowed.
fn check_unjoined_thread(index: &SymbolIndex, findings: &mut Vec<Finding>) {
    for id in index.fn_ids() {
        if index.is_test_fn(id) {
            continue;
        }
        let file = &index.files[index.file_of(id)];
        let item = index.fn_at(id);
        for spawn in &item.spawns {
            if spawn.joined
                || sem_allowed(file, spawn.line, Rule::UnjoinedThread)
                || sem_allowed(file, item.line, Rule::UnjoinedThread)
            {
                continue;
            }
            findings.push(Finding {
                file: file.rel.clone(),
                line: spawn.line,
                column: 0,
                rule: Rule::UnjoinedThread,
                matched: format!(
                    "`thread::spawn` in `{}` whose JoinHandle is never joined; \
                     panics in the detached thread are silently lost",
                    item.display_name()
                ),
                chain: Vec::new(),
            });
        }
    }
}
