//! The five domain-invariant rules.
//!
//! Each rule scans the line-oriented view produced by [`crate::lexer`]
//! and emits [`Finding`]s with a stable machine-readable identity
//! (file, line, rule name) plus a human suggestion. Rules only fire in
//! library code: `#[cfg(test)]` regions are exempt, and the workspace
//! walker never feeds `tests/`, `benches/`, or `examples/` files in.

use std::fmt;
use std::path::{Path, PathBuf};

use crate::lexer::{token_bounded, token_matches, SourceLine};

/// The crates whose public APIs must speak `mira-units` newtypes.
pub const PHYSICS_CRATES: [&str; 4] = ["cooling", "weather", "facility", "workload"];

/// The crates whose simulation code must stay deterministic.
pub const DETERMINISTIC_CRATES: [&str; 5] = ["core", "cooling", "weather", "workload", "ras"];

/// Identity of one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rule {
    /// Public physics-crate `fn` signatures must use unit newtypes, not
    /// bare `f64`.
    RawF64InPublicApi,
    /// No `unwrap()` / `expect(` / `panic!` in library code.
    NoUnwrapInLib,
    /// No lossy `as` casts (`as f64`, `as usize`, `as u32`, `as i64`).
    LossyCast,
    /// No `partial_cmp().unwrap()` or bare float `==`.
    NanUnsafeCompare,
    /// No wall clocks or unseeded RNGs in simulation crates.
    Nondeterminism,
}

impl Rule {
    /// All rules, in reporting order.
    pub const ALL: [Rule; 5] = [
        Rule::RawF64InPublicApi,
        Rule::NoUnwrapInLib,
        Rule::LossyCast,
        Rule::NanUnsafeCompare,
        Rule::Nondeterminism,
    ];

    /// The kebab-case name used in diagnostics, escape hatches, and the
    /// allowlist.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Rule::RawF64InPublicApi => "raw-f64-in-public-api",
            Rule::NoUnwrapInLib => "no-unwrap-in-lib",
            Rule::LossyCast => "lossy-cast",
            Rule::NanUnsafeCompare => "nan-unsafe-compare",
            Rule::Nondeterminism => "nondeterminism",
        }
    }

    /// Parse a rule name as written in an escape hatch or allowlist.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }

    /// The remediation hint attached to every diagnostic.
    #[must_use]
    pub fn suggestion(self) -> &'static str {
        match self {
            Rule::RawF64InPublicApi => {
                "use a mira-units newtype (Celsius, Fahrenheit, Gpm, Kilowatts, ...) in the public signature"
            }
            Rule::NoUnwrapInLib => {
                "propagate with `?`, return Result/Option, or handle the failure case explicitly"
            }
            Rule::LossyCast => {
                "use From/try_from (or an explicit rounding helper) instead of a lossy `as` cast"
            }
            Rule::NanUnsafeCompare => {
                "use f64::total_cmp for ordering, or compare against an epsilon instead of `==`"
            }
            Rule::Nondeterminism => {
                "thread a seeded StdRng / SimTime through instead; wall clocks and entropy break replay"
            }
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Path as reported (workspace-relative when walked).
    pub file: PathBuf,
    /// 1-based line.
    pub line: usize,
    /// Which rule fired.
    pub rule: Rule,
    /// What the rule matched, for the message.
    pub matched: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}; suggestion: {}",
            self.file.display(),
            self.line,
            self.rule.name(),
            self.matched,
            self.rule.suggestion()
        )
    }
}

/// Which crate (directory under `crates/`) a path belongs to, if any.
fn crate_of(path: &Path) -> Option<String> {
    let mut components = path.components().map(|c| c.as_os_str().to_string_lossy());
    while let Some(c) = components.next() {
        if c == "crates" {
            return components.next().map(std::borrow::Cow::into_owned);
        }
    }
    None
}

/// Escape hatches present on a line: `// mira-lint: allow(rule, rule)`.
fn allows_on(raw: &str) -> Vec<String> {
    let Some(comment) = raw.find("//").map(|i| &raw[i..]) else {
        return Vec::new();
    };
    let Some(tag) = comment.find("mira-lint:") else {
        return Vec::new();
    };
    let rest = &comment[tag + "mira-lint:".len()..];
    let Some(open) = rest.find("allow(") else {
        return Vec::new();
    };
    let body = &rest[open + "allow(".len()..];
    let Some(close) = body.find(')') else {
        return Vec::new();
    };
    body[..close]
        .split(',')
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .collect()
}

/// True when `finding` on `lines[idx]` is waved through by an escape
/// hatch on the same line or the line directly above.
fn escaped(lines: &[SourceLine], idx: usize, rule: Rule) -> bool {
    let hit = |raw: &str| allows_on(raw).iter().any(|name| name == rule.name());
    if hit(&lines[idx].raw) {
        return true;
    }
    idx > 0 && hit(&lines[idx - 1].raw)
}

/// Run every applicable rule over one analyzed file.
#[must_use]
pub fn check_file(path: &Path, lines: &[SourceLine]) -> Vec<Finding> {
    let crate_name = crate_of(path);
    let physics = crate_name
        .as_deref()
        .is_some_and(|c| PHYSICS_CRATES.contains(&c));
    let deterministic = crate_name
        .as_deref()
        .is_some_and(|c| DETERMINISTIC_CRATES.contains(&c));

    let mut findings = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test_context {
            continue;
        }
        check_unwrap(path, lines, idx, &mut findings);
        check_lossy_cast(path, lines, idx, &mut findings);
        check_nan_compare(path, lines, idx, &mut findings);
        if deterministic {
            check_nondeterminism(path, lines, idx, &mut findings);
        }
        let _ = line;
    }
    if physics {
        check_public_f64(path, lines, &mut findings);
    }
    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

fn push(
    findings: &mut Vec<Finding>,
    lines: &[SourceLine],
    idx: usize,
    path: &Path,
    rule: Rule,
    matched: impl Into<String>,
) {
    if escaped(lines, idx, rule) {
        return;
    }
    findings.push(Finding {
        file: path.to_path_buf(),
        line: lines[idx].number,
        rule,
        matched: matched.into(),
    });
}

fn check_unwrap(path: &Path, lines: &[SourceLine], idx: usize, findings: &mut Vec<Finding>) {
    let code = &lines[idx].code;
    for pos in token_matches(code, "unwrap") {
        if code[pos..].starts_with("unwrap()") {
            push(
                findings,
                lines,
                idx,
                path,
                Rule::NoUnwrapInLib,
                "`unwrap()` in library code",
            );
        }
    }
    for pos in token_matches(code, "expect") {
        if code[pos + "expect".len()..].trim_start().starts_with('(') {
            push(
                findings,
                lines,
                idx,
                path,
                Rule::NoUnwrapInLib,
                "`expect(..)` in library code",
            );
        }
    }
    for pos in token_matches(code, "panic") {
        if code[pos + "panic".len()..].starts_with("!(") {
            push(
                findings,
                lines,
                idx,
                path,
                Rule::NoUnwrapInLib,
                "`panic!` in library code",
            );
        }
    }
}

/// The cast targets the paper's telemetry/timestamp values flow
/// through; `as` to any of them silently truncates, wraps, or loses
/// precision.
const LOSSY_CAST_TARGETS: [&str; 4] = ["f64", "usize", "u32", "i64"];

fn check_lossy_cast(path: &Path, lines: &[SourceLine], idx: usize, findings: &mut Vec<Finding>) {
    let code = &lines[idx].code;
    for pos in token_matches(code, "as") {
        let rest = code[pos + 2..].trim_start();
        for target in LOSSY_CAST_TARGETS {
            if rest.starts_with(target)
                && !rest[target.len()..]
                    .chars()
                    .next()
                    .is_some_and(|c| c == '_' || c.is_ascii_alphanumeric())
            {
                push(
                    findings,
                    lines,
                    idx,
                    path,
                    Rule::LossyCast,
                    format!("lossy `as {target}` cast"),
                );
            }
        }
    }
}

fn check_nan_compare(path: &Path, lines: &[SourceLine], idx: usize, findings: &mut Vec<Finding>) {
    let code = &lines[idx].code;

    // `partial_cmp(..).unwrap()` / `.expect(..)`, allowing the call to
    // continue on the next line.
    if let Some(pos) = code.find("partial_cmp") {
        if token_bounded(code, pos, "partial_cmp".len()) {
            let tail = &code[pos..];
            let continuation = lines.get(idx + 1).map_or("", |l| l.code.as_str());
            let joined = format!("{} {}", tail, continuation.trim_start());
            if joined.contains(".unwrap()") || joined.contains(".expect(") {
                push(
                    findings,
                    lines,
                    idx,
                    path,
                    Rule::NanUnsafeCompare,
                    "`partial_cmp(..).unwrap()` panics on NaN",
                );
            }
        }
    }

    // Bare float `==` / `!=`: a float literal adjacent to the operator.
    for op in ["==", "!="] {
        let mut start = 0;
        while let Some(found) = code[start..].find(op) {
            let pos = start + found;
            start = pos + op.len();
            // Skip `<=`, `>=`, `!=` handled separately, and pattern
            // arms `=>`.
            if op == "==" && pos > 0 && matches!(code.as_bytes()[pos - 1], b'<' | b'>' | b'!') {
                continue;
            }
            let left = code[..pos].trim_end();
            let right = code[pos + op.len()..].trim_start();
            if ends_with_float_literal(left) || starts_with_float_literal(right) {
                push(
                    findings,
                    lines,
                    idx,
                    path,
                    Rule::NanUnsafeCompare,
                    format!("bare float `{op}` comparison"),
                );
            }
        }
    }
}

fn ends_with_float_literal(s: &str) -> bool {
    let token_start = s
        .rfind(|c: char| !(c.is_ascii_alphanumeric() || c == '.' || c == '_'))
        .map_or(0, |i| i + 1);
    is_float_literal(&s[token_start..])
}

fn starts_with_float_literal(s: &str) -> bool {
    let token_end = s
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '.' || c == '_'))
        .unwrap_or(s.len());
    is_float_literal(&s[..token_end])
}

fn is_float_literal(token: &str) -> bool {
    let mut digits = false;
    let mut dot = false;
    for c in token.chars() {
        match c {
            '0'..='9' | '_' => digits = true,
            '.' => dot = true,
            // Type suffixes (`1.0f64`) and exponents (`1e9`).
            'f' | 'e' if digits => {}
            _ => return false,
        }
    }
    digits && (dot || token.contains('e'))
}

/// Calls that smuggle wall-clock time or OS entropy into simulation
/// code, breaking the `tests/determinism.rs` replay contract.
const NONDETERMINISM_PATTERNS: [(&str, &str); 6] = [
    ("SystemTime::now", "wall-clock read in simulation code"),
    ("Instant::now", "wall-clock read in simulation code"),
    ("thread_rng", "unseeded thread-local RNG in simulation code"),
    ("from_entropy", "OS-entropy RNG seeding in simulation code"),
    ("from_os_rng", "OS-entropy RNG seeding in simulation code"),
    ("rand::rng", "unseeded global RNG in simulation code"),
];

fn check_nondeterminism(
    path: &Path,
    lines: &[SourceLine],
    idx: usize,
    findings: &mut Vec<Finding>,
) {
    let code = &lines[idx].code;
    for (pattern, message) in NONDETERMINISM_PATTERNS {
        let mut search = 0;
        while let Some(found) = code[search..].find(pattern) {
            let pos = search + found;
            search = pos + pattern.len();
            // Token-bound the trailing edge so `rand::rng` does not
            // also fire on `rand::rngs::StdRng` paths.
            let bounded = !code[pos + pattern.len()..]
                .chars()
                .next()
                .is_some_and(|c| c == '_' || c == ':' || c.is_ascii_alphanumeric());
            if bounded {
                push(findings, lines, idx, path, Rule::Nondeterminism, message);
                break;
            }
        }
    }
}

/// `pub fn` signatures in physics crates must not expose bare `f64`.
fn check_public_f64(path: &Path, lines: &[SourceLine], findings: &mut Vec<Finding>) {
    let mut idx = 0;
    while idx < lines.len() {
        let line = &lines[idx];
        if line.in_test_context {
            idx += 1;
            continue;
        }
        let code = &line.code;
        let Some(pub_pos) = token_matches(code, "pub").next() else {
            idx += 1;
            continue;
        };
        let after_pub = code[pub_pos + 3..].trim_start();
        // `pub(crate)` / `pub(super)` / `pub(in ..)` are not public API.
        if after_pub.starts_with('(') {
            idx += 1;
            continue;
        }
        // Allow qualifiers between `pub` and `fn`.
        let mut sig_head = after_pub;
        for qualifier in ["const ", "async ", "unsafe ", "extern \"C\" "] {
            sig_head = sig_head.trim_start_matches(qualifier);
        }
        if !(sig_head.starts_with("fn ") || sig_head == "fn") {
            idx += 1;
            continue;
        }

        // Collect the signature: from `fn` to the body `{` or a `;`.
        let mut signature = String::new();
        let mut end = idx;
        'collect: for (offset, sig_line) in lines[idx..].iter().enumerate().take(16) {
            let text = if offset == 0 {
                &sig_line.code[pub_pos..]
            } else {
                sig_line.code.as_str()
            };
            for (ci, c) in text.char_indices() {
                if c == '{' || c == ';' {
                    signature.push_str(&text[..ci]);
                    end = idx + offset;
                    break 'collect;
                }
            }
            signature.push_str(text);
            signature.push(' ');
            end = idx + offset;
        }

        if token_matches(&signature, "f64").next().is_some() {
            push(
                findings,
                lines,
                idx,
                path,
                Rule::RawF64InPublicApi,
                "bare `f64` in public physics-crate signature",
            );
        }
        idx = end + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::analyze;
    use std::path::Path;

    fn findings_in(fake_path: &str, src: &str) -> Vec<Finding> {
        check_file(Path::new(fake_path), &analyze(src))
    }

    const LIB: &str = "crates/cooling/src/fixture.rs";

    #[test]
    fn unwrap_fires_in_lib_code() {
        let found = findings_in(LIB, "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n");
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, Rule::NoUnwrapInLib);
        assert_eq!(found[0].line, 1);
    }

    #[test]
    fn unwrap_or_variants_do_not_fire() {
        let found = findings_in(
            LIB,
            "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0).min(x.unwrap_or_default()) }\n",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn unwrap_in_cfg_test_is_exempt() {
        let src = "\
#[cfg(test)]
mod tests {
    fn f(x: Option<u8>) -> u8 { x.unwrap() }
}
";
        assert!(findings_in(LIB, src).is_empty());
    }

    #[test]
    fn unwrap_in_comment_or_string_is_exempt() {
        let src = "// call .unwrap() later\nconst HINT: &str = \"x.unwrap()\";\n";
        assert!(findings_in(LIB, src).is_empty());
    }

    #[test]
    fn escape_hatch_same_line_and_line_above() {
        let same =
            "fn f(x: Option<u8>) -> u8 { x.unwrap() } // mira-lint: allow(no-unwrap-in-lib)\n";
        assert!(findings_in(LIB, same).is_empty());
        let above =
            "// mira-lint: allow(no-unwrap-in-lib)\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert!(findings_in(LIB, above).is_empty());
        let wrong_rule =
            "// mira-lint: allow(lossy-cast)\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert_eq!(findings_in(LIB, wrong_rule).len(), 1);
    }

    #[test]
    fn expect_and_panic_fire() {
        let found = findings_in(LIB, "fn f() { g().expect(\"boom\"); panic!(\"no\"); }\n");
        assert_eq!(found.len(), 2);
        assert!(found.iter().all(|f| f.rule == Rule::NoUnwrapInLib));
    }

    #[test]
    fn lossy_casts_fire_per_target() {
        let found = findings_in(
            LIB,
            "fn f(n: u64) { let _ = (n as f64, n as usize, n as u32, n as i64); }\n",
        );
        assert_eq!(found.len(), 4);
        assert!(found.iter().all(|f| f.rule == Rule::LossyCast));
    }

    #[test]
    fn benign_casts_do_not_fire() {
        let found = findings_in(LIB, "fn f(n: u8) { let _ = n as u64; let _ = n as i32; }\n");
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn partial_cmp_unwrap_fires_including_multiline() {
        let one = "fn f(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n";
        let found = findings_in(LIB, one);
        // Fires both as a NaN hazard and as a lib-code unwrap.
        assert_eq!(found.len(), 2, "{found:?}");
        assert!(found.iter().any(|f| f.rule == Rule::NanUnsafeCompare));
        assert!(found.iter().any(|f| f.rule == Rule::NoUnwrapInLib));
        let two =
            "fn f(a: f64, b: f64) { let _ = a.partial_cmp(&b)\n        .expect(\"finite\"); }\n";
        let found = findings_in(LIB, two);
        assert_eq!(found.len(), 2, "{found:?}"); // nan-unsafe + no-unwrap on line 2
        assert!(found.iter().any(|f| f.rule == Rule::NanUnsafeCompare));
    }

    #[test]
    fn float_equality_fires() {
        let found = findings_in(LIB, "fn f(x: f64) -> bool { x == 0.0 }\n");
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, Rule::NanUnsafeCompare);
        let found = findings_in(LIB, "fn f(x: f64) -> bool { 1.5e3 != x }\n");
        assert_eq!(found.len(), 1);
    }

    #[test]
    fn integer_equality_does_not_fire() {
        assert!(findings_in(LIB, "fn f(x: u64) -> bool { x == 10 }\n").is_empty());
        assert!(findings_in(LIB, "fn f(x: bool) -> bool { x != true }\n").is_empty());
    }

    #[test]
    fn nondeterminism_fires_only_in_simulation_crates() {
        let src = "fn f() { let t = std::time::Instant::now(); let _ = t; }\n";
        assert_eq!(findings_in("crates/core/src/x.rs", src).len(), 1);
        assert_eq!(findings_in("crates/ras/src/x.rs", src).len(), 1);
        assert!(findings_in("crates/cli/src/x.rs", src).is_empty());
        assert!(findings_in("crates/nn/src/x.rs", src).is_empty());
    }

    #[test]
    fn seeded_rng_paths_do_not_fire() {
        let src = "use rand::rngs::StdRng;\nfn f() { let _ = StdRng::seed_from_u64(7); }\n";
        assert!(findings_in("crates/weather/src/x.rs", src).is_empty());
    }

    #[test]
    fn unseeded_rng_fires() {
        let src = "fn f() { let mut r = rand::rng(); }\n";
        assert_eq!(findings_in("crates/workload/src/x.rs", src).len(), 1);
        let src = "fn f() { let mut r = thread_rng(); }\n";
        assert_eq!(findings_in("crates/cooling/src/x.rs", src).len(), 1);
    }

    #[test]
    fn public_f64_fires_in_physics_crates_only() {
        let src = "pub fn temperature(&self) -> f64 { self.t }\n";
        let found = findings_in("crates/cooling/src/x.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, Rule::RawF64InPublicApi);
        assert!(findings_in("crates/timeseries/src/x.rs", src).is_empty());
    }

    #[test]
    fn crate_private_and_newtype_signatures_pass() {
        let private = "pub(crate) fn helper(x: f64) -> f64 { x }\n";
        assert!(findings_in("crates/weather/src/x.rs", private).is_empty());
        let typed = "pub fn temperature(&self) -> Celsius { self.t }\n";
        assert!(findings_in("crates/cooling/src/x.rs", typed).is_empty());
    }

    #[test]
    fn multiline_public_signature_is_scanned() {
        let src = "\
pub fn blend(
    a: Celsius,
    weight: f64,
) -> Celsius {
    a
}
";
        let found = findings_in("crates/facility/src/x.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 1);
    }

    #[test]
    fn findings_render_file_line_rule() {
        let found = findings_in(LIB, "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n");
        let rendered = found[0].to_string();
        assert!(rendered.starts_with("crates/cooling/src/fixture.rs:1: [no-unwrap-in-lib]"));
        assert!(rendered.contains("suggestion:"));
    }
}
