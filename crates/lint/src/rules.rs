//! The seventeen domain-invariant rules.
//!
//! Five *line* rules scan the line-oriented view produced by
//! [`crate::lexer`]; twelve *semantic* rules run over the workspace
//! [`SymbolIndex`] and [`CallGraph`] (three of them additionally over
//! the per-body facts from [`crate::dataflow`], and the five
//! concurrency rules in [`crate::concurrency`] over the guard/atomic/
//! spawn facts) and can see across files and crates. Every rule emits [`Finding`]s with a stable
//! machine-readable identity (file, line, column, rule name) plus a
//! human suggestion. Rules only fire in library code: `#[cfg(test)]`
//! regions and test-only files are exempt, and the workspace walker
//! never feeds `tests/`, `benches/`, or `examples/` files in.

use std::fmt;
use std::path::{Path, PathBuf};

use crate::callgraph::{resolve_call, CallGraph};
use crate::dataflow::{AllocSite, PuritySite};
use crate::index::{FnId, SymbolIndex};
use crate::lexer::{token_bounded, token_matches, SourceLine};
use crate::parser::{DetHazard, PanicSite, ParsedFile, Vis};

/// The crates whose public APIs must speak `mira-units` newtypes.
pub const PHYSICS_CRATES: [&str; 4] = ["cooling", "weather", "facility", "workload"];

/// The crates whose simulation code must stay deterministic.
pub const DETERMINISTIC_CRATES: [&str; 6] =
    ["core", "cooling", "weather", "workload", "ras", "store"];

/// The crates whose *public* fns must not reach a panic site.
pub const PANIC_AUDITED_CRATES: [&str; 4] = ["core", "cooling", "timeseries", "store"];

/// The `mira-units` newtypes whose raw `f64` payload the `unit-flow`
/// rule tracks.
pub const UNIT_TYPES: [&str; 10] = [
    "Celsius",
    "Fahrenheit",
    "Gpm",
    "KilowattHours",
    "Kilowatts",
    "Megawatts",
    "Percent",
    "Ratio",
    "RelHumidity",
    "Watts",
];

/// Crates whose public APIs are dimension-agnostic by design: raw `f64`
/// flowing into them is not a unit hazard. `units` owns the newtypes;
/// `timeseries` is generic statistics over dimensionless samples; `obs`
/// records metric values whose unit lives in the metric key.
pub const DIMENSIONLESS_SINK_CRATES: [&str; 3] = ["units", "timeseries", "obs"];

/// The one file allowed to spawn threads: the deterministic sweep
/// executor (`std::thread::scope` + shard merge).
pub const SANCTIONED_EXECUTOR_FILE: &str = "crates/core/src/sweep.rs";

/// Files whose fns are the roots of the determinism-taint analysis.
pub const DETERMINISM_ROOT_FILES: [&str; 2] =
    ["crates/core/src/sweep.rs", "crates/core/src/summary.rs"];

/// The sweep engine's hot roots for `alloc-in-hot-path`, named as
/// (crate, self type, fn). Configured, not inferred: "hot" is a
/// property of the measured per-step profile (BENCH_sweep.json pins
/// 0 allocs/step), not something a static walk can discover — see
/// DESIGN.md §10.
pub const HOT_ROOT_FNS: [(&str, &str, &str); 4] = [
    ("core", "SweepPlan", "run"),
    ("core", "TelemetryEngine", "sweep_step_into"),
    ("core", "TelemetryEngine", "sweep_steps_into"),
    ("core", "SweepSummary", "record_block"),
];

/// Crates whose `merge` fns are aggregation hot roots: they run once
/// per shard pair inside the sweep reduce, at any visibility.
pub const HOT_MERGE_CRATES: [&str; 3] = ["core", "obs", "timeseries"];

/// (crate, type) pairs whose methods feed memo layers: every key
/// constructor and every lookup beneath a purity-keyed cache must be a
/// pure function of its inputs, or the cache silently serves stale or
/// order-dependent values.
pub const CACHE_PURE_TYPES: [(&str, &str); 10] = [
    ("cooling", "MonitorBank"),
    ("core", "HydroKey"),
    ("core", "SweepBlock"),
    ("timeseries", "CivilDayCache"),
    ("timeseries", "CivilParts"),
    ("timeseries", "WelfordRows"),
    ("weather", "FractalBank"),
    ("weather", "FractalCursor"),
    ("weather", "NoiseCursor"),
    ("weather", "ValueNoise"),
];

/// Identity of one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rule {
    /// Public physics-crate `fn` signatures must use unit newtypes, not
    /// bare `f64`.
    RawF64InPublicApi,
    /// No `unwrap()` / `expect(` / `panic!` in library code.
    NoUnwrapInLib,
    /// No lossy `as` casts (`as f64`, `as usize`, `as u32`, `as i64`).
    LossyCast,
    /// No `partial_cmp().unwrap()` or bare float `==`.
    NanUnsafeCompare,
    /// No wall clocks or unseeded RNGs in simulation crates.
    Nondeterminism,
    /// No panic site reachable from an audited crate's public fn.
    PanicReachability,
    /// No raw `f64` escaped from a unit newtype crossing crates.
    UnitFlow,
    /// No nondeterminism source reachable from sweep/summary code.
    DeterminismTaint,
    /// No in-workspace calls to `#[deprecated]` shims.
    DeprecatedCall,
    /// No allocation site reachable from the sweep hot roots.
    AllocInHotPath,
    /// Fns feeding memo layers must be pure.
    CachePurity,
    /// No interior-mutable/static state reachable from spawned work.
    SharedStateEscape,
    /// No cycle in the workspace lock-acquisition graph.
    LockOrder,
    /// No guard held across a blocking call.
    GuardAcrossBlocking,
    /// No guard held across a panic-reachable call.
    GuardAcrossPanic,
    /// No blanket `SeqCst`, `Relaxed` store, or branch-gating
    /// `Relaxed` load.
    AtomicOrdering,
    /// Every `thread::spawn` handle must be joined.
    UnjoinedThread,
}

impl Rule {
    /// All rules, in reporting order.
    pub const ALL: [Rule; 17] = [
        Rule::RawF64InPublicApi,
        Rule::NoUnwrapInLib,
        Rule::LossyCast,
        Rule::NanUnsafeCompare,
        Rule::Nondeterminism,
        Rule::PanicReachability,
        Rule::UnitFlow,
        Rule::DeterminismTaint,
        Rule::DeprecatedCall,
        Rule::AllocInHotPath,
        Rule::CachePurity,
        Rule::SharedStateEscape,
        Rule::LockOrder,
        Rule::GuardAcrossBlocking,
        Rule::GuardAcrossPanic,
        Rule::AtomicOrdering,
        Rule::UnjoinedThread,
    ];

    /// The kebab-case name used in diagnostics, escape hatches, and the
    /// allowlist.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Rule::RawF64InPublicApi => "raw-f64-in-public-api",
            Rule::NoUnwrapInLib => "no-unwrap-in-lib",
            Rule::LossyCast => "lossy-cast",
            Rule::NanUnsafeCompare => "nan-unsafe-compare",
            Rule::Nondeterminism => "nondeterminism",
            Rule::PanicReachability => "panic-reachability",
            Rule::UnitFlow => "unit-flow",
            Rule::DeterminismTaint => "determinism-taint",
            Rule::DeprecatedCall => "deprecated-call",
            Rule::AllocInHotPath => "alloc-in-hot-path",
            Rule::CachePurity => "cache-purity",
            Rule::SharedStateEscape => "shared-state-escape",
            Rule::LockOrder => "lock-order",
            Rule::GuardAcrossBlocking => "guard-across-blocking",
            Rule::GuardAcrossPanic => "guard-across-panic",
            Rule::AtomicOrdering => "atomic-ordering",
            Rule::UnjoinedThread => "unjoined-thread",
        }
    }

    /// Parse a rule name as written in an escape hatch or allowlist.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }

    /// The remediation hint attached to every diagnostic.
    #[must_use]
    pub fn suggestion(self) -> &'static str {
        match self {
            Rule::RawF64InPublicApi => {
                "use a mira-units newtype (Celsius, Fahrenheit, Gpm, Kilowatts, ...) in the public signature"
            }
            Rule::NoUnwrapInLib => {
                "propagate with `?`, return Result/Option, or handle the failure case explicitly"
            }
            Rule::LossyCast => {
                "use From/try_from (or an explicit rounding helper) instead of a lossy `as` cast"
            }
            Rule::NanUnsafeCompare => {
                "use f64::total_cmp for ordering, or compare against an epsilon instead of `==`"
            }
            Rule::Nondeterminism => {
                "thread a seeded StdRng / SimTime through instead; wall clocks and entropy break replay"
            }
            Rule::PanicReachability => {
                "break the chain: return Result/Option at the panic site, or discharge it with an inline allow stating why it cannot fire"
            }
            Rule::UnitFlow => {
                "pass the newtype itself across the crate boundary, or route the raw value through mira_units::convert"
            }
            Rule::DeterminismTaint => {
                "keep wall clocks, hash-order iteration, and thread spawning out of the sweep path; only the sweep executor may use threads"
            }
            Rule::DeprecatedCall => {
                "migrate to the replacement named in the #[deprecated] note; the shim is scheduled for removal"
            }
            Rule::AllocInHotPath => {
                "reuse a SweepScratch buffer (clear + push through the caller-owned field) or hoist the allocation out of the per-step path"
            }
            Rule::CachePurity => {
                "make the memo-feeding fn a pure function of its arguments; move clocks, RNG, I/O, and mutable statics out to the caller"
            }
            Rule::SharedStateEscape => {
                "pass per-shard state into the closure by value and merge results after join; shared Cell/RefCell/static state breaks the merge order"
            }
            Rule::LockOrder => {
                "pick one acquisition order for the locks in the cycle and take them in that order everywhere, or narrow one guard's scope so the spans never overlap"
            }
            Rule::GuardAcrossBlocking => {
                "drop or scope the guard before the blocking call: copy what you need out, release, then block"
            }
            Rule::GuardAcrossPanic => {
                "shrink the guarded region so no panic-capable call sits under the guard, or make the callee infallible there"
            }
            Rule::AtomicOrdering => {
                "name the protocol: `Acquire` for the consuming load, `Release` for the publishing store; keep `Relaxed` for standalone counters only"
            }
            Rule::UnjoinedThread => {
                "keep the JoinHandle and `.join()` it (or use `thread::scope`, which joins by construction)"
            }
        }
    }

    /// The long-form documentation shown by `mira-lint --explain`.
    #[must_use]
    pub fn explain(self) -> &'static str {
        match self {
            Rule::RawF64InPublicApi => {
                "raw-f64-in-public-api (line rule)\n\n\
                 Public `fn` signatures in the physics crates (cooling, weather,\n\
                 facility, workload) must not expose bare `f64`. The paper's analyses\n\
                 mix Fahrenheit/Celsius, kW/MW, and gpm; a bare float at a crate\n\
                 boundary is exactly how a unit mix-up slips in. Use the mira-units\n\
                 newtypes (Celsius, Watts, Gpm, ...) instead."
            }
            Rule::NoUnwrapInLib => {
                "no-unwrap-in-lib (line rule)\n\n\
                 `unwrap()`, `expect(..)`, and `panic!` are forbidden in library\n\
                 code. A six-year simulated campaign must not abort at hour five\n\
                 because a corner case chose to panic; propagate errors with `?` or\n\
                 handle them. `#[cfg(test)]` code is exempt."
            }
            Rule::LossyCast => {
                "lossy-cast (line rule)\n\n\
                 Bare `as` casts to f64/usize/u32/i64 silently truncate, wrap, or\n\
                 round. Telemetry counters and epoch timestamps flow through these\n\
                 types; use the documented helpers in `mira_units::convert`, which\n\
                 state and debug-assert their exact domain."
            }
            Rule::NanUnsafeCompare => {
                "nan-unsafe-compare (line rule)\n\n\
                 `partial_cmp(..).unwrap()` panics on NaN, and bare float `==`\n\
                 silently mis-handles it. Sensor streams contain NaN gaps; use\n\
                 `f64::total_cmp` for ordering and epsilon comparison for equality."
            }
            Rule::Nondeterminism => {
                "nondeterminism (line rule)\n\n\
                 Simulation crates (core, cooling, weather, workload, ras) must not\n\
                 read wall clocks or unseeded RNGs. Every figure in the paper\n\
                 reproduction must replay bit-for-bit from a seed; `Instant::now`,\n\
                 `thread_rng`, and friends break that contract."
            }
            Rule::PanicReachability => {
                "panic-reachability (semantic rule)\n\n\
                 Any call path from a *public* fn of mira-core, mira-cooling, or\n\
                 mira-timeseries to a panic site (`unwrap()`, `expect(..)`,\n\
                 `panic!`, slice/array indexing) in non-test code is a finding; the\n\
                 full call chain is shown. Unlike no-unwrap-in-lib, this rule\n\
                 follows calls across files and crates, so a panic buried three\n\
                 crates deep still taints the public entry point.\n\n\
                 Indexing with `container[id.index()]` is sanctioned: the `index()`\n\
                 contract bounds the value by construction. A panic site can be\n\
                 discharged with `// mira-lint: allow(panic-reachability)` on (or\n\
                 above) the site when it is provably unreachable; the same comment\n\
                 on (or above) a `fn` line discharges every site in that body —\n\
                 use it for functions whose indexing is bounded throughout.\n\n\
                 The call graph is an over-approximation (name-based resolution;\n\
                 see DESIGN.md), so a reported chain may include edges the compiler\n\
                 would not take — verify before suppressing."
            }
            Rule::UnitFlow => {
                "unit-flow (semantic rule)\n\n\
                 A raw f64 extracted from a mira-units newtype (via `.0` inside\n\
                 mira-units, or `.value()` anywhere) must not flow into *another*\n\
                 crate's public fn as a bare argument: at that boundary the number\n\
                 has silently lost its unit. Pass the newtype across, or go through\n\
                 `mira_units::convert`. Escapes into `units` itself, into\n\
                 `timeseries` (dimension-agnostic statistics), and into `obs`\n\
                 (metrics keyed by name, unit in the key) are sanctioned.\n\n\
                 Tracking is per-function and token-level: direct arguments and\n\
                 single-assignment locals are seen; flows through fields, returns,\n\
                 or collections are not (see DESIGN.md)."
            }
            Rule::DeterminismTaint => {
                "determinism-taint (semantic rule)\n\n\
                 Fns defined in the sweep/summary modules of mira-core must not\n\
                 reach — through any call chain — HashMap/HashSet iteration,\n\
                 `Instant::now`, `SystemTime`, or thread spawning. These are the\n\
                 fns the determinism test suite pins bit-for-bit across\n\
                 MIRA_SWEEP_THREADS settings; hash-order iteration or a wall clock\n\
                 anywhere beneath them reorders merges between runs. The sweep\n\
                 executor itself (crates/core/src/sweep.rs) is the one sanctioned\n\
                 thread-spawning site."
            }
            Rule::DeprecatedCall => {
                "deprecated-call (semantic rule)\n\n\
                 In-workspace calls to our own `#[deprecated]` shims are\n\
                 findings. rustc only warns downstream crates, and warnings rot;\n\
                 this rule keeps the workspace itself at zero uses so shims can\n\
                 be deleted on schedule (see CHANGELOG.md — the 0.2.0 sweep-API\n\
                 shims have already been removed this way).\n\n\
                 Current burndown: `TelemetryEngine::sweep_step` allocates a\n\
                 fresh scratch per call. Loops should build a `SweepScratch`\n\
                 once via `sweep_scratch()` and drive `sweep_step_into`, or\n\
                 feed appended telemetry through `IncrementalSweep::ingest`\n\
                 (see `IncrementalSweep::builder()`)."
            }
            Rule::AllocInHotPath => {
                "alloc-in-hot-path (semantic rule)\n\n\
                 The sweep engine's measured contract is ~0 heap allocations per\n\
                 simulated step (BENCH_sweep.json); every buffer is owned by\n\
                 SweepScratch and reused via clear()+push. This rule walks the\n\
                 call graph from the configured hot roots (SweepPlan::run,\n\
                 TelemetryEngine::sweep_step_into, and the `merge` aggregation\n\
                 fns of core/obs/timeseries) and reports any reachable\n\
                 allocation site: heap-container constructors (Vec::new,\n\
                 String::with_capacity, Box::new, ...), `format!`/`vec!`,\n\
                 allocating methods (.to_string, .collect, .to_vec, ...),\n\
                 `.clone()` on a heap-typed local, and `.push(..)` onto a\n\
                 locally built buffer. Pushes onto parameters and fields are\n\
                 sanctioned — that is the scratch-reuse idiom itself.\n\n\
                 Hot roots are configured, not inferred: hotness is a property\n\
                 of the measured per-step profile, not of the source. Bounded\n\
                 per-sweep setup (shard vectors, scratch construction) is\n\
                 discharged with `// mira-lint: allow(alloc-in-hot-path)` on\n\
                 the `fn` line, which covers that body only — reachable callees\n\
                 are still walked."
            }
            Rule::CachePurity => {
                "cache-purity (semantic rule)\n\n\
                 The memo layers (HydroKey-keyed hydraulics, NoiseCursor /\n\
                 FractalBank weather lattices, CivilDayCache calendar lookups)\n\
                 assume key construction and every transitive callee are pure\n\
                 functions of their inputs. A wall-clock read, RNG call, I/O,\n\
                 `static` item, or interior-mutable cell (Cell/RefCell/\n\
                 thread_local!/Mutex) beneath them makes a cached value depend\n\
                 on *when* it was computed, so a hit and a miss diverge and the\n\
                 six-year sweep stops replaying bit-for-bit. This rule walks\n\
                 the call graph from every method of the configured memo types\n\
                 and reports the first impure site with its full call chain."
            }
            Rule::SharedStateEscape => {
                "shared-state-escape (semantic rule)\n\n\
                 The sweep executor's bit-identical parallel merge works\n\
                 because shards only communicate through their owned results,\n\
                 merged in a fixed order after join. Interior-mutable state\n\
                 (Cell/RefCell/OnceCell/thread_local!) or a `static` item\n\
                 reachable from a fn that spawns threads reintroduces\n\
                 cross-shard communication whose observed order depends on\n\
                 scheduling. This rule starts at every fn in mira-core that\n\
                 spawns or scopes threads and reports reachable shared-state\n\
                 sites. Mutex/RwLock and atomics are exempt: the executor's\n\
                 slot-per-shard Mutex discipline is the sanctioned pattern."
            }
            Rule::LockOrder => {
                "lock-order (semantic rule)\n\n\
                 A workspace-wide lock-acquisition graph is built: an edge\n\
                 `A -> B` means some fn acquires lock `B` — directly or through\n\
                 any call chain — while a guard on `A` is live. A cycle in that\n\
                 graph is a deadlock inversion: two threads taking the locks in\n\
                 opposite orders can each hold one and wait forever on the\n\
                 other. A self-edge (`A -> A`) is re-entrant acquisition, which\n\
                 deadlocks a Mutex outright. Each cycle is reported once, from\n\
                 its lexically-first edge, with the full lock chain and the\n\
                 witness call chain — like panic-reachability's output.\n\n\
                 Lock identity is the receiver ident of the `lock()`/`read()`/\n\
                 `write()` call, qualified by crate; guards obtained through a\n\
                 guard-returning workspace helper resolve to the helper's own\n\
                 acquisition. Name-based call resolution over-approximates, so\n\
                 verify a reported cycle before suppressing (DESIGN.md §12)."
            }
            Rule::GuardAcrossBlocking => {
                "guard-across-blocking (semantic rule)\n\n\
                 A Mutex/RwLock guard held across a blocking call — socket or\n\
                 console I/O, `accept`, channel `recv`, thread `join`, `sleep`\n\
                 — serializes every other acquirer behind that I/O: one slow\n\
                 peer stalls all metric readers. The rule follows calls through\n\
                 the graph, so a guard held across a helper that eventually\n\
                 calls `write_all` three crates down is still a finding; the\n\
                 full chain is shown. `stdin()/stdout()/stderr().lock()` are\n\
                 exempt (console handles, not data locks), as are guards\n\
                 dropped (`drop(guard)` or scope end) before the call."
            }
            Rule::GuardAcrossPanic => {
                "guard-across-panic (semantic rule)\n\n\
                 A guard live across a panic-capable site — an `unwrap()`, an\n\
                 unbounded index, or any call chain reaching one (the same\n\
                 facts panic-reachability uses) — poisons the lock if the\n\
                 panic fires: every later `lock()` returns `Err(PoisonError)`\n\
                 and a service wedges long after the original bug. Shrink the\n\
                 guarded region below the panic-capable call, or discharge the\n\
                 site with an allow stating why it cannot fire. Recovery\n\
                 helpers (`unwrap_or_else(PoisonError::into_inner)`) are the\n\
                 complementary defense at the acquisition side."
            }
            Rule::AtomicOrdering => {
                "atomic-ordering (semantic rule)\n\n\
                 Atomic orderings are checked per site against a sanction\n\
                 list. `SeqCst` anywhere is a finding: it is the blanket\n\
                 strongest ordering, and reaching for it instead of naming the\n\
                 actual acquire/release protocol hides what the atomic\n\
                 protects (and costs a full fence on weakly-ordered\n\
                 hardware). A `Relaxed` *store* is a finding — it publishes\n\
                 nothing, so any flag written with it cannot hand off data.\n\
                 A `Relaxed` *load* directly gating an `if`/`while` is a\n\
                 finding — control flow on unsynchronized state. Everything\n\
                 else passes: `Relaxed` on standalone counters (`fetch_add`\n\
                 telemetry) and explicit `Acquire`/`Release` pairs are the\n\
                 sanctioned patterns."
            }
            Rule::UnjoinedThread => {
                "unjoined-thread (semantic rule)\n\n\
                 Every `thread::spawn` must have its `JoinHandle` joined —\n\
                 chained on the call or later on the bound handle. A detached\n\
                 thread outlives the fn that spawned it: panics in it are\n\
                 silently swallowed, and process exit races its teardown.\n\
                 `thread::scope` spawns are exempt by construction (the scope\n\
                 joins on exit); a deliberately detached worker is discharged\n\
                 with `// mira-lint: allow(unjoined-thread)` and a comment\n\
                 saying who owns its lifetime."
            }
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Path as reported (workspace-relative when walked).
    pub file: PathBuf,
    /// 1-based line.
    pub line: usize,
    /// 1-based column of the match for line rules; 0 for semantic
    /// rules, which anchor on a whole `fn` item or a fact site.
    pub column: usize,
    /// Which rule fired.
    pub rule: Rule,
    /// What the rule matched, for the message.
    pub matched: String,
    /// For reachability rules: the call chain from the reported fn to
    /// the offending site, as display names. Empty for line rules.
    pub chain: Vec<String>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:", self.file.display(), self.line)?;
        if self.column > 0 {
            write!(f, "{}:", self.column)?;
        }
        write!(
            f,
            " [{}] {}; suggestion: {}",
            self.rule.name(),
            self.matched,
            self.rule.suggestion()
        )
    }
}

/// Which crate (directory under `crates/`) a path belongs to, if any.
fn crate_of(path: &Path) -> Option<String> {
    let mut components = path.components().map(|c| c.as_os_str().to_string_lossy());
    while let Some(c) = components.next() {
        if c == "crates" {
            return components.next().map(std::borrow::Cow::into_owned);
        }
    }
    None
}

/// Escape hatches present on a line: `// mira-lint: allow(rule, rule)`.
pub(crate) fn allows_on(raw: &str) -> Vec<String> {
    let Some(comment) = raw.find("//").map(|i| &raw[i..]) else {
        return Vec::new();
    };
    let Some(tag) = comment.find("mira-lint:") else {
        return Vec::new();
    };
    let rest = &comment[tag + "mira-lint:".len()..];
    let Some(open) = rest.find("allow(") else {
        return Vec::new();
    };
    let body = &rest[open + "allow(".len()..];
    let Some(close) = body.find(')') else {
        return Vec::new();
    };
    body[..close]
        .split(',')
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .collect()
}

/// True when `finding` on `lines[idx]` is waved through by an escape
/// hatch on the same line or the line directly above.
fn escaped(lines: &[SourceLine], idx: usize, rule: Rule) -> bool {
    let hit = |raw: &str| allows_on(raw).iter().any(|name| name == rule.name());
    if hit(&lines[idx].raw) {
        return true;
    }
    idx > 0 && hit(&lines[idx - 1].raw)
}

/// Run every applicable rule over one analyzed file.
#[must_use]
pub fn check_file(path: &Path, lines: &[SourceLine]) -> Vec<Finding> {
    let crate_name = crate_of(path);
    let physics = crate_name
        .as_deref()
        .is_some_and(|c| PHYSICS_CRATES.contains(&c));
    let deterministic = crate_name
        .as_deref()
        .is_some_and(|c| DETERMINISTIC_CRATES.contains(&c));

    let mut findings = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test_context {
            continue;
        }
        check_unwrap(path, lines, idx, &mut findings);
        check_lossy_cast(path, lines, idx, &mut findings);
        check_nan_compare(path, lines, idx, &mut findings);
        if deterministic {
            check_nondeterminism(path, lines, idx, &mut findings);
        }
        let _ = line;
    }
    if physics {
        check_public_f64(path, lines, &mut findings);
    }
    findings.sort_by_key(|f| (f.line, f.column, f.rule));
    findings
}

fn push(
    findings: &mut Vec<Finding>,
    lines: &[SourceLine],
    idx: usize,
    pos: usize,
    path: &Path,
    rule: Rule,
    matched: impl Into<String>,
) {
    if escaped(lines, idx, rule) {
        return;
    }
    findings.push(Finding {
        file: path.to_path_buf(),
        line: lines[idx].number,
        column: pos + 1,
        rule,
        matched: matched.into(),
        chain: Vec::new(),
    });
}

fn check_unwrap(path: &Path, lines: &[SourceLine], idx: usize, findings: &mut Vec<Finding>) {
    let code = &lines[idx].code;
    for pos in token_matches(code, "unwrap") {
        if code[pos..].starts_with("unwrap()") {
            push(
                findings,
                lines,
                idx,
                pos,
                path,
                Rule::NoUnwrapInLib,
                "`unwrap()` in library code",
            );
        }
    }
    for pos in token_matches(code, "expect") {
        if code[pos + "expect".len()..].trim_start().starts_with('(') {
            push(
                findings,
                lines,
                idx,
                pos,
                path,
                Rule::NoUnwrapInLib,
                "`expect(..)` in library code",
            );
        }
    }
    for pos in token_matches(code, "panic") {
        if code[pos + "panic".len()..].starts_with("!(") {
            push(
                findings,
                lines,
                idx,
                pos,
                path,
                Rule::NoUnwrapInLib,
                "`panic!` in library code",
            );
        }
    }
}

/// The cast targets the paper's telemetry/timestamp values flow
/// through; `as` to any of them silently truncates, wraps, or loses
/// precision.
const LOSSY_CAST_TARGETS: [&str; 4] = ["f64", "usize", "u32", "i64"];

fn check_lossy_cast(path: &Path, lines: &[SourceLine], idx: usize, findings: &mut Vec<Finding>) {
    let code = &lines[idx].code;
    for pos in token_matches(code, "as") {
        let rest = code[pos + 2..].trim_start();
        for target in LOSSY_CAST_TARGETS {
            if rest.starts_with(target)
                && !rest[target.len()..]
                    .chars()
                    .next()
                    .is_some_and(|c| c == '_' || c.is_ascii_alphanumeric())
            {
                push(
                    findings,
                    lines,
                    idx,
                    pos,
                    path,
                    Rule::LossyCast,
                    format!("lossy `as {target}` cast"),
                );
            }
        }
    }
}

fn check_nan_compare(path: &Path, lines: &[SourceLine], idx: usize, findings: &mut Vec<Finding>) {
    let code = &lines[idx].code;

    // `partial_cmp(..).unwrap()` / `.expect(..)`, allowing the call to
    // continue on the next line.
    if let Some(pos) = code.find("partial_cmp") {
        if token_bounded(code, pos, "partial_cmp".len()) {
            let tail = &code[pos..];
            let continuation = lines.get(idx + 1).map_or("", |l| l.code.as_str());
            let joined = format!("{} {}", tail, continuation.trim_start());
            if joined.contains(".unwrap()") || joined.contains(".expect(") {
                push(
                    findings,
                    lines,
                    idx,
                    pos,
                    path,
                    Rule::NanUnsafeCompare,
                    "`partial_cmp(..).unwrap()` panics on NaN",
                );
            }
        }
    }

    // Bare float `==` / `!=`: a float literal adjacent to the operator.
    for op in ["==", "!="] {
        let mut start = 0;
        while let Some(found) = code[start..].find(op) {
            let pos = start + found;
            start = pos + op.len();
            // Skip `<=`, `>=`, `!=` handled separately, and pattern
            // arms `=>`.
            if op == "==" && pos > 0 && matches!(code.as_bytes()[pos - 1], b'<' | b'>' | b'!') {
                continue;
            }
            let left = code[..pos].trim_end();
            let right = code[pos + op.len()..].trim_start();
            if ends_with_float_literal(left) || starts_with_float_literal(right) {
                push(
                    findings,
                    lines,
                    idx,
                    pos,
                    path,
                    Rule::NanUnsafeCompare,
                    format!("bare float `{op}` comparison"),
                );
            }
        }
    }
}

fn ends_with_float_literal(s: &str) -> bool {
    let token_start = s
        .rfind(|c: char| !(c.is_ascii_alphanumeric() || c == '.' || c == '_'))
        .map_or(0, |i| i + 1);
    is_float_literal(&s[token_start..])
}

fn starts_with_float_literal(s: &str) -> bool {
    let token_end = s
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '.' || c == '_'))
        .unwrap_or(s.len());
    is_float_literal(&s[..token_end])
}

fn is_float_literal(token: &str) -> bool {
    let mut digits = false;
    let mut dot = false;
    for c in token.chars() {
        match c {
            '0'..='9' | '_' => digits = true,
            '.' => dot = true,
            // Type suffixes (`1.0f64`) and exponents (`1e9`).
            'f' | 'e' if digits => {}
            _ => return false,
        }
    }
    digits && (dot || token.contains('e'))
}

/// Calls that smuggle wall-clock time or OS entropy into simulation
/// code, breaking the `tests/determinism.rs` replay contract.
const NONDETERMINISM_PATTERNS: [(&str, &str); 6] = [
    ("SystemTime::now", "wall-clock read in simulation code"),
    ("Instant::now", "wall-clock read in simulation code"),
    ("thread_rng", "unseeded thread-local RNG in simulation code"),
    ("from_entropy", "OS-entropy RNG seeding in simulation code"),
    ("from_os_rng", "OS-entropy RNG seeding in simulation code"),
    ("rand::rng", "unseeded global RNG in simulation code"),
];

fn check_nondeterminism(
    path: &Path,
    lines: &[SourceLine],
    idx: usize,
    findings: &mut Vec<Finding>,
) {
    let code = &lines[idx].code;
    for (pattern, message) in NONDETERMINISM_PATTERNS {
        let mut search = 0;
        while let Some(found) = code[search..].find(pattern) {
            let pos = search + found;
            search = pos + pattern.len();
            // Token-bound the trailing edge so `rand::rng` does not
            // also fire on `rand::rngs::StdRng` paths.
            let bounded = !code[pos + pattern.len()..]
                .chars()
                .next()
                .is_some_and(|c| c == '_' || c == ':' || c.is_ascii_alphanumeric());
            if bounded {
                push(
                    findings,
                    lines,
                    idx,
                    pos,
                    path,
                    Rule::Nondeterminism,
                    message,
                );
                break;
            }
        }
    }
}

/// `pub fn` signatures in physics crates must not expose bare `f64`.
fn check_public_f64(path: &Path, lines: &[SourceLine], findings: &mut Vec<Finding>) {
    let mut idx = 0;
    while idx < lines.len() {
        let line = &lines[idx];
        if line.in_test_context {
            idx += 1;
            continue;
        }
        let code = &line.code;
        let Some(pub_pos) = token_matches(code, "pub").next() else {
            idx += 1;
            continue;
        };
        let after_pub = code[pub_pos + 3..].trim_start();
        // `pub(crate)` / `pub(super)` / `pub(in ..)` are not public API.
        if after_pub.starts_with('(') {
            idx += 1;
            continue;
        }
        // Allow qualifiers between `pub` and `fn`.
        let mut sig_head = after_pub;
        for qualifier in ["const ", "async ", "unsafe ", "extern \"C\" "] {
            sig_head = sig_head.trim_start_matches(qualifier);
        }
        if !(sig_head.starts_with("fn ") || sig_head == "fn") {
            idx += 1;
            continue;
        }

        // Collect the signature: from `fn` to the body `{` or a `;`.
        let mut signature = String::new();
        let mut end = idx;
        'collect: for (offset, sig_line) in lines[idx..].iter().enumerate().take(16) {
            let text = if offset == 0 {
                &sig_line.code[pub_pos..]
            } else {
                sig_line.code.as_str()
            };
            for (ci, c) in text.char_indices() {
                if c == '{' || c == ';' {
                    signature.push_str(&text[..ci]);
                    end = idx + offset;
                    break 'collect;
                }
            }
            signature.push_str(text);
            signature.push(' ');
            end = idx + offset;
        }

        if token_matches(&signature, "f64").next().is_some() {
            push(
                findings,
                lines,
                idx,
                pub_pos,
                path,
                Rule::RawF64InPublicApi,
                "bare `f64` in public physics-crate signature",
            );
        }
        idx = end + 1;
    }
}

// ---------------------------------------------------------------------
// Semantic rules: run over the symbol index and call graph.

/// True when an inline `// mira-lint: allow(<rule>)` hatch covers
/// `line` (same line or the one above) in `file`.
pub(crate) fn sem_allowed(file: &ParsedFile, line: usize, rule: Rule) -> bool {
    let hit = |l: &usize| {
        file.allows
            .get(l)
            .is_some_and(|names| names.iter().any(|n| n == rule.name()))
    };
    hit(&line) || (line > 1 && hit(&(line - 1)))
}

/// Run the twelve semantic rules over the whole workspace.
#[must_use]
pub fn semantic_findings(index: &SymbolIndex, graph: &CallGraph) -> Vec<Finding> {
    let mut findings = Vec::new();
    check_panic_reachability(index, graph, &mut findings);
    check_unit_flow(index, &mut findings);
    check_determinism_taint(index, graph, &mut findings);
    check_deprecated_call(index, &mut findings);
    check_alloc_in_hot_path(index, graph, &mut findings);
    check_cache_purity(index, graph, &mut findings);
    check_shared_state_escape(index, graph, &mut findings);
    crate::concurrency::check(index, graph, &mut findings);
    findings
}

/// The first undischarged panic site of a non-test fn, if any.
pub(crate) fn live_panic(index: &SymbolIndex, id: FnId) -> Option<&PanicSite> {
    if index.is_test_fn(id) {
        return None;
    }
    let file = &index.files[index.file_of(id)];
    let item = index.fn_at(id);
    // An allow on the `fn` line discharges the whole body — the hatch
    // for functions whose indexing is bounded by construction
    // throughout (e.g. literal indices into fixed-size marker arrays).
    if sem_allowed(file, item.line, Rule::PanicReachability) {
        return None;
    }
    item.panics
        .iter()
        .find(|p| !sem_allowed(file, p.line, Rule::PanicReachability))
}

fn check_panic_reachability(index: &SymbolIndex, graph: &CallGraph, findings: &mut Vec<Finding>) {
    for root in index.fn_ids() {
        if !PANIC_AUDITED_CRATES.contains(&index.crate_of(root)) || index.is_test_fn(root) {
            continue;
        }
        let item = index.fn_at(root);
        if item.vis != Vis::Pub {
            continue;
        }
        let root_file = &index.files[index.file_of(root)];
        if sem_allowed(root_file, item.line, Rule::PanicReachability) {
            continue;
        }
        let Some(chain) = graph.first_chain_to(root, &|id| live_panic(index, id).is_some()) else {
            continue;
        };
        let Some(&sink) = chain.last() else { continue };
        let Some(site) = live_panic(index, sink) else {
            continue;
        };
        let names: Vec<String> = chain
            .iter()
            .map(|&id| index.fn_at(id).display_name())
            .collect();
        let sink_file = &index.files[index.file_of(sink)];
        findings.push(Finding {
            file: root_file.rel.clone(),
            line: item.line,
            column: 0,
            rule: Rule::PanicReachability,
            matched: format!(
                "public `{}` can reach a panic: {} (`{}` at {}:{})",
                item.display_name(),
                names.join(" -> "),
                site.what,
                sink_file.rel.display(),
                site.line
            ),
            chain: names,
        });
    }
}

/// The first undischarged determinism hazard of a non-test fn, if any.
/// Thread spawning inside the sanctioned executor file is exempt.
fn live_hazard(index: &SymbolIndex, id: FnId) -> Option<&DetHazard> {
    if index.is_test_fn(id) {
        return None;
    }
    let file = &index.files[index.file_of(id)];
    let in_executor = path_slashes(&file.rel) == SANCTIONED_EXECUTOR_FILE;
    index.fn_at(id).hazards.iter().find(|h| {
        if in_executor && h.what == "thread spawn/scope" {
            return false;
        }
        !sem_allowed(file, h.line, Rule::DeterminismTaint)
    })
}

fn path_slashes(path: &Path) -> String {
    path.to_string_lossy().replace('\\', "/")
}

fn check_determinism_taint(index: &SymbolIndex, graph: &CallGraph, findings: &mut Vec<Finding>) {
    for root in index.fn_ids() {
        let root_file = &index.files[index.file_of(root)];
        let rel = path_slashes(&root_file.rel);
        if !DETERMINISM_ROOT_FILES.contains(&rel.as_str()) || index.is_test_fn(root) {
            continue;
        }
        let item = index.fn_at(root);
        if sem_allowed(root_file, item.line, Rule::DeterminismTaint) {
            continue;
        }
        let Some(chain) = graph.first_chain_to(root, &|id| live_hazard(index, id).is_some()) else {
            continue;
        };
        let Some(&sink) = chain.last() else { continue };
        let Some(hazard) = live_hazard(index, sink) else {
            continue;
        };
        let names: Vec<String> = chain
            .iter()
            .map(|&id| index.fn_at(id).display_name())
            .collect();
        let sink_file = &index.files[index.file_of(sink)];
        findings.push(Finding {
            file: root_file.rel.clone(),
            line: item.line,
            column: 0,
            rule: Rule::DeterminismTaint,
            matched: format!(
                "sweep-path fn `{}` reaches a nondeterminism source: {} ({} at {}:{})",
                item.display_name(),
                names.join(" -> "),
                hazard.what,
                sink_file.rel.display(),
                hazard.line
            ),
            chain: names,
        });
    }
}

fn check_unit_flow(index: &SymbolIndex, findings: &mut Vec<Finding>) {
    for caller in index.fn_ids() {
        if index.is_test_fn(caller) {
            continue;
        }
        let file_idx = index.file_of(caller);
        let file = &index.files[file_idx];
        let caller_dir = index.crate_of(caller).to_owned();
        let item = index.fn_at(caller);
        for call in &item.calls {
            let Some(escaped_from) = &call.raw_unit else {
                continue;
            };
            if sem_allowed(file, call.line, Rule::UnitFlow) {
                continue;
            }
            let mut candidates = Vec::new();
            resolve_call(
                index,
                &caller_dir,
                file_idx,
                item.self_type.as_deref(),
                &call.kind,
                &mut candidates,
            );
            let Some(&callee) = candidates.iter().find(|&&id| {
                let dir = index.crate_of(id);
                dir != caller_dir
                    && !DIMENSIONLESS_SINK_CRATES.contains(&dir)
                    && index.fn_at(id).vis == Vis::Pub
                    && !index.is_test_fn(id)
            }) else {
                continue;
            };
            let callee_name = index.fn_at(callee).display_name();
            let callee_dir = index.crate_of(callee);
            findings.push(Finding {
                file: file.rel.clone(),
                line: call.line,
                column: 0,
                rule: Rule::UnitFlow,
                matched: format!(
                    "raw f64 from unit value `{escaped_from}` flows into `mira_{callee_dir}::{callee_name}` without mira_units::convert"
                ),
                chain: vec![item.display_name(), format!("mira_{callee_dir}::{callee_name}")],
            });
        }
    }
}

fn check_deprecated_call(index: &SymbolIndex, findings: &mut Vec<Finding>) {
    for caller in index.fn_ids() {
        if index.is_test_fn(caller) {
            continue;
        }
        let file_idx = index.file_of(caller);
        let file = &index.files[file_idx];
        let caller_dir = index.crate_of(caller).to_owned();
        let item = index.fn_at(caller);
        // Deprecated shims may call each other while they wind down.
        if item.deprecated {
            continue;
        }
        for call in &item.calls {
            if sem_allowed(file, call.line, Rule::DeprecatedCall) {
                continue;
            }
            let mut candidates = Vec::new();
            resolve_call(
                index,
                &caller_dir,
                file_idx,
                item.self_type.as_deref(),
                &call.kind,
                &mut candidates,
            );
            let Some(&callee) = candidates
                .iter()
                .find(|&&id| index.fn_at(id).deprecated && !index.is_test_fn(id))
            else {
                continue;
            };
            let callee_name = index.fn_at(callee).display_name();
            findings.push(Finding {
                file: file.rel.clone(),
                line: call.line,
                column: 0,
                rule: Rule::DeprecatedCall,
                matched: format!("`{}` calls deprecated `{callee_name}`", item.display_name()),
                chain: vec![item.display_name(), callee_name],
            });
        }
    }
}

// ---------------------------------------------------------------------
// Dataflow-backed hot-path rules.

/// The first undischarged allocation site of a non-test fn, if any. An
/// allow on the `fn` line discharges that body's sites (the hatch for
/// bounded per-sweep setup) but, unlike panic-reachability's root
/// skip, never the callees beneath it — the walk continues past an
/// allowed fn.
fn live_alloc(index: &SymbolIndex, id: FnId) -> Option<&AllocSite> {
    if index.is_test_fn(id) {
        return None;
    }
    let file = &index.files[index.file_of(id)];
    let item = index.fn_at(id);
    if sem_allowed(file, item.line, Rule::AllocInHotPath) {
        return None;
    }
    item.allocs
        .iter()
        .find(|a| !sem_allowed(file, a.line, Rule::AllocInHotPath))
}

/// Is `id` one of the configured sweep hot roots?
fn is_hot_root(index: &SymbolIndex, id: FnId) -> bool {
    if index.is_test_fn(id) {
        return false;
    }
    let krate = index.crate_of(id);
    let item = index.fn_at(id);
    if HOT_ROOT_FNS
        .iter()
        .any(|(c, ty, f)| *c == krate && item.self_type.as_deref() == Some(*ty) && item.name == *f)
    {
        return true;
    }
    item.name == "merge" && HOT_MERGE_CRATES.contains(&krate)
}

fn check_alloc_in_hot_path(index: &SymbolIndex, graph: &CallGraph, findings: &mut Vec<Finding>) {
    for root in index.fn_ids() {
        if !is_hot_root(index, root) {
            continue;
        }
        let item = index.fn_at(root);
        let root_file = &index.files[index.file_of(root)];
        let Some(chain) = graph.first_chain_to(root, &|id| live_alloc(index, id).is_some()) else {
            continue;
        };
        let Some(&sink) = chain.last() else { continue };
        let Some(site) = live_alloc(index, sink) else {
            continue;
        };
        let names: Vec<String> = chain
            .iter()
            .map(|&id| index.fn_at(id).display_name())
            .collect();
        let sink_file = &index.files[index.file_of(sink)];
        findings.push(Finding {
            file: root_file.rel.clone(),
            line: item.line,
            column: 0,
            rule: Rule::AllocInHotPath,
            matched: format!(
                "hot-path fn `{}` reaches an allocation: {} (`{}` at {}:{})",
                item.display_name(),
                names.join(" -> "),
                site.what,
                sink_file.rel.display(),
                site.line
            ),
            chain: names,
        });
    }
}

/// The first undischarged impurity of a non-test fn, if any. Same
/// fn-line hatch semantics as [`live_alloc`].
fn live_impurity(
    index: &SymbolIndex,
    id: FnId,
    rule: Rule,
    shared_only: bool,
) -> Option<&PuritySite> {
    if index.is_test_fn(id) {
        return None;
    }
    let file = &index.files[index.file_of(id)];
    let item = index.fn_at(id);
    if sem_allowed(file, item.line, rule) {
        return None;
    }
    item.impurities
        .iter()
        .filter(|p| !shared_only || p.shared)
        .find(|p| !sem_allowed(file, p.line, rule))
}

fn check_cache_purity(index: &SymbolIndex, graph: &CallGraph, findings: &mut Vec<Finding>) {
    for root in index.fn_ids() {
        if index.is_test_fn(root) {
            continue;
        }
        let krate = index.crate_of(root);
        let item = index.fn_at(root);
        let feeds_memo = CACHE_PURE_TYPES
            .iter()
            .any(|(c, ty)| *c == krate && item.self_type.as_deref() == Some(*ty));
        if !feeds_memo {
            continue;
        }
        let root_file = &index.files[index.file_of(root)];
        let Some(chain) = graph.first_chain_to(root, &|id| {
            live_impurity(index, id, Rule::CachePurity, false).is_some()
        }) else {
            continue;
        };
        let Some(&sink) = chain.last() else { continue };
        let Some(site) = live_impurity(index, sink, Rule::CachePurity, false) else {
            continue;
        };
        let names: Vec<String> = chain
            .iter()
            .map(|&id| index.fn_at(id).display_name())
            .collect();
        let sink_file = &index.files[index.file_of(sink)];
        findings.push(Finding {
            file: root_file.rel.clone(),
            line: item.line,
            column: 0,
            rule: Rule::CachePurity,
            matched: format!(
                "memo-feeding fn `{}` reaches impure state: {} ({} at {}:{})",
                item.display_name(),
                names.join(" -> "),
                site.what,
                sink_file.rel.display(),
                site.line
            ),
            chain: names,
        });
    }
}

fn check_shared_state_escape(index: &SymbolIndex, graph: &CallGraph, findings: &mut Vec<Finding>) {
    for root in index.fn_ids() {
        if index.is_test_fn(root) || index.crate_of(root) != "core" {
            continue;
        }
        let item = index.fn_at(root);
        // Roots: fns that hand closures to std::thread::{scope, spawn};
        // the closure bodies are part of this fn's own walk.
        if !item.hazards.iter().any(|h| h.what == "thread spawn/scope") {
            continue;
        }
        let root_file = &index.files[index.file_of(root)];
        let Some(chain) = graph.first_chain_to(root, &|id| {
            live_impurity(index, id, Rule::SharedStateEscape, true).is_some()
        }) else {
            continue;
        };
        let Some(&sink) = chain.last() else { continue };
        let Some(site) = live_impurity(index, sink, Rule::SharedStateEscape, true) else {
            continue;
        };
        let names: Vec<String> = chain
            .iter()
            .map(|&id| index.fn_at(id).display_name())
            .collect();
        let sink_file = &index.files[index.file_of(sink)];
        findings.push(Finding {
            file: root_file.rel.clone(),
            line: item.line,
            column: 0,
            rule: Rule::SharedStateEscape,
            matched: format!(
                "thread-spawning fn `{}` can reach shared mutable state: {} ({} at {}:{})",
                item.display_name(),
                names.join(" -> "),
                site.what,
                sink_file.rel.display(),
                site.line
            ),
            chain: names,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::analyze;
    use std::path::Path;

    fn findings_in(fake_path: &str, src: &str) -> Vec<Finding> {
        check_file(Path::new(fake_path), &analyze(src))
    }

    const LIB: &str = "crates/cooling/src/fixture.rs";

    #[test]
    fn unwrap_fires_in_lib_code() {
        let found = findings_in(LIB, "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n");
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, Rule::NoUnwrapInLib);
        assert_eq!(found[0].line, 1);
    }

    #[test]
    fn unwrap_or_variants_do_not_fire() {
        let found = findings_in(
            LIB,
            "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0).min(x.unwrap_or_default()) }\n",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn unwrap_in_cfg_test_is_exempt() {
        let src = "\
#[cfg(test)]
mod tests {
    fn f(x: Option<u8>) -> u8 { x.unwrap() }
}
";
        assert!(findings_in(LIB, src).is_empty());
    }

    #[test]
    fn unwrap_in_comment_or_string_is_exempt() {
        let src = "// call .unwrap() later\nconst HINT: &str = \"x.unwrap()\";\n";
        assert!(findings_in(LIB, src).is_empty());
    }

    #[test]
    fn escape_hatch_same_line_and_line_above() {
        let same =
            "fn f(x: Option<u8>) -> u8 { x.unwrap() } // mira-lint: allow(no-unwrap-in-lib)\n";
        assert!(findings_in(LIB, same).is_empty());
        let above =
            "// mira-lint: allow(no-unwrap-in-lib)\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert!(findings_in(LIB, above).is_empty());
        let wrong_rule =
            "// mira-lint: allow(lossy-cast)\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert_eq!(findings_in(LIB, wrong_rule).len(), 1);
    }

    #[test]
    fn expect_and_panic_fire() {
        let found = findings_in(LIB, "fn f() { g().expect(\"boom\"); panic!(\"no\"); }\n");
        assert_eq!(found.len(), 2);
        assert!(found.iter().all(|f| f.rule == Rule::NoUnwrapInLib));
    }

    #[test]
    fn lossy_casts_fire_per_target() {
        let found = findings_in(
            LIB,
            "fn f(n: u64) { let _ = (n as f64, n as usize, n as u32, n as i64); }\n",
        );
        assert_eq!(found.len(), 4);
        assert!(found.iter().all(|f| f.rule == Rule::LossyCast));
    }

    #[test]
    fn benign_casts_do_not_fire() {
        let found = findings_in(LIB, "fn f(n: u8) { let _ = n as u64; let _ = n as i32; }\n");
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn partial_cmp_unwrap_fires_including_multiline() {
        let one = "fn f(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n";
        let found = findings_in(LIB, one);
        // Fires both as a NaN hazard and as a lib-code unwrap.
        assert_eq!(found.len(), 2, "{found:?}");
        assert!(found.iter().any(|f| f.rule == Rule::NanUnsafeCompare));
        assert!(found.iter().any(|f| f.rule == Rule::NoUnwrapInLib));
        let two =
            "fn f(a: f64, b: f64) { let _ = a.partial_cmp(&b)\n        .expect(\"finite\"); }\n";
        let found = findings_in(LIB, two);
        assert_eq!(found.len(), 2, "{found:?}"); // nan-unsafe + no-unwrap on line 2
        assert!(found.iter().any(|f| f.rule == Rule::NanUnsafeCompare));
    }

    #[test]
    fn float_equality_fires() {
        let found = findings_in(LIB, "fn f(x: f64) -> bool { x == 0.0 }\n");
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, Rule::NanUnsafeCompare);
        let found = findings_in(LIB, "fn f(x: f64) -> bool { 1.5e3 != x }\n");
        assert_eq!(found.len(), 1);
    }

    #[test]
    fn integer_equality_does_not_fire() {
        assert!(findings_in(LIB, "fn f(x: u64) -> bool { x == 10 }\n").is_empty());
        assert!(findings_in(LIB, "fn f(x: bool) -> bool { x != true }\n").is_empty());
    }

    #[test]
    fn nondeterminism_fires_only_in_simulation_crates() {
        let src = "fn f() { let t = std::time::Instant::now(); let _ = t; }\n";
        assert_eq!(findings_in("crates/core/src/x.rs", src).len(), 1);
        assert_eq!(findings_in("crates/ras/src/x.rs", src).len(), 1);
        assert!(findings_in("crates/cli/src/x.rs", src).is_empty());
        assert!(findings_in("crates/nn/src/x.rs", src).is_empty());
    }

    #[test]
    fn seeded_rng_paths_do_not_fire() {
        let src = "use rand::rngs::StdRng;\nfn f() { let _ = StdRng::seed_from_u64(7); }\n";
        assert!(findings_in("crates/weather/src/x.rs", src).is_empty());
    }

    #[test]
    fn unseeded_rng_fires() {
        let src = "fn f() { let mut r = rand::rng(); }\n";
        assert_eq!(findings_in("crates/workload/src/x.rs", src).len(), 1);
        let src = "fn f() { let mut r = thread_rng(); }\n";
        assert_eq!(findings_in("crates/cooling/src/x.rs", src).len(), 1);
    }

    #[test]
    fn public_f64_fires_in_physics_crates_only() {
        let src = "pub fn temperature(&self) -> f64 { self.t }\n";
        let found = findings_in("crates/cooling/src/x.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, Rule::RawF64InPublicApi);
        assert!(findings_in("crates/timeseries/src/x.rs", src).is_empty());
    }

    #[test]
    fn crate_private_and_newtype_signatures_pass() {
        let private = "pub(crate) fn helper(x: f64) -> f64 { x }\n";
        assert!(findings_in("crates/weather/src/x.rs", private).is_empty());
        let typed = "pub fn temperature(&self) -> Celsius { self.t }\n";
        assert!(findings_in("crates/cooling/src/x.rs", typed).is_empty());
    }

    #[test]
    fn multiline_public_signature_is_scanned() {
        let src = "\
pub fn blend(
    a: Celsius,
    weight: f64,
) -> Celsius {
    a
}
";
        let found = findings_in("crates/facility/src/x.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 1);
    }

    #[test]
    fn findings_render_file_line_column_rule() {
        let found = findings_in(LIB, "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n");
        let rendered = found[0].to_string();
        assert!(
            rendered.starts_with("crates/cooling/src/fixture.rs:1:31: [no-unwrap-in-lib]"),
            "{rendered}"
        );
        assert!(rendered.contains("suggestion:"));
        // Semantic findings (column 0) keep the file:line anchor.
        let sem = Finding {
            file: PathBuf::from("crates/core/src/sweep.rs"),
            line: 7,
            column: 0,
            rule: Rule::AllocInHotPath,
            matched: "x".into(),
            chain: Vec::new(),
        };
        assert!(
            sem.to_string()
                .starts_with("crates/core/src/sweep.rs:7: [alloc-in-hot-path]"),
            "{sem}"
        );
    }

    #[test]
    fn every_rule_has_name_and_explain() {
        for rule in Rule::ALL {
            assert_eq!(Rule::from_name(rule.name()), Some(rule));
            assert!(rule.explain().starts_with(rule.name()), "{}", rule.name());
        }
    }

    // -----------------------------------------------------------------
    // Semantic rules over mini-workspaces.

    fn semantic(sources: &[(&str, &str)]) -> Vec<Finding> {
        let files = sources
            .iter()
            .map(|(rel, src)| {
                crate::parser::parse_file(Path::new(rel), src, &analyze(src), &UNIT_TYPES)
            })
            .collect();
        let index = SymbolIndex::build(files, &[]);
        let graph = CallGraph::build(&index);
        semantic_findings(&index, &graph)
    }

    #[test]
    fn panic_reachability_crosses_files_with_chain() {
        let found = semantic(&[
            (
                "crates/core/src/api.rs",
                "pub fn entry() {\n    crate::deep::helper();\n}\n",
            ),
            (
                "crates/core/src/deep.rs",
                "pub(crate) fn helper() {\n    inner();\n}\nfn inner() {\n    let x: Option<u8> = None;\n    let _ = x.unwrap();\n}\n",
            ),
        ]);
        let reach: Vec<_> = found
            .iter()
            .filter(|f| f.rule == Rule::PanicReachability)
            .collect();
        assert_eq!(reach.len(), 1, "{found:?}");
        assert_eq!(reach[0].file, Path::new("crates/core/src/api.rs"));
        assert_eq!(reach[0].line, 1);
        assert_eq!(reach[0].chain, vec!["entry", "helper", "inner"]);
        assert!(reach[0].matched.contains("unwrap()"));
        assert!(reach[0].matched.contains("crates/core/src/deep.rs:6"));
    }

    #[test]
    fn panic_reachability_skips_unaudited_and_private() {
        let unaudited = semantic(&[(
            "crates/nn/src/lib.rs",
            "pub fn entry(x: Option<u8>) -> u8 { x.unwrap() }\n",
        )]);
        assert!(unaudited.iter().all(|f| f.rule != Rule::PanicReachability));
        let private = semantic(&[(
            "crates/core/src/lib.rs",
            "pub(crate) fn entry(x: Option<u8>) -> u8 { x.unwrap() }\n",
        )]);
        assert!(private.iter().all(|f| f.rule != Rule::PanicReachability));
    }

    #[test]
    fn panic_reachability_discharged_at_source() {
        let found = semantic(&[(
            "crates/timeseries/src/lib.rs",
            "pub fn entry(x: Option<u8>) -> u8 {\n    // length checked above. mira-lint: allow(panic-reachability)\n    x.unwrap()\n}\n",
        )]);
        assert!(found.iter().all(|f| f.rule != Rule::PanicReachability));
    }

    #[test]
    fn panic_reachability_discharged_at_fn_line() {
        let found = semantic(&[(
            "crates/timeseries/src/lib.rs",
            "pub fn entry(q: &[f64; 5]) -> f64 {\n    pick(q)\n}\n\
             // markers array is always length 5. mira-lint: allow(panic-reachability)\n\
             fn pick(q: &[f64; 5]) -> f64 {\n    q[2] + q[4]\n}\n",
        )]);
        assert!(
            found.iter().all(|f| f.rule != Rule::PanicReachability),
            "{found:?}"
        );
    }

    #[test]
    fn unit_flow_flags_cross_crate_raw_escape() {
        let found = semantic(&[
            (
                "crates/core/src/lib.rs",
                "use mira_units::Celsius;\npub(crate) fn push(t: Celsius) {\n    mira_cooling::ingest(t.value());\n}\n",
            ),
            ("crates/cooling/src/lib.rs", "pub fn ingest(x: f64) {}\n"),
        ]);
        let flow: Vec<_> = found.iter().filter(|f| f.rule == Rule::UnitFlow).collect();
        assert_eq!(flow.len(), 1, "{found:?}");
        assert_eq!(flow[0].line, 3);
        assert!(flow[0].matched.contains("mira_cooling::ingest"));
    }

    #[test]
    fn unit_flow_sanctions_same_crate_and_dimensionless_sinks() {
        let found = semantic(&[
            (
                "crates/core/src/lib.rs",
                "use mira_units::Watts;\npub(crate) fn push(p: Watts) {\n    local(p.value());\n    mira_timeseries::record(p.value());\n}\nfn local(x: f64) {}\n",
            ),
            ("crates/timeseries/src/lib.rs", "pub fn record(x: f64) {}\n"),
        ]);
        assert!(found.iter().all(|f| f.rule != Rule::UnitFlow), "{found:?}");
    }

    #[test]
    fn determinism_taint_reaches_through_calls() {
        let found = semantic(&[
            (
                "crates/core/src/summary.rs",
                "pub fn merge() {\n    crate::telemetry::stamp();\n}\n",
            ),
            (
                "crates/core/src/telemetry.rs",
                "pub(crate) fn stamp() {\n    let _ = std::time::Instant::now();\n}\n",
            ),
        ]);
        let taint: Vec<_> = found
            .iter()
            .filter(|f| f.rule == Rule::DeterminismTaint)
            .collect();
        assert_eq!(taint.len(), 1, "{found:?}");
        assert_eq!(taint[0].file, Path::new("crates/core/src/summary.rs"));
        assert!(taint[0].matched.contains("Instant::now"));
    }

    #[test]
    fn determinism_taint_sanctions_the_executor_spawn() {
        let found = semantic(&[(
            "crates/core/src/sweep.rs",
            "pub fn run() {\n    std::thread::scope(|s| {\n        s.spawn(|| {});\n    });\n}\n",
        )]);
        assert!(
            found.iter().all(|f| f.rule != Rule::DeterminismTaint),
            "{found:?}"
        );
    }

    #[test]
    fn deprecated_call_flags_live_code_only() {
        let live = semantic(&[(
            "crates/core/src/lib.rs",
            "#[deprecated(note = \"use summarize\")]\npub fn summarize_span() {}\npub(crate) fn caller() {\n    summarize_span();\n}\n",
        )]);
        let dep: Vec<_> = live
            .iter()
            .filter(|f| f.rule == Rule::DeprecatedCall)
            .collect();
        assert_eq!(dep.len(), 1, "{live:?}");
        assert_eq!(dep[0].line, 4);

        let test_only = semantic(&[(
            "crates/core/src/lib.rs",
            "#[deprecated]\npub fn old() {}\n#[cfg(test)]\nmod tests {\n    fn t() {\n        crate::old();\n    }\n}\n",
        )]);
        assert!(test_only.iter().all(|f| f.rule != Rule::DeprecatedCall));
    }

    // -----------------------------------------------------------------
    // Dataflow-backed hot-path rules: one positive and one negative
    // fixture each.

    #[test]
    fn alloc_in_hot_path_fires_on_injected_vec_new() {
        // The acceptance fixture: a synthetic Vec::new smuggled beneath
        // sweep_step_into through a helper.
        let found = semantic(&[(
            "crates/core/src/telemetry.rs",
            "pub struct TelemetryEngine;\n\
             impl TelemetryEngine {\n\
                 pub fn sweep_step_into(&self) {\n        helper();\n    }\n\
             }\n\
             fn helper() {\n    let v: Vec<f64> = Vec::new();\n    let _ = v;\n}\n",
        )]);
        let hits: Vec<_> = found
            .iter()
            .filter(|f| f.rule == Rule::AllocInHotPath)
            .collect();
        assert_eq!(hits.len(), 1, "{found:?}");
        assert_eq!(
            hits[0].chain,
            vec!["TelemetryEngine::sweep_step_into", "helper"]
        );
        assert!(hits[0].matched.contains("Vec::new"));
        assert!(hits[0].matched.contains("crates/core/src/telemetry.rs:8"));
    }

    #[test]
    fn alloc_in_hot_path_sanctions_scratch_reuse() {
        // Negative fixture: the real kernel shape — clear + push through
        // caller-owned buffers allocates nothing.
        let found = semantic(&[(
            "crates/core/src/telemetry.rs",
            "pub struct TelemetryEngine;\n\
             impl TelemetryEngine {\n\
                 pub fn sweep_step_into(&self, out: &mut Vec<f64>, scratch: &mut SweepScratch) {\n\
                     out.clear();\n        out.push(1.0);\n        scratch.truths.push(2.0);\n    }\n\
             }\n",
        )]);
        assert!(
            found.iter().all(|f| f.rule != Rule::AllocInHotPath),
            "{found:?}"
        );
    }

    #[test]
    fn alloc_in_hot_path_covers_merge_fns_and_fn_line_allow() {
        let positive = semantic(&[(
            "crates/timeseries/src/stats.rs",
            "pub struct Acc;\nimpl Acc {\n    pub fn merge(&mut self, other: &Acc) {\n        let label = format!(\"x\");\n        let _ = label;\n    }\n}\n",
        )]);
        assert!(
            positive.iter().any(|f| f.rule == Rule::AllocInHotPath),
            "{positive:?}"
        );
        // The fn-line hatch discharges the body's bounded setup...
        let allowed = semantic(&[(
            "crates/core/src/sweep.rs",
            "pub struct SweepPlan;\nimpl SweepPlan {\n    // bounded per-sweep setup. mira-lint: allow(alloc-in-hot-path)\n    pub fn run(&self) {\n        let shards: Vec<u8> = Vec::with_capacity(4);\n        let _ = shards;\n    }\n}\n",
        )]);
        assert!(
            allowed.iter().all(|f| f.rule != Rule::AllocInHotPath),
            "{allowed:?}"
        );
        // ...but never the callees beneath it: the walk continues.
        let beneath = semantic(&[(
            "crates/core/src/sweep.rs",
            "pub struct SweepPlan;\nimpl SweepPlan {\n    // bounded per-sweep setup. mira-lint: allow(alloc-in-hot-path)\n    pub fn run(&self) {\n        leak();\n    }\n}\nfn leak() {\n    let s = String::new();\n    let _ = s;\n}\n",
        )]);
        assert!(
            beneath.iter().any(|f| f.rule == Rule::AllocInHotPath),
            "fn-line allow must not vacate the subtree: {beneath:?}"
        );
    }

    #[test]
    fn cache_purity_fires_on_impure_memo_constructor() {
        let found = semantic(&[(
            "crates/core/src/telemetry.rs",
            "pub struct HydroKey;\nimpl HydroKey {\n    pub fn new() -> Self {\n        stamp();\n        HydroKey\n    }\n}\n\
             fn stamp() {\n    let _ = std::time::SystemTime::now();\n}\n",
        )]);
        let hits: Vec<_> = found
            .iter()
            .filter(|f| f.rule == Rule::CachePurity)
            .collect();
        assert_eq!(hits.len(), 1, "{found:?}");
        assert_eq!(hits[0].chain, vec!["HydroKey::new", "stamp"]);
        assert!(hits[0].matched.contains("SystemTime"));
    }

    #[test]
    fn cache_purity_passes_pure_constructor() {
        let found = semantic(&[(
            "crates/weather/src/noise.rs",
            "pub struct NoiseCursor;\nimpl NoiseCursor {\n    pub fn new(seed: u64) -> u64 {\n        mix(seed)\n    }\n}\n\
             fn mix(z: u64) -> u64 {\n    z.wrapping_mul(7)\n}\n",
        )]);
        assert!(
            found.iter().all(|f| f.rule != Rule::CachePurity),
            "{found:?}"
        );
    }

    #[test]
    fn shared_state_escape_fires_on_refcell_under_spawn() {
        let found = semantic(&[(
            "crates/core/src/sweep.rs",
            "pub fn run() {\n    std::thread::scope(|s| {\n        s.spawn(|| tally());\n    });\n}\n\
             fn tally() {\n    let c = RefCell::new(0u64);\n    let _ = c;\n}\n",
        )]);
        let hits: Vec<_> = found
            .iter()
            .filter(|f| f.rule == Rule::SharedStateEscape)
            .collect();
        assert_eq!(hits.len(), 1, "{found:?}");
        assert!(hits[0].matched.contains("RefCell"));
        assert_eq!(hits[0].chain, vec!["run", "tally"]);
    }

    #[test]
    fn shared_state_escape_sanctions_mutex_slots() {
        // Negative fixture: the executor's slot-per-shard Mutex
        // discipline is the sanctioned pattern.
        let found = semantic(&[(
            "crates/core/src/sweep.rs",
            "pub fn run() {\n    let slots: Vec<Mutex<u8>> = Vec::new();\n    std::thread::scope(|s| {\n        s.spawn(|| {});\n    });\n    let _ = slots;\n}\n",
        )]);
        assert!(
            found.iter().all(|f| f.rule != Rule::SharedStateEscape),
            "{found:?}"
        );
    }

    #[test]
    fn determinism_taint_requires_receiver_typed_hash_iteration() {
        // The pre-dataflow false positive: sweep code that *looks up* a
        // HashMap but iterates a Vec must not fire.
        let found = semantic(&[(
            "crates/core/src/summary.rs",
            "pub fn merge(m: &HashMap<u8, u8>) {\n    let v: Vec<u8> = Vec::new();\n    for x in v.iter() {\n        let _ = m.get(x);\n    }\n}\n",
        )]);
        assert!(
            found.iter().all(|f| f.rule != Rule::DeterminismTaint),
            "{found:?}"
        );
        // A resolved hash receiver still fires.
        let hit = semantic(&[(
            "crates/core/src/summary.rs",
            "pub fn merge() {\n    let m: HashMap<u8, u8> = HashMap::new();\n    for k in m.keys() {\n        let _ = k;\n    }\n}\n",
        )]);
        assert!(
            hit.iter().any(|f| f.rule == Rule::DeterminismTaint),
            "{hit:?}"
        );
    }
}
