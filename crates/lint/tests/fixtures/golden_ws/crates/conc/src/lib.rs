//! Fixture crate: deterministic violations of the five concurrency
//! rules for the golden JSON test.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

pub struct Pair {
    a: Mutex<u64>,
    b: Mutex<u64>,
    flag: AtomicBool,
    count: AtomicU64,
}

impl Pair {
    // lock-order: `forward` takes a then b, `backward` takes b then a —
    // a two-lock inversion cycle.
    pub fn forward(&self) -> u64 {
        let ga = match self.a.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        let gb = match self.b.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        *ga + *gb
    }

    pub fn backward(&self) -> u64 {
        let gb = match self.b.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        let ga = match self.a.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        *ga - *gb
    }

    // guard-across-blocking: the guard on `a` is live across console
    // I/O.
    pub fn log_total(&self, out: &mut impl std::io::Write) {
        let ga = match self.a.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        out.write_all(b"total\n").ok();
        let _ = *ga;
    }

    // guard-across-panic: the guard on `b` is live across a call chain
    // reaching an unbounded slice index.
    pub fn with_first(&self, xs: &[u64]) -> u64 {
        let gb = match self.b.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        *gb + first(xs)
    }

    // atomic-ordering: a Relaxed store publishes nothing...
    pub fn set_ready(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    // ...a Relaxed load must not gate control flow...
    pub fn spin_wait(&self) {
        while self.flag.load(Ordering::Relaxed) {
            std::hint::spin_loop();
        }
    }

    // ...and blanket SeqCst hides the real protocol.
    pub fn bump(&self) -> u64 {
        self.count.fetch_add(1, Ordering::SeqCst)
    }
}

fn first(xs: &[u64]) -> u64 {
    xs[0]
}

// unjoined-thread: the JoinHandle is dropped on the floor.
pub fn fire_and_forget() {
    std::thread::spawn(|| {});
}
