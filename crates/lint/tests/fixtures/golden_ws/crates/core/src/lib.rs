//! Fixture crate: deterministic violations for the golden JSON test.

pub fn entry(values: &[u64]) -> f64 {
    scale(pick(values))
}

fn pick(values: &[u64]) -> u64 {
    values.first().copied().unwrap()
}

fn scale(n: u64) -> f64 {
    n as f64
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt() {
        assert_eq!(super::pick(&[1]), 1);
    }
}
