//! Fixture crate: clean code plus one string that must not trip rules.

pub fn describe() -> &'static str {
    "calling unwrap() here would be bad, but this is a string"
}
