//! Cache-invariance test for the incremental scan cache.
//!
//! Runs the real binary over the fixture workspace three times against
//! the same cache file: cold (no cache), populate (`--cache-file` on an
//! empty path), and warm (full digest hit). All three runs must produce
//! byte-identical `--format json` output — the warm run returns the
//! stored final findings verbatim, so any divergence means the cache is
//! serving stale or reshaped results. ci.sh gates the same invariant on
//! the real workspace.

use std::path::{Path, PathBuf};
use std::process::Command;

fn run_fixture(cache_file: Option<&Path>) -> (String, Option<i32>) {
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_ws");
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_mira-lint"));
    cmd.arg("--root")
        .arg(&fixture)
        .arg("--format")
        .arg("json")
        .env("MIRA_LINT_THREADS", "2");
    if let Some(path) = cache_file {
        cmd.arg("--cache-file").arg(path);
    }
    let output = cmd.output().expect("mira-lint binary runs");
    (
        String::from_utf8(output.stdout).expect("JSON output is UTF-8"),
        output.status.code(),
    )
}

fn scratch_cache_path(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("mira-lint-cache-invariance");
    std::fs::create_dir_all(&dir).expect("scratch dir is creatable");
    dir.join(name)
}

#[test]
fn cached_scan_is_byte_identical_to_cold_scan() {
    let cache = scratch_cache_path("roundtrip.json");
    let _ = std::fs::remove_file(&cache);

    let (cold, code_cold) = run_fixture(None);
    let (populate, code_populate) = run_fixture(Some(&cache));
    assert!(cache.is_file(), "populate run persists the cache");
    let (warm, code_warm) = run_fixture(Some(&cache));

    assert_eq!(
        cold, populate,
        "populating the cache must not change output"
    );
    assert_eq!(cold, warm, "a full cache hit must replay the cold output");
    assert_eq!(code_cold, code_populate);
    assert_eq!(code_cold, code_warm);
}

#[test]
fn corrupt_cache_degrades_to_cold_scan() {
    let cache = scratch_cache_path("corrupt.json");
    std::fs::write(&cache, "{ not json").expect("scratch cache is writable");

    let (cold, code_cold) = run_fixture(None);
    let (recovered, code_recovered) = run_fixture(Some(&cache));
    assert_eq!(
        cold, recovered,
        "corrupt cache must fall back to a cold scan"
    );
    assert_eq!(code_cold, code_recovered);
}
