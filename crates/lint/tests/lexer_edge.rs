//! Regression tests for the lexer's tricky corners: raw strings,
//! nested block comments, prefixed literals, lifetime/char-literal
//! disambiguation, and `#[cfg(test)] mod tests;` pointing at a
//! separate file.
//!
//! Each case here once produced (or could produce) a false positive
//! or a missed finding in the substring-matching line rules, so they
//! are pinned as integration tests against the public lexer API.

use std::path::PathBuf;

use mira_lint::lexer::{analyze, scrub, token_bounded, token_matches};
use mira_lint::rules::Rule;
use mira_lint::Workspace;

#[test]
fn raw_string_with_hashes_is_blanked() {
    // The body contains rule-triggering text; none of it may survive
    // into the scrubbed view.
    let src = "let s = r#\"x.unwrap() as f64 panic!(\"no\")\"#;\n";
    let lines = analyze(src);
    assert!(!lines[0].code.contains("unwrap"));
    assert!(!lines[0].code.contains("as f64"));
    assert!(!lines[0].code.contains("panic"));
    // The delimiters themselves survive, keeping byte offsets exact.
    assert!(lines[0].code.starts_with("let s = r#\""));
    assert_eq!(lines[0].code.len(), lines[0].raw.len());
}

#[test]
fn raw_string_terminator_needs_matching_hash_count() {
    // `"#` inside an `r##"..."##` literal does not end it.
    let src = "let s = r##\"inner \"# still literal .unwrap()\"##; let y = 1;\n";
    let lines = analyze(src);
    assert!(!lines[0].code.contains("unwrap"), "{}", lines[0].code);
    assert!(lines[0].code.ends_with("let y = 1;"));
}

#[test]
fn multiline_raw_string_blanks_every_line() {
    let src = "let s = r#\"line one .unwrap()\nline two as usize\n\"#;\nlet t = 0;\n";
    let lines = analyze(src);
    assert!(!lines[0].code.contains("unwrap"));
    assert!(!lines[1].code.contains("as usize"));
    assert_eq!(lines[3].code, "let t = 0;");
}

#[test]
fn byte_and_raw_byte_literals_are_blanked() {
    let src = "let a = b\"unwrap()\"; let b = br#\"panic!()\"#; let c = b'\\'';\n";
    let lines = analyze(src);
    assert!(!lines[0].code.contains("unwrap"));
    assert!(!lines[0].code.contains("panic"));
    // The escaped byte char must not derail the rest of the line.
    assert!(lines[0].code.ends_with(';'));
}

#[test]
fn identifier_ending_in_r_is_not_a_raw_string() {
    // `var"text"` never occurs, but `ptr` / `b` as the *end* of an
    // identifier must not trigger the prefixed-literal path.
    let src = "let lower = upper.unwrap();\nlet rb = grab * 2;\n";
    let lines = analyze(src);
    assert_eq!(
        token_matches(&lines[0].code, "unwrap").count(),
        1,
        "real unwrap survives scrubbing: {}",
        lines[0].code
    );
    assert_eq!(lines[1].code, lines[1].raw);
}

#[test]
fn nested_block_comments_track_depth_across_lines() {
    let src = "/* outer /* inner\nstill /* deeper */ inner */\ncomment */ fn live() {}\n";
    let scrubbed = scrub(src);
    assert!(!scrubbed.contains("outer"));
    assert!(!scrubbed.contains("deeper"));
    assert!(scrubbed.contains("fn live()"));
}

#[test]
fn escaped_quote_does_not_end_string() {
    let src = "let s = \"a \\\" b .unwrap() c\"; let live = x.unwrap();\n";
    let lines = analyze(src);
    assert_eq!(
        token_matches(&lines[0].code, "unwrap").count(),
        1,
        "only the unwrap outside the literal remains: {}",
        lines[0].code
    );
}

#[test]
fn lifetimes_survive_but_char_literals_are_blanked() {
    let src = "fn f<'a, 'de>(x: &'a str) -> char { if y == '}' { 'q' } else { '\\n' } }\n";
    let lines = analyze(src);
    assert!(lines[0].code.contains("<'a, 'de>"));
    assert!(lines[0].code.contains("&'a str"));
    assert!(!lines[0].code.contains("'q'"));
    // The blanked `'}'` must not disturb brace-depth bookkeeping:
    // a following `#[cfg(test)]` region still opens and closes sanely.
    let src2 =
        "fn f() -> char { '{' }\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn real() {}\n";
    let lines2 = analyze(src2);
    assert!(lines2[3].in_test_context, "inside the region");
    assert!(!lines2[5].in_test_context, "region closed after `}}`");
}

#[test]
fn braceless_cfg_test_mod_does_not_leak_into_next_item() {
    let src = "#[cfg(test)]\nmod tests;\n\npub fn live(o: Option<u8>) -> u8 {\n    o.unwrap()\n}\n";
    let lines = analyze(src);
    assert!(!lines[3].in_test_context, "fn after `mod tests;`");
    assert!(!lines[4].in_test_context, "unwrap line is live code");
}

#[test]
fn token_bounded_edges() {
    let code = "unwrap";
    assert!(token_bounded(code, 0, 6), "whole-string match");
    let code2 = "x.unwrap()";
    assert!(token_bounded(code2, 2, 6));
    let code3 = "unwrapped";
    assert!(!token_bounded(code3, 0, 6), "prefix of a longer ident");
}

#[test]
fn external_cfg_test_mod_exempts_child_file_from_semantic_rules() {
    // `#[cfg(test)] mod tests;` in lib.rs points at tests.rs: public
    // fns there are test-only and must not become panic-reachability
    // roots, while the same fn in live code must.
    let ws = Workspace::from_files(vec![
        (
            PathBuf::from("crates/core/Cargo.toml"),
            "[package]\nname = \"mira-core\"\n".to_owned(),
        ),
        (
            PathBuf::from("crates/core/src/lib.rs"),
            "#[cfg(test)]\nmod tests;\n\npub fn live(o: Option<u8>) -> u8 {\n    o.unwrap()\n}\n"
                .to_owned(),
        ),
        (
            PathBuf::from("crates/core/src/tests.rs"),
            "pub fn helper(o: Option<u8>) -> u8 {\n    o.unwrap()\n}\n".to_owned(),
        ),
    ]);
    let findings = ws.scan(1);
    let reach: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::PanicReachability)
        .collect();
    assert_eq!(reach.len(), 1, "{reach:?}");
    assert!(reach[0].file.ends_with("lib.rs"));
    assert!(reach[0].matched.contains("live"));
    // The line rule still fires in tests.rs? No: test files are
    // exempt from no-unwrap too, via the cross-file marking.
    assert!(
        !findings
            .iter()
            .any(|f| f.rule == Rule::NoUnwrapInLib && f.file.ends_with("tests.rs")),
        "{findings:?}"
    );
}

// ---------------------------------------------------------------------
// Parser/dataflow edge cases the body walk must survive: nested
// closures, macro-invocation bodies, `let`-`else`, and turbofish
// method chains. Each runs the full pipeline over a one-file core
// crate whose `merge` fn is a hot root for `alloc-in-hot-path`.

fn scan_core_lib(src: &str) -> Vec<mira_lint::Finding> {
    Workspace::from_files(vec![
        (
            PathBuf::from("crates/core/Cargo.toml"),
            "[package]\nname = \"mira-core\"\n".to_owned(),
        ),
        (PathBuf::from("crates/core/src/lib.rs"), src.to_owned()),
    ])
    .scan(1)
}

#[test]
fn alloc_inside_nested_closure_in_macro_arg_is_reachable() {
    let findings = scan_core_lib(
        "pub fn merge(xs: &[u64]) -> u64 {\n    let v = vec![xs\n        .iter()\n        .map(|x| {\n            let inner = |y: u64| y + 1;\n            inner(*x)\n        })\n        .sum::<u64>()];\n    v.into_iter().sum()\n}\n",
    );
    assert!(
        findings
            .iter()
            .any(|f| f.rule == Rule::AllocInHotPath && f.matched.contains("vec! macro")),
        "{findings:?}"
    );
}

#[test]
fn let_else_does_not_derail_the_body_walk() {
    // The alloc sits *after* the `let`-`else` diversion; the walk must
    // reach it.
    let findings = scan_core_lib(
        "pub fn merge(o: Option<u8>) -> u64 {\n    let Some(x) = o else {\n        return 0;\n    };\n    let tail: Vec<u8> = Vec::new();\n    u64::from(x) + tail.len() as u64\n}\n",
    );
    assert!(
        findings
            .iter()
            .any(|f| f.rule == Rule::AllocInHotPath && f.matched.contains("Vec::new")),
        "{findings:?}"
    );
}

#[test]
fn turbofish_collect_targets_resolve_through_method_chains() {
    // A turbofish naming a container keeps the site...
    let heap = scan_core_lib(
        "pub fn merge(xs: &[u64]) -> Vec<u64> {\n    xs.iter().copied().collect::<Vec<u64>>()\n}\n",
    );
    assert!(
        heap.iter()
            .any(|f| f.rule == Rule::AllocInHotPath && f.matched.contains(".collect()")),
        "{heap:?}"
    );
    // ...while one naming a plain accumulator is a streaming fold.
    let fold = scan_core_lib(
        "pub fn merge(xs: &[f64]) -> Welford {\n    xs.iter().copied().collect::<Welford>()\n}\n",
    );
    assert!(
        !fold.iter().any(|f| f.rule == Rule::AllocInHotPath),
        "{fold:?}"
    );
}

#[test]
fn format_macro_args_stay_inside_the_enclosing_fn() {
    // Braces inside format! strings and args must not end the fn body
    // early: the fn after it still parses and its alloc is attributed
    // to *it*, not to `merge`.
    let findings = scan_core_lib(
        "pub fn merge(n: u64) -> String {\n    format!(\"{{{n}}}\")\n}\n\nfn quiet(n: u64) -> u64 {\n    let v = vec![n];\n    v[0]\n}\n",
    );
    let hot: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::AllocInHotPath)
        .collect();
    assert_eq!(hot.len(), 1, "{hot:?}");
    assert!(hot[0].matched.contains("format! macro"), "{hot:?}");
}
