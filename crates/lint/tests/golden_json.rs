//! Golden-file test for `--format json`.
//!
//! Runs the real binary over the fixture workspace in
//! `tests/fixtures/golden_ws/` and asserts the output is byte-for-byte
//! the checked-in `golden_ws.expected.json` — under one worker and
//! under four. That pins three things at once: the JSON shape, the
//! finding order, and the shard-merge determinism of the parallel
//! scan.
//!
//! To regenerate after an intentional rule change:
//!
//! ```text
//! cargo run -p mira-lint -- --root crates/lint/tests/fixtures/golden_ws \
//!     --format json > crates/lint/tests/fixtures/golden_ws.expected.json
//! ```

use std::path::Path;
use std::process::Command;

fn run_fixture(threads: &str) -> (String, Option<i32>) {
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_ws");
    let output = Command::new(env!("CARGO_BIN_EXE_mira-lint"))
        .arg("--root")
        .arg(&fixture)
        .arg("--format")
        .arg("json")
        .env("MIRA_LINT_THREADS", threads)
        .output()
        .expect("mira-lint binary runs");
    (
        String::from_utf8(output.stdout).expect("JSON output is UTF-8"),
        output.status.code(),
    )
}

#[test]
fn json_output_matches_golden_file() {
    let golden_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_ws.expected.json");
    let golden = std::fs::read_to_string(&golden_path).expect("golden file is readable");

    let (stdout, code) = run_fixture("1");
    assert_eq!(
        stdout, golden,
        "JSON drifted from the golden file; regenerate it if the change is intentional"
    );
    // The fixture has uncovered findings, so the gate must fail.
    assert_eq!(code, Some(1));
}

#[test]
fn json_output_is_byte_identical_across_thread_counts() {
    let (one, code_one) = run_fixture("1");
    let (four, code_four) = run_fixture("4");
    let (eight, code_eight) = run_fixture("8");
    assert_eq!(one, four, "shard merge must not depend on worker count");
    assert_eq!(one, eight, "shard merge must not depend on worker count");
    assert_eq!(code_one, code_four);
    assert_eq!(code_one, code_eight);
    // Sanity: the fixture actually exercises all three layers.
    assert!(one.contains("\"no-unwrap-in-lib\""));
    assert!(one.contains("\"lossy-cast\""));
    assert!(one.contains("\"panic-reachability\""));
    assert!(one.contains("\"chain\": [\"entry\", \"pick\"]"));
}
