//! Gaussian-process Bayesian optimization.
//!
//! The paper tunes its predictor's architecture ("number of neurons per
//! layer") with Bayesian optimization. This module implements the
//! standard machinery at the scale that task needs: an exact Gaussian
//! process with an RBF kernel over normalized configuration vectors, and
//! expected improvement as the acquisition function over a finite
//! candidate set.

use mira_units::convert;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Exact Gaussian-process regressor with an RBF kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaussianProcess {
    length_scale: f64,
    signal_variance: f64,
    noise_variance: f64,
    x: Vec<Vec<f64>>,
    /// Cholesky factor L of K + σ²I (lower triangular, row-major).
    chol: Vec<f64>,
    /// α = (K + σ²I)⁻¹ y.
    alpha: Vec<f64>,
    y_mean: f64,
}

impl GaussianProcess {
    /// Creates an unfitted GP.
    ///
    /// # Panics
    ///
    /// Panics unless all hyper-parameters are positive.
    #[must_use]
    pub fn new(length_scale: f64, signal_variance: f64, noise_variance: f64) -> Self {
        assert!(length_scale > 0.0, "length scale must be positive");
        assert!(signal_variance > 0.0, "signal variance must be positive");
        assert!(noise_variance > 0.0, "noise variance must be positive");
        Self {
            length_scale,
            signal_variance,
            noise_variance,
            x: Vec::new(),
            chol: Vec::new(),
            alpha: Vec::new(),
            y_mean: 0.0,
        }
    }

    fn kernel(&self, a: &[f64], b: &[f64]) -> f64 {
        let d2: f64 = a
            .iter()
            .zip(b)
            .map(|(&ai, &bi)| (ai - bi) * (ai - bi))
            .sum();
        self.signal_variance * (-d2 / (2.0 * self.length_scale * self.length_scale)).exp()
    }

    /// Fits the GP on observations.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ, inputs are empty, or the kernel matrix
    /// is not positive definite (should not happen with positive noise).
    pub fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert_eq!(x.len(), y.len(), "x/y length mismatch");
        assert!(!x.is_empty(), "cannot fit on no observations");
        let n = x.len();
        self.x = x.to_vec();
        self.y_mean = y.iter().sum::<f64>() / convert::f64_from_usize(n);

        // K + σ²I.
        let mut k = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                k[i * n + j] = self.kernel(&x[i], &x[j]);
            }
            k[i * n + i] += self.noise_variance;
        }
        // Cholesky decomposition.
        let mut l = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut sum = k[i * n + j];
                for p in 0..j {
                    sum -= l[i * n + p] * l[j * n + p];
                }
                if i == j {
                    assert!(sum > 0.0, "kernel matrix not positive definite");
                    l[i * n + i] = sum.sqrt();
                } else {
                    l[i * n + j] = sum / l[j * n + j];
                }
            }
        }
        // Solve L z = (y - mean), then Lᵀ α = z.
        let mut z = vec![0.0; n];
        for i in 0..n {
            let mut sum = y[i] - self.y_mean;
            for p in 0..i {
                sum -= l[i * n + p] * z[p];
            }
            z[i] = sum / l[i * n + i];
        }
        let mut alpha = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = z[i];
            for p in (i + 1)..n {
                sum -= l[p * n + i] * alpha[p];
            }
            alpha[i] = sum / l[i * n + i];
        }
        self.chol = l;
        self.alpha = alpha;
    }

    /// Posterior mean and variance at a query point.
    ///
    /// # Panics
    ///
    /// Panics if the GP has not been fitted.
    #[must_use]
    // Triangular-solve index arithmetic stays inside the n×n packed
    // factor built by `fit`. mira-lint: allow(panic-reachability)
    pub fn predict(&self, query: &[f64]) -> (f64, f64) {
        assert!(!self.x.is_empty(), "predict before fit");
        let n = self.x.len();
        let ks: Vec<f64> = self.x.iter().map(|xi| self.kernel(xi, query)).collect();
        let mean = self.y_mean
            + ks.iter()
                .zip(&self.alpha)
                .map(|(&k, &a)| k * a)
                .sum::<f64>();
        // v = L⁻¹ k* (forward substitution over the packed triangular
        // factor; index arithmetic is the clearest spelling here).
        #[allow(clippy::needless_range_loop)]
        let v = {
            let mut v = vec![0.0; n];
            for i in 0..n {
                let mut sum = ks[i];
                for p in 0..i {
                    sum -= self.chol[i * n + p] * v[p];
                }
                v[i] = sum / self.chol[i * n + i];
            }
            v
        };
        let var = (self.kernel(query, query) - v.iter().map(|x| x * x).sum::<f64>()).max(1e-12);
        (mean, var)
    }
}

/// Expected improvement of a point with posterior `(mean, var)` over the
/// incumbent best (for *maximization*).
#[must_use]
pub fn expected_improvement(mean: f64, var: f64, best: f64) -> f64 {
    let sigma = var.sqrt();
    if sigma < 1e-12 {
        return (mean - best).max(0.0);
    }
    let z = (mean - best) / sigma;
    (mean - best) * normal_cdf(z) + sigma * normal_pdf(z)
}

fn normal_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (std::f64::consts::TAU).sqrt()
}

fn normal_cdf(z: f64) -> f64 {
    // Abramowitz & Stegun 7.1.26 via erf approximation.
    let t = 1.0 / (1.0 + 0.2316419 * z.abs());
    let poly = t
        * (0.319381530
            + t * (-0.356563782 + t * (1.781477937 + t * (-1.821255978 + t * 1.330274429))));
    let tail = normal_pdf(z.abs()) * poly;
    if z >= 0.0 {
        1.0 - tail
    } else {
        tail
    }
}

/// Bayesian optimizer over a finite candidate set (e.g. layer-size
/// grids).
///
/// ```
/// use mira_nn::BayesianOptimizer;
///
/// // Maximize a concave score over widths.
/// let space: Vec<Vec<f64>> = (1..=24).map(|w| vec![w as f64]).collect();
/// let mut bo = BayesianOptimizer::new(space, 7);
/// let best = bo.optimize(|cfg| -(cfg[0] - 12.0).powi(2), 12);
/// assert!((best[0] - 12.0).abs() <= 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct BayesianOptimizer {
    space: Vec<Vec<f64>>,
    observed_x: Vec<Vec<f64>>,
    observed_y: Vec<f64>,
    rng: StdRng,
}

impl BayesianOptimizer {
    /// Creates an optimizer over a candidate space.
    ///
    /// # Panics
    ///
    /// Panics if the space is empty.
    #[must_use]
    pub fn new(space: Vec<Vec<f64>>, seed: u64) -> Self {
        assert!(!space.is_empty(), "empty search space");
        Self {
            space,
            observed_x: Vec::new(),
            observed_y: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Runs up to `budget` objective evaluations (maximization) and
    /// returns the best configuration found.
    pub fn optimize<F: FnMut(&[f64]) -> f64>(
        &mut self,
        mut objective: F,
        budget: usize,
    ) -> Vec<f64> {
        let budget = budget.min(self.space.len()).max(1);
        // Two random seeds points, then GP-guided.
        let n_init = 2.min(budget);
        for _ in 0..n_init {
            let cfg = self.pick_random_unobserved();
            let y = objective(&cfg);
            self.observed_x.push(cfg);
            self.observed_y.push(y);
        }
        while self.observed_x.len() < budget {
            let cfg = self.next_candidate();
            let y = objective(&cfg);
            self.observed_x.push(cfg);
            self.observed_y.push(y);
        }
        // The warm-up loops above guarantee at least one observation.
        let best_idx = self
            .observed_y
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map_or(0, |(i, _)| i);
        self.observed_x.get(best_idx).cloned().unwrap_or_default()
    }

    /// The `(configuration, score)` observations so far.
    #[must_use]
    pub fn observations(&self) -> Vec<(Vec<f64>, f64)> {
        self.observed_x
            .iter()
            .cloned()
            .zip(self.observed_y.iter().copied())
            .collect()
    }

    fn pick_random_unobserved(&mut self) -> Vec<f64> {
        loop {
            let idx = self.rng.random_range(0..self.space.len());
            let cfg = &self.space[idx];
            if !self.observed_x.contains(cfg) {
                return cfg.clone();
            }
        }
    }

    fn next_candidate(&mut self) -> Vec<f64> {
        let mut gp = GaussianProcess::new(2.0, 1.0, 1e-4);
        // Normalize y for GP conditioning.
        let ymax = self
            .observed_y
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let ymin = self
            .observed_y
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let scale = (ymax - ymin).max(1e-9);
        let ys: Vec<f64> = self.observed_y.iter().map(|y| (y - ymin) / scale).collect();
        gp.fit(&self.observed_x, &ys);
        let best = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);

        self.space
            .iter()
            .filter(|cfg| !self.observed_x.contains(cfg))
            .map(|cfg| {
                let (mean, var) = gp.predict(cfg);
                (cfg.clone(), expected_improvement(mean, var, best))
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map_or_else(|| self.pick_random_unobserved(), |(cfg, _)| cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gp_interpolates_observations() {
        let mut gp = GaussianProcess::new(1.0, 1.0, 1e-6);
        let x = vec![vec![0.0], vec![1.0], vec![2.0]];
        let y = vec![0.0, 1.0, 4.0];
        gp.fit(&x, &y);
        for (xi, yi) in x.iter().zip(&y) {
            let (mean, var) = gp.predict(xi);
            assert!((mean - yi).abs() < 1e-2, "at {xi:?}: {mean} vs {yi}");
            assert!(var < 0.01);
        }
    }

    #[test]
    fn gp_uncertainty_grows_away_from_data() {
        let mut gp = GaussianProcess::new(1.0, 1.0, 1e-6);
        gp.fit(&[vec![0.0]], &[1.0]);
        let (_, var_near) = gp.predict(&[0.1]);
        let (_, var_far) = gp.predict(&[5.0]);
        assert!(var_far > var_near * 10.0);
    }

    #[test]
    fn normal_cdf_sane() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-6);
        assert!(normal_cdf(3.0) > 0.995);
        assert!(normal_cdf(-3.0) < 0.005);
    }

    #[test]
    fn ei_zero_when_certainly_worse() {
        assert_eq!(expected_improvement(0.0, 0.0, 1.0), 0.0);
        assert!(expected_improvement(2.0, 1e-13, 1.0) > 0.9);
    }

    #[test]
    fn optimizer_finds_quadratic_peak() {
        let space: Vec<Vec<f64>> = (0..=30).map(|w| vec![f64::from(w)]).collect();
        let mut bo = BayesianOptimizer::new(space, 3);
        let best = bo.optimize(|cfg| -(cfg[0] - 17.0).powi(2), 14);
        assert!(
            (best[0] - 17.0).abs() <= 3.0,
            "best {best:?} (14 evals of 31 candidates)"
        );
        assert_eq!(bo.observations().len(), 14);
    }

    #[test]
    fn optimizer_beats_budget_exhaustion_gracefully() {
        let space: Vec<Vec<f64>> = (0..4).map(|w| vec![f64::from(w)]).collect();
        let mut bo = BayesianOptimizer::new(space, 1);
        // Budget larger than the space: evaluates everything.
        let best = bo.optimize(|cfg| cfg[0], 10);
        assert_eq!(best, vec![3.0]);
    }

    #[test]
    fn optimizer_on_2d_layer_grid() {
        // Mimic the paper's use: pick (layer1, layer2) sizes.
        let mut space = Vec::new();
        for a in [4, 8, 12, 16, 20] {
            for b in [3, 6, 9, 12] {
                space.push(vec![f64::from(a), f64::from(b)]);
            }
        }
        let mut bo = BayesianOptimizer::new(space, 5);
        // Peak at (12, 6) — the paper's chosen sizes.
        let best = bo.optimize(
            |cfg| -((cfg[0] - 12.0).powi(2) + (cfg[1] - 6.0).powi(2)),
            12,
        );
        let d = (best[0] - 12.0).abs() + (best[1] - 6.0).abs();
        assert!(d <= 7.0, "best {best:?}");
    }

    #[test]
    #[should_panic(expected = "empty search space")]
    fn empty_space_rejected() {
        let _ = BayesianOptimizer::new(vec![], 0);
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn predict_requires_fit() {
        let gp = GaussianProcess::new(1.0, 1.0, 1e-6);
        let _ = gp.predict(&[0.0]);
    }
}
