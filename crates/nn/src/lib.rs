//! From-scratch dense neural network, evaluation metrics, and Bayesian
//! hyper-parameter optimization.
//!
//! The paper's CMF predictor is a small binary classifier: a multi-layer
//! perceptron with three hidden layers (12, 12 and 6 neurons — sizes
//! chosen by Bayesian optimization), ReLU activations, a sigmoid output,
//! trained for 50 epochs on a 3 : 1 : 1 train/test/validation split and
//! evaluated with 5-fold cross validation. This crate implements that
//! entire stack with no external ML dependency:
//!
//! - [`network`] — [`Mlp`]: dense layers, forward/backward, training
//!   loop ([`TrainConfig`]).
//! - [`layer`] / [`activation`] — the building blocks, with He/Xavier
//!   initialization.
//! - [`optimizer`] — SGD with momentum and Adam.
//! - [`loss`] — binary cross-entropy and MSE.
//! - [`metrics`] — confusion-matrix metrics: accuracy, precision,
//!   recall, F1, false-positive rate.
//! - [`data`] — [`Dataset`]: shuffling, ratio splits, z-score
//!   standardization, k-fold cross validation.
//! - [`bayesopt`] — Gaussian-process Bayesian optimization (RBF kernel,
//!   expected improvement) over small discrete search spaces.
//!
//! # Example
//!
//! ```
//! use mira_nn::{Activation, Mlp, TrainConfig};
//!
//! // Learn XOR.
//! let x = vec![
//!     vec![0.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0], vec![1.0, 1.0],
//! ];
//! let y = vec![0.0, 1.0, 1.0, 0.0];
//! let mut net = Mlp::new(&[2, 8, 8, 1], Activation::Relu, Activation::Sigmoid, 7);
//! net.train(&x, &y, &TrainConfig { epochs: 800, ..TrainConfig::default() });
//! assert!(net.predict(&x[0]) < 0.5);
//! assert!(net.predict(&x[1]) > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activation;
pub mod bayesopt;
pub mod data;
pub mod layer;
pub mod loss;
pub mod metrics;
pub mod network;
pub mod optimizer;

pub use activation::Activation;
pub use bayesopt::{BayesianOptimizer, GaussianProcess};
pub use data::{Dataset, KFold, Standardizer};
pub use layer::Dense;
pub use loss::Loss;
pub use metrics::{roc_auc, BinaryMetrics};
pub use network::{Mlp, TrainConfig, TrainOutcome};
pub use optimizer::Optimizer;
