//! Dataset handling: splits, standardization, k-fold cross validation.

use mira_units::convert;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A labelled dataset: feature rows plus 0/1 targets.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    features: Vec<Vec<f64>>,
    labels: Vec<f64>,
}

impl Dataset {
    /// Creates a dataset.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or rows have inconsistent widths.
    #[must_use]
    pub fn new(features: Vec<Vec<f64>>, labels: Vec<f64>) -> Self {
        assert_eq!(
            features.len(),
            labels.len(),
            "feature/label length mismatch"
        );
        if let Some(first) = features.first() {
            let w = first.len();
            assert!(
                features.iter().all(|f| f.len() == w),
                "inconsistent feature widths"
            );
        }
        Self { features, labels }
    }

    /// Creates an empty dataset.
    #[must_use]
    pub fn empty() -> Self {
        Self::default()
    }

    /// Appends one example.
    ///
    /// # Panics
    ///
    /// Panics if the feature width differs from existing rows.
    pub fn push(&mut self, features: Vec<f64>, label: f64) {
        if let Some(first) = self.features.first() {
            assert_eq!(first.len(), features.len(), "inconsistent feature widths");
        }
        self.features.push(features);
        self.labels.push(label);
    }

    /// Number of examples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature width (0 when empty).
    #[must_use]
    pub fn width(&self) -> usize {
        self.features.first().map_or(0, Vec::len)
    }

    /// The feature rows.
    #[must_use]
    pub fn features(&self) -> &[Vec<f64>] {
        &self.features
    }

    /// The labels.
    #[must_use]
    pub fn labels(&self) -> &[f64] {
        &self.labels
    }

    /// Count of positive (label ≥ 0.5) examples.
    #[must_use]
    pub fn positives(&self) -> usize {
        self.labels.iter().filter(|&&l| l >= 0.5).count()
    }

    /// Returns a seeded shuffle of this dataset.
    #[must_use]
    pub fn shuffled(&self, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut order: Vec<usize> = (0..self.len()).collect();
        for i in (1..order.len()).rev() {
            let j = rng.random_range(0..=i);
            order.swap(i, j);
        }
        self.select(&order)
    }

    /// Builds a dataset from a subset of row indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    #[must_use]
    // Documented contract panic. mira-lint: allow(panic-reachability)
    pub fn select(&self, indices: &[usize]) -> Dataset {
        Dataset {
            features: indices.iter().map(|&i| self.features[i].clone()).collect(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
        }
    }

    /// Splits by ratios, e.g. `&[3.0, 1.0, 1.0]` for the paper's
    /// train : test : validation split. The final part absorbs rounding.
    ///
    /// # Panics
    ///
    /// Panics if `ratios` is empty or any ratio is non-positive.
    #[must_use]
    pub fn split(&self, ratios: &[f64]) -> Vec<Dataset> {
        assert!(!ratios.is_empty(), "need at least one ratio");
        assert!(ratios.iter().all(|&r| r > 0.0), "ratios must be positive");
        let total: f64 = ratios.iter().sum();
        let mut out = Vec::with_capacity(ratios.len());
        let mut start = 0usize;
        for (k, &r) in ratios.iter().enumerate() {
            let end = if k + 1 == ratios.len() {
                self.len()
            } else {
                start
                    + convert::usize_from_f64_round(
                        (r / total) * convert::f64_from_usize(self.len()),
                    )
            }
            .min(self.len());
            let idx: Vec<usize> = (start..end).collect();
            out.push(self.select(&idx));
            start = end;
        }
        out
    }
}

/// Z-score feature standardizer fitted on training data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Standardizer {
    /// Fits means and standard deviations per feature column.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset.
    #[must_use]
    pub fn fit(data: &Dataset) -> Self {
        assert!(!data.is_empty(), "cannot fit on empty dataset");
        let w = data.width();
        let n = convert::f64_from_usize(data.len());
        let mut means = vec![0.0; w];
        for row in data.features() {
            for (m, &x) in means.iter_mut().zip(row) {
                *m += x;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; w];
        for row in data.features() {
            for ((v, &m), &x) in vars.iter_mut().zip(&means).zip(row) {
                *v += (x - m) * (x - m);
            }
        }
        let stds = vars
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s < 1e-12 {
                    1.0
                } else {
                    s
                }
            })
            .collect();
        Self { means, stds }
    }

    /// Standardizes one feature row.
    #[must_use]
    pub fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(&x, (&m, &s))| (x - m) / s)
            .collect()
    }

    /// Standardizes a whole dataset.
    #[must_use]
    pub fn transform(&self, data: &Dataset) -> Dataset {
        Dataset {
            features: data
                .features()
                .iter()
                .map(|r| self.transform_row(r))
                .collect(),
            labels: data.labels().to_vec(),
        }
    }
}

/// K-fold cross-validation splitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KFold {
    k: usize,
    seed: u64,
}

impl KFold {
    /// Creates a `k`-fold splitter (the paper uses `k = 5`).
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`.
    #[must_use]
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k >= 2, "need at least two folds");
        Self { k, seed }
    }

    /// Produces `(train, test)` dataset pairs, one per fold.
    #[must_use]
    pub fn splits(&self, data: &Dataset) -> Vec<(Dataset, Dataset)> {
        let shuffled = data.shuffled(self.seed);
        let n = shuffled.len();
        let mut out = Vec::with_capacity(self.k);
        for fold in 0..self.k {
            let lo = n * fold / self.k;
            let hi = n * (fold + 1) / self.k;
            let test_idx: Vec<usize> = (lo..hi).collect();
            let train_idx: Vec<usize> = (0..lo).chain(hi..n).collect();
            out.push((shuffled.select(&train_idx), shuffled.select(&test_idx)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        let features = (0..n).map(|i| vec![i as f64, (i * 2) as f64]).collect();
        let labels = (0..n).map(|i| f64::from(u8::from(i % 2 == 0))).collect();
        Dataset::new(features, labels)
    }

    #[test]
    fn construction_and_accessors() {
        let d = toy(10);
        assert_eq!(d.len(), 10);
        assert_eq!(d.width(), 2);
        assert_eq!(d.positives(), 5);
        assert!(!d.is_empty());
    }

    #[test]
    #[should_panic(expected = "feature/label length mismatch")]
    fn mismatched_lengths_rejected() {
        let _ = Dataset::new(vec![vec![1.0]], vec![0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "inconsistent feature widths")]
    fn ragged_rows_rejected() {
        let _ = Dataset::new(vec![vec![1.0], vec![1.0, 2.0]], vec![0.0, 1.0]);
    }

    #[test]
    fn split_three_one_one() {
        let d = toy(100);
        let parts = d.split(&[3.0, 1.0, 1.0]);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].len(), 60);
        assert_eq!(parts[1].len(), 20);
        assert_eq!(parts[2].len(), 20);
        let total: usize = parts.iter().map(Dataset::len).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn shuffle_preserves_pairs() {
        let d = toy(50);
        let s = d.shuffled(9);
        assert_eq!(s.len(), 50);
        // Every (feature, label) pair must still be consistent:
        // label = 1 iff feature[0] is even.
        for (f, &l) in s.features().iter().zip(s.labels()) {
            let expected = f64::from(u8::from((f[0] as usize).is_multiple_of(2)));
            assert_eq!(l, expected);
        }
        // And it actually permutes.
        assert_ne!(s.features()[0..5], d.features()[0..5]);
    }

    #[test]
    fn standardizer_zero_mean_unit_variance() {
        let d = toy(200);
        let std = Standardizer::fit(&d);
        let t = std.transform(&d);
        for col in 0..t.width() {
            let vals: Vec<f64> = t.features().iter().map(|r| r[col]).collect();
            let mean: f64 = vals.iter().sum::<f64>() / vals.len() as f64;
            let var: f64 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64;
            assert!(mean.abs() < 1e-9, "col {col} mean {mean}");
            assert!((var - 1.0).abs() < 1e-9, "col {col} var {var}");
        }
    }

    #[test]
    fn standardizer_handles_constant_column() {
        let d = Dataset::new(vec![vec![5.0], vec![5.0], vec![5.0]], vec![0.0, 1.0, 0.0]);
        let std = Standardizer::fit(&d);
        let t = std.transform(&d);
        assert!(t.features().iter().all(|r| r[0] == 0.0));
    }

    #[test]
    fn kfold_covers_everything_once() {
        let d = toy(53);
        let folds = KFold::new(5, 1).splits(&d);
        assert_eq!(folds.len(), 5);
        let total_test: usize = folds.iter().map(|(_, te)| te.len()).sum();
        assert_eq!(total_test, 53);
        for (tr, te) in &folds {
            assert_eq!(tr.len() + te.len(), 53);
            assert!(te.len() >= 10);
        }
    }

    #[test]
    #[should_panic(expected = "need at least two folds")]
    fn kfold_rejects_k1() {
        let _ = KFold::new(1, 0);
    }

    #[test]
    fn push_grows_dataset() {
        let mut d = Dataset::empty();
        d.push(vec![1.0, 2.0], 1.0);
        d.push(vec![3.0, 4.0], 0.0);
        assert_eq!(d.len(), 2);
        assert_eq!(d.width(), 2);
    }
}
