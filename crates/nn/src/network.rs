//! The multi-layer perceptron and its training loop.

use mira_obs::{NoopSink, Sink};
use mira_units::convert;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::activation::Activation;
use crate::layer::{Dense, DenseGrads};
use crate::loss::Loss;
use crate::optimizer::{Optimizer, OptimizerState};

/// Metric keys emitted by [`Mlp::train_with_validation_observed`].
pub mod obs_keys {
    /// Epochs actually run.
    pub const EPOCHS: &str = "nn.epochs";
    /// Per-epoch mean training loss (gauge: mean over epochs).
    pub const TRAIN_LOSS: &str = "nn.train_loss";
    /// Per-epoch validation loss (gauge: mean over epochs).
    pub const VALIDATION_LOSS: &str = "nn.validation_loss";
    /// Runs that early stopping halted for lack of validation
    /// improvement.
    pub const EARLY_STOP_PATIENCE: &str = "nn.early_stop.patience";
    /// Runs that exhausted the configured epoch budget.
    pub const EARLY_STOP_EXHAUSTED: &str = "nn.early_stop.exhausted";
    /// The training-run span name (one span per call; its `steps` count
    /// epochs run).
    pub const TRAIN_SPAN: &str = "nn.train";
}

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set (the paper uses 50).
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Loss to minimize.
    pub loss: Loss,
    /// Update rule.
    pub optimizer: Optimizer,
    /// Shuffle seed.
    pub seed: u64,
    /// Early stopping: stop after this many epochs without validation
    /// improvement (only effective in
    /// [`Mlp::train_with_validation`]).
    pub patience: Option<usize>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 50,
            batch_size: 32,
            loss: Loss::BinaryCrossEntropy,
            optimizer: Optimizer::default(),
            seed: 0,
            patience: None,
        }
    }
}

/// Result of a validated training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainOutcome {
    /// Per-epoch mean training loss.
    pub train_loss: Vec<f64>,
    /// Per-epoch validation loss.
    pub validation_loss: Vec<f64>,
    /// Epochs actually run (≤ configured epochs when early stopping
    /// fires).
    pub epochs_run: usize,
}

/// A feed-forward multi-layer perceptron.
///
/// The paper's CMF predictor is `Mlp::new(&[n_features, 12, 12, 6, 1],
/// Relu, Sigmoid, seed)` — three hidden layers of 12, 12 and 6 neurons.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// Creates an MLP from layer widths: `[inputs, h1, …, outputs]`.
    ///
    /// Hidden layers use `hidden`; the final layer uses `output`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given or any width is zero.
    #[must_use]
    pub fn new(widths: &[usize], hidden: Activation, output: Activation, seed: u64) -> Self {
        assert!(widths.len() >= 2, "need at least input and output widths");
        let layers = widths
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                let act = if i + 2 == widths.len() {
                    output
                } else {
                    hidden
                };
                // windows(2) pairs have exactly two elements.
                // mira-lint: allow(panic-reachability)
                Dense::new(w[0], w[1], act, seed.wrapping_add(i as u64 * 7919))
            })
            .collect();
        Self { layers }
    }

    /// The layer stack.
    #[must_use]
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Number of input features.
    #[must_use]
    pub fn input_size(&self) -> usize {
        // The constructor guarantees at least one layer.
        self.layers.first().map_or(0, Dense::inputs)
    }

    /// Total trainable parameters.
    #[must_use]
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(Dense::parameter_count).sum()
    }

    /// Forward pass returning every layer's activated output (the last
    /// entry is the network output).
    #[must_use]
    pub fn forward_all(&self, input: &[f64]) -> Vec<Vec<f64>> {
        let mut outs = Vec::with_capacity(self.layers.len());
        let mut cur = input.to_vec();
        for layer in &self.layers {
            cur = layer.forward(&cur);
            outs.push(cur.clone());
        }
        outs
    }

    /// Network output for an input (first output unit for scalar heads).
    #[must_use]
    pub fn predict(&self, input: &[f64]) -> f64 {
        // The constructor guarantees at least one layer with at least
        // one output unit, so the fallback is unreachable.
        self.forward_all(input)
            .last()
            .and_then(|out| out.first())
            .copied()
            .unwrap_or(0.0)
    }

    /// Binary decision at threshold 0.5.
    #[must_use]
    pub fn classify(&self, input: &[f64]) -> bool {
        self.predict(input) >= 0.5
    }

    /// Mean loss over a dataset.
    #[must_use]
    pub fn evaluate(&self, x: &[Vec<f64>], y: &[f64], loss: Loss) -> f64 {
        let preds: Vec<f64> = x.iter().map(|xi| self.predict(xi)).collect();
        loss.mean(&preds, y)
    }

    /// Trains on `(x, y)` with a held-out validation set, early stopping
    /// when `config.patience` epochs pass without validation
    /// improvement. The best-validation weights are restored at the end.
    ///
    /// With an empty validation set this degenerates to plain training.
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as [`Mlp::train`].
    pub fn train_with_validation(
        &mut self,
        x: &[Vec<f64>],
        y: &[f64],
        val_x: &[Vec<f64>],
        val_y: &[f64],
        config: &TrainConfig,
    ) -> TrainOutcome {
        self.train_with_validation_observed(x, y, val_x, val_y, config, &mut NoopSink)
    }

    /// [`Mlp::train_with_validation`] with an instrumentation sink:
    /// counts epochs, samples the loss curves, tallies the run as an
    /// [`obs_keys::TRAIN_SPAN`] span whose `steps` are epochs run, and
    /// records why training stopped ([`obs_keys::EARLY_STOP_PATIENCE`]
    /// vs [`obs_keys::EARLY_STOP_EXHAUSTED`]). With a [`NoopSink`]
    /// every hook inlines to nothing.
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as [`Mlp::train`].
    pub fn train_with_validation_observed<S: Sink>(
        &mut self,
        x: &[Vec<f64>],
        y: &[f64],
        val_x: &[Vec<f64>],
        val_y: &[f64],
        config: &TrainConfig,
        sink: &mut S,
    ) -> TrainOutcome {
        let mut train_loss = Vec::new();
        let mut validation_loss = Vec::new();
        let mut best: Option<(f64, Vec<Dense>)> = None;
        let mut stale = 0usize;
        let mut epochs_run = 0usize;
        let mut halted = false;
        sink.span_begin(obs_keys::TRAIN_SPAN, 0);

        // Run epoch-by-epoch so validation can interrupt; each call to
        // `train` below does exactly one epoch with continued state via
        // the epoch seed.
        let mut session = TrainSession::new(self, config);
        for _ in 0..config.epochs {
            let loss = session.run_epoch(x, y, config);
            train_loss.push(loss);
            epochs_run += 1;
            sink.add(obs_keys::EPOCHS, 1);
            sink.gauge(obs_keys::TRAIN_LOSS, loss);

            if !val_x.is_empty() {
                let vl = session.network().evaluate(val_x, val_y, config.loss);
                validation_loss.push(vl);
                sink.gauge(obs_keys::VALIDATION_LOSS, vl);
                let improved = best.as_ref().is_none_or(|(b, _)| vl < *b);
                if improved {
                    best = Some((vl, session.network().layers.clone()));
                    stale = 0;
                } else {
                    stale += 1;
                    if config.patience.is_some_and(|p| stale >= p) {
                        halted = true;
                        break;
                    }
                }
            }
        }
        if halted {
            sink.add(obs_keys::EARLY_STOP_PATIENCE, 1);
        } else {
            sink.add(obs_keys::EARLY_STOP_EXHAUSTED, 1);
        }
        sink.span_end(obs_keys::TRAIN_SPAN, convert::u64_from_usize(epochs_run));
        if let Some((_, layers)) = best {
            self.layers = layers;
        }
        TrainOutcome {
            train_loss,
            validation_loss,
            epochs_run,
        }
    }

    /// Trains on `(x, y)` and returns the per-epoch mean training loss.
    ///
    /// # Panics
    ///
    /// Panics if `x` and `y` differ in length, are empty, or any feature
    /// vector has the wrong width.
    pub fn train(&mut self, x: &[Vec<f64>], y: &[f64], config: &TrainConfig) -> Vec<f64> {
        let mut session = TrainSession::new(self, config);
        (0..config.epochs)
            .map(|_| session.run_epoch(x, y, config))
            .collect()
    }
}

/// Incremental training state (shuffle RNG + per-layer optimizer
/// moments), so callers can interleave epochs with validation.
struct TrainSession<'a> {
    network: &'a mut Mlp,
    rng: StdRng,
    wstates: Vec<OptimizerState>,
    bstates: Vec<OptimizerState>,
}

impl<'a> TrainSession<'a> {
    fn new(network: &'a mut Mlp, config: &TrainConfig) -> Self {
        let wstates = network
            .layers
            .iter()
            .map(|l| OptimizerState::new(l.weights().len()))
            .collect();
        let bstates = network
            .layers
            .iter()
            .map(|l| OptimizerState::new(l.biases().len()))
            .collect();
        Self {
            network,
            rng: StdRng::seed_from_u64(config.seed ^ 0x7EAC_4E55),
            wstates,
            bstates,
        }
    }

    fn network(&self) -> &Mlp {
        self.network
    }

    /// Runs one shuffled epoch; returns the mean training loss.
    // Row indices are a permutation of 0..x.len() (asserted non-empty);
    // layer indices stay below the per-layer state vectors built in
    // `new`. mira-lint: allow(panic-reachability)
    fn run_epoch(&mut self, x: &[Vec<f64>], y: &[f64], config: &TrainConfig) -> f64 {
        assert_eq!(x.len(), y.len(), "x/y length mismatch");
        assert!(!x.is_empty(), "empty training set");
        for xi in x {
            assert_eq!(
                xi.len(),
                self.network.input_size(),
                "feature width mismatch"
            );
        }

        // Fisher-Yates shuffle.
        let mut order: Vec<usize> = (0..x.len()).collect();
        for i in (1..order.len()).rev() {
            let j = self.rng.random_range(0..=i);
            order.swap(i, j);
        }

        let net = &mut *self.network;
        let mut epoch_loss = 0.0;
        for batch in order.chunks(config.batch_size.max(1)) {
            let mut grads: Vec<DenseGrads> = net.layers.iter().map(Dense::zero_grads).collect();
            for &idx in batch {
                let outs = net.forward_all(&x[idx]);
                // Same non-empty-network guarantee as `predict`.
                let pred = outs.last().and_then(|o| o.first()).copied().unwrap_or(0.0);
                epoch_loss += config.loss.value(pred, y[idx]);
                let mut grad = vec![config.loss.gradient(pred, y[idx])];
                // Wider heads would need a vector loss; scalar here.
                for li in (0..net.layers.len()).rev() {
                    let input = if li == 0 { &x[idx] } else { &outs[li - 1] };
                    grad = net.layers[li].backward(input, &outs[li], &grad, &mut grads[li]);
                }
            }
            let scale = 1.0 / convert::f64_from_usize(batch.len());
            for (li, g) in grads.iter_mut().enumerate() {
                g.scale(scale);
                let wstep = self.wstates[li].step(config.optimizer, &g.weights);
                let bstep = self.bstates[li].step(config.optimizer, &g.biases);
                net.layers[li].apply_update(&wstep, &bstep);
            }
        }
        epoch_loss / convert::f64_from_usize(x.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        (
            vec![
                vec![0.0, 0.0],
                vec![0.0, 1.0],
                vec![1.0, 0.0],
                vec![1.0, 1.0],
            ],
            vec![0.0, 1.0, 1.0, 0.0],
        )
    }

    #[test]
    fn learns_xor() {
        let (x, y) = xor_data();
        let mut net = Mlp::new(&[2, 8, 8, 1], Activation::Relu, Activation::Sigmoid, 3);
        let history = net.train(
            &x,
            &y,
            &TrainConfig {
                epochs: 900,
                batch_size: 4,
                ..TrainConfig::default()
            },
        );
        assert!(history.last().unwrap() < &0.1, "loss {:?}", history.last());
        assert!(!net.classify(&x[0]));
        assert!(net.classify(&x[1]));
        assert!(net.classify(&x[2]));
        assert!(!net.classify(&x[3]));
    }

    #[test]
    fn loss_decreases_during_training() {
        let (x, y) = xor_data();
        let mut net = Mlp::new(&[2, 6, 1], Activation::Tanh, Activation::Sigmoid, 5);
        let history = net.train(
            &x,
            &y,
            &TrainConfig {
                epochs: 200,
                batch_size: 4,
                ..TrainConfig::default()
            },
        );
        assert!(history.last().unwrap() < &history[0]);
    }

    #[test]
    fn paper_architecture_builds() {
        let net = Mlp::new(
            &[36, 12, 12, 6, 1],
            Activation::Relu,
            Activation::Sigmoid,
            1,
        );
        assert_eq!(net.layers().len(), 4);
        assert_eq!(net.input_size(), 36);
        assert_eq!(
            net.parameter_count(),
            36 * 12 + 12 + 12 * 12 + 12 + 12 * 6 + 6 + 6 + 1
        );
        assert_eq!(net.layers()[0].activation(), Activation::Relu);
        assert_eq!(net.layers()[3].activation(), Activation::Sigmoid);
    }

    #[test]
    fn sigmoid_head_outputs_probabilities() {
        let net = Mlp::new(&[4, 5, 1], Activation::Relu, Activation::Sigmoid, 2);
        for k in 0..20 {
            let x = vec![k as f64, -k as f64, 0.5, 1.0];
            let p = net.predict(&x);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let (x, y) = xor_data();
        let cfg = TrainConfig {
            epochs: 50,
            ..TrainConfig::default()
        };
        let mut a = Mlp::new(&[2, 4, 1], Activation::Relu, Activation::Sigmoid, 7);
        let mut b = Mlp::new(&[2, 4, 1], Activation::Relu, Activation::Sigmoid, 7);
        a.train(&x, &y, &cfg);
        b.train(&x, &y, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn early_stopping_halts_and_restores_best() {
        let (x, y) = xor_data();
        // Validation deliberately contradicts training (labels flipped),
        // so validation loss rises as training fits — early stopping
        // must halt well before the epoch budget.
        let vy: Vec<f64> = y.iter().map(|l| 1.0 - l).collect();
        let mut net = Mlp::new(&[2, 8, 1], Activation::Tanh, Activation::Sigmoid, 11);
        let outcome = net.train_with_validation(
            &x,
            &y,
            &x,
            &vy,
            &TrainConfig {
                epochs: 500,
                batch_size: 4,
                patience: Some(5),
                ..TrainConfig::default()
            },
        );
        assert!(
            outcome.epochs_run < 500,
            "ran {} epochs",
            outcome.epochs_run
        );
        assert_eq!(outcome.validation_loss.len(), outcome.epochs_run);
        // Restored weights are the best-validation ones: evaluating on
        // the flipped labels matches the minimum recorded loss.
        let restored = net.evaluate(&x, &vy, Loss::BinaryCrossEntropy);
        let best = outcome
            .validation_loss
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        assert!((restored - best).abs() < 1e-9, "{restored} vs best {best}");
    }

    #[test]
    fn validated_training_without_patience_runs_all_epochs() {
        let (x, y) = xor_data();
        let mut net = Mlp::new(&[2, 6, 1], Activation::Relu, Activation::Sigmoid, 3);
        let outcome = net.train_with_validation(
            &x,
            &y,
            &x,
            &y,
            &TrainConfig {
                epochs: 40,
                batch_size: 4,
                ..TrainConfig::default()
            },
        );
        assert_eq!(outcome.epochs_run, 40);
        assert_eq!(outcome.train_loss.len(), 40);
    }

    #[test]
    fn empty_validation_degenerates_to_plain_training() {
        let (x, y) = xor_data();
        let cfg = TrainConfig {
            epochs: 30,
            batch_size: 4,
            ..TrainConfig::default()
        };
        let mut a = Mlp::new(&[2, 4, 1], Activation::Relu, Activation::Sigmoid, 7);
        let mut b = a.clone();
        let plain = a.train(&x, &y, &cfg);
        let outcome = b.train_with_validation(&x, &y, &[], &[], &cfg);
        assert_eq!(a, b, "identical weights");
        assert_eq!(plain, outcome.train_loss);
        assert!(outcome.validation_loss.is_empty());
    }

    #[test]
    fn observed_training_reports_epochs_losses_and_stop_reason() {
        use mira_obs::{Collector, ManualClock};

        let (x, y) = xor_data();
        let vy: Vec<f64> = y.iter().map(|l| 1.0 - l).collect();
        let cfg = TrainConfig {
            epochs: 500,
            batch_size: 4,
            patience: Some(5),
            ..TrainConfig::default()
        };

        // Instrumentation must not perturb training.
        let mut plain = Mlp::new(&[2, 8, 1], Activation::Tanh, Activation::Sigmoid, 11);
        let mut observed = plain.clone();
        let expected = plain.train_with_validation(&x, &y, &x, &vy, &cfg);
        let mut sink = Collector::with_clock(ManualClock::new());
        let outcome = observed.train_with_validation_observed(&x, &y, &x, &vy, &cfg, &mut sink);
        assert_eq!(plain, observed);
        assert_eq!(expected, outcome);

        let report = sink.into_report();
        let epochs = u64::try_from(outcome.epochs_run).expect("small");
        assert_eq!(report.metrics.counter(obs_keys::EPOCHS), Some(epochs));
        assert_eq!(
            report.metrics.counter(obs_keys::EARLY_STOP_PATIENCE),
            Some(1),
            "flipped validation labels force the patience stop"
        );
        assert_eq!(report.metrics.counter(obs_keys::EARLY_STOP_EXHAUSTED), None);
        let (n, mean) = report
            .metrics
            .gauge_stats(obs_keys::TRAIN_LOSS)
            .expect("gauge");
        assert_eq!(n, epochs);
        let hand_mean = outcome.train_loss.iter().sum::<f64>()
            / convert::f64_from_usize(outcome.train_loss.len());
        assert!((mean - hand_mean).abs() < 1e-12);
        assert_eq!(
            report.spans[obs_keys::TRAIN_SPAN],
            mira_obs::SpanStats {
                count: 1,
                steps: epochs
            }
        );
    }

    #[test]
    fn exhausted_budget_is_reported_as_such() {
        use mira_obs::{Collector, ManualClock};

        let (x, y) = xor_data();
        let cfg = TrainConfig {
            epochs: 20,
            batch_size: 4,
            ..TrainConfig::default()
        };
        let mut net = Mlp::new(&[2, 4, 1], Activation::Relu, Activation::Sigmoid, 3);
        let mut sink = Collector::with_clock(ManualClock::new());
        let outcome = net.train_with_validation_observed(&x, &y, &x, &y, &cfg, &mut sink);
        assert_eq!(outcome.epochs_run, 20);
        let report = sink.into_report();
        assert_eq!(
            report.metrics.counter(obs_keys::EARLY_STOP_EXHAUSTED),
            Some(1)
        );
        assert_eq!(report.metrics.counter(obs_keys::EARLY_STOP_PATIENCE), None);
    }

    #[test]
    #[should_panic(expected = "x/y length mismatch")]
    fn train_rejects_mismatch() {
        let mut net = Mlp::new(&[2, 2, 1], Activation::Relu, Activation::Sigmoid, 0);
        let _ = net.train(&[vec![0.0, 0.0]], &[0.0, 1.0], &TrainConfig::default());
    }

    #[test]
    #[should_panic(expected = "need at least input and output widths")]
    fn too_few_widths_rejected() {
        let _ = Mlp::new(&[3], Activation::Relu, Activation::Sigmoid, 0);
    }
}
