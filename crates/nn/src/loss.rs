//! Loss functions.

use mira_units::convert;
use serde::{Deserialize, Serialize};

/// A scalar loss over predictions and targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Loss {
    /// Binary cross-entropy (targets in {0, 1}, predictions in (0, 1)).
    BinaryCrossEntropy,
    /// Mean squared error.
    MeanSquaredError,
}

impl Loss {
    /// Loss for a single (prediction, target) pair.
    #[must_use]
    pub fn value(self, prediction: f64, target: f64) -> f64 {
        match self {
            Loss::BinaryCrossEntropy => {
                let p = prediction.clamp(1e-12, 1.0 - 1e-12);
                -(target * p.ln() + (1.0 - target) * (1.0 - p).ln())
            }
            Loss::MeanSquaredError => {
                let d = prediction - target;
                d * d
            }
        }
    }

    /// ∂loss/∂prediction for a single pair.
    #[must_use]
    pub fn gradient(self, prediction: f64, target: f64) -> f64 {
        match self {
            Loss::BinaryCrossEntropy => {
                let p = prediction.clamp(1e-12, 1.0 - 1e-12);
                (p - target) / (p * (1.0 - p))
            }
            Loss::MeanSquaredError => 2.0 * (prediction - target),
        }
    }

    /// Mean loss over a batch.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or are empty.
    #[must_use]
    pub fn mean(self, predictions: &[f64], targets: &[f64]) -> f64 {
        assert_eq!(predictions.len(), targets.len(), "length mismatch");
        assert!(!predictions.is_empty(), "empty batch");
        predictions
            .iter()
            .zip(targets)
            .map(|(&p, &t)| self.value(p, t))
            .sum::<f64>()
            / convert::f64_from_usize(predictions.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bce_is_zero_on_perfect_prediction() {
        let l = Loss::BinaryCrossEntropy;
        assert!(l.value(1.0, 1.0) < 1e-9);
        assert!(l.value(0.0, 0.0) < 1e-9);
        assert!(l.value(0.01, 1.0) > 4.0);
    }

    #[test]
    fn mse_quadratic() {
        let l = Loss::MeanSquaredError;
        assert_eq!(l.value(3.0, 1.0), 4.0);
        assert_eq!(l.gradient(3.0, 1.0), 4.0);
    }

    #[test]
    fn gradients_match_finite_difference() {
        let eps = 1e-7;
        for loss in [Loss::BinaryCrossEntropy, Loss::MeanSquaredError] {
            for &(p, t) in &[(0.3, 1.0), (0.7, 0.0), (0.5, 0.5)] {
                let numeric = (loss.value(p + eps, t) - loss.value(p - eps, t)) / (2.0 * eps);
                assert!(
                    (numeric - loss.gradient(p, t)).abs() < 1e-4,
                    "{loss:?} at ({p}, {t})"
                );
            }
        }
    }

    #[test]
    fn mean_averages() {
        let l = Loss::MeanSquaredError;
        assert_eq!(l.mean(&[1.0, 3.0], &[0.0, 0.0]), 5.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mean_rejects_mismatch() {
        let _ = Loss::MeanSquaredError.mean(&[1.0], &[1.0, 2.0]);
    }

    proptest! {
        #[test]
        fn bce_non_negative(p in 0.0f64..1.0, t in 0.0f64..1.0) {
            prop_assert!(Loss::BinaryCrossEntropy.value(p, t) >= 0.0);
        }
    }
}
