//! Binary-classification metrics.
//!
//! The paper evaluates its CMF predictor with accuracy, precision,
//! recall and F1 (Fig. 13), and reports the false-positive rate
//! separately (6 % at six hours of lead time, 1.2 % at 30 minutes)
//! because false alarms trigger expensive whole-rack precautions.

use std::fmt;

use mira_units::convert;

use serde::{Deserialize, Serialize};

/// Confusion-matrix counts and the metrics derived from them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinaryMetrics {
    /// True positives.
    pub tp: u64,
    /// True negatives.
    pub tn: u64,
    /// False positives.
    pub fp: u64,
    /// False negatives.
    pub fn_: u64,
}

impl BinaryMetrics {
    /// Creates empty counts.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds metrics from predicted probabilities and 0/1 targets at a
    /// 0.5 threshold.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    #[must_use]
    pub fn from_predictions(probabilities: &[f64], targets: &[f64]) -> Self {
        Self::from_predictions_at(probabilities, targets, 0.5)
    }

    /// Builds metrics at an explicit decision threshold.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    #[must_use]
    pub fn from_predictions_at(probabilities: &[f64], targets: &[f64], threshold: f64) -> Self {
        assert_eq!(probabilities.len(), targets.len(), "length mismatch");
        let mut m = Self::new();
        for (&p, &t) in probabilities.iter().zip(targets) {
            m.record(p >= threshold, t >= 0.5);
        }
        m
    }

    /// Records one (predicted, actual) outcome.
    pub fn record(&mut self, predicted: bool, actual: bool) {
        match (predicted, actual) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, true) => self.fn_ += 1,
            (false, false) => self.tn += 1,
        }
    }

    /// Merges another count set into this one.
    pub fn merge(&mut self, other: &BinaryMetrics) {
        self.tp += other.tp;
        self.tn += other.tn;
        self.fp += other.fp;
        self.fn_ += other.fn_;
    }

    /// Total observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.tp + self.tn + self.fp + self.fn_
    }

    /// Correct predictions over total.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.total())
    }

    /// Correct positive predictions over all positive predictions.
    #[must_use]
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// Correct positive predictions over all actual positives.
    #[must_use]
    pub fn recall(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// Harmonic mean of precision and recall.
    #[must_use]
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        // Exact-zero divide guard. mira-lint: allow(nan-unsafe-compare)
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// False positives over all actual negatives — the paper's headline
    /// operational concern.
    #[must_use]
    pub fn false_positive_rate(&self) -> f64 {
        ratio(self.fp, self.fp + self.tn)
    }
}

/// Area under the ROC curve for scored predictions (probability that a
/// random positive outscores a random negative; ties count half).
///
/// Threshold-free companion to [`BinaryMetrics`]: two predictors with
/// the same 0.5-threshold accuracy can rank very differently. Returns
/// `None` if either class is absent.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[must_use]
pub fn roc_auc(scores: &[f64], targets: &[f64]) -> Option<f64> {
    assert_eq!(scores.len(), targets.len(), "length mismatch");
    // Rank-sum (Mann-Whitney) formulation with midranks for ties.
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    let mut rank_sum_pos = 0.0;
    let mut n_pos = 0u64;
    let mut n_neg = 0u64;
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && scores[idx[j + 1]] == scores[idx[i]] {
            j += 1;
        }
        let midrank = convert::f64_from_usize(i + j) / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            if targets[k] >= 0.5 {
                rank_sum_pos += midrank;
                n_pos += 1;
            } else {
                n_neg += 1;
            }
        }
        i = j + 1;
    }
    if n_pos == 0 || n_neg == 0 {
        return None;
    }
    let u = rank_sum_pos - convert::f64_from_u64(n_pos * (n_pos + 1)) / 2.0;
    Some(u / (convert::f64_from_u64(n_pos) * convert::f64_from_u64(n_neg)))
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        convert::f64_from_u64(num) / convert::f64_from_u64(den)
    }
}

impl fmt::Display for BinaryMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "acc {:.3} prec {:.3} rec {:.3} f1 {:.3} fpr {:.3}",
            self.accuracy(),
            self.precision(),
            self.recall(),
            self.f1(),
            self.false_positive_rate()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_classifier() {
        let m = BinaryMetrics::from_predictions(&[0.9, 0.1, 0.8, 0.2], &[1.0, 0.0, 1.0, 0.0]);
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
        assert_eq!(m.f1(), 1.0);
        assert_eq!(m.false_positive_rate(), 0.0);
    }

    #[test]
    fn always_positive_classifier() {
        let m = BinaryMetrics::from_predictions(&[0.9, 0.9, 0.9, 0.9], &[1.0, 0.0, 1.0, 0.0]);
        assert_eq!(m.recall(), 1.0);
        assert_eq!(m.precision(), 0.5);
        assert_eq!(m.false_positive_rate(), 1.0);
        assert_eq!(m.accuracy(), 0.5);
    }

    #[test]
    fn known_confusion_matrix() {
        let m = BinaryMetrics {
            tp: 8,
            tn: 9,
            fp: 1,
            fn_: 2,
        };
        assert!((m.accuracy() - 0.85).abs() < 1e-12);
        assert!((m.precision() - 8.0 / 9.0).abs() < 1e-12);
        assert!((m.recall() - 0.8).abs() < 1e-12);
        assert!((m.false_positive_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = BinaryMetrics::new();
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.f1(), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = BinaryMetrics {
            tp: 1,
            tn: 2,
            fp: 3,
            fn_: 4,
        };
        a.merge(&a.clone());
        assert_eq!(a.total(), 20);
        assert_eq!(a.tp, 2);
    }

    #[test]
    fn threshold_shifts_tradeoff() {
        let probs = [0.3, 0.4, 0.6, 0.7];
        let targets = [0.0, 1.0, 0.0, 1.0];
        let strict = BinaryMetrics::from_predictions_at(&probs, &targets, 0.65);
        let lax = BinaryMetrics::from_predictions_at(&probs, &targets, 0.35);
        assert!(strict.false_positive_rate() <= lax.false_positive_rate());
        assert!(strict.recall() <= lax.recall());
    }

    #[test]
    fn display_is_complete() {
        let m = BinaryMetrics {
            tp: 1,
            tn: 1,
            fp: 1,
            fn_: 1,
        };
        let s = m.to_string();
        assert!(s.contains("acc") && s.contains("fpr"));
    }

    #[test]
    fn auc_perfect_random_and_inverted() {
        let targets = [1.0, 1.0, 0.0, 0.0];
        assert_eq!(roc_auc(&[0.9, 0.8, 0.2, 0.1], &targets), Some(1.0));
        assert_eq!(roc_auc(&[0.1, 0.2, 0.8, 0.9], &targets), Some(0.0));
        // All-tied scores: AUC exactly one half.
        assert_eq!(roc_auc(&[0.5, 0.5, 0.5, 0.5], &targets), Some(0.5));
    }

    #[test]
    fn auc_handles_partial_ties() {
        // One positive tied with one negative at 0.5.
        let auc = roc_auc(&[0.9, 0.5, 0.5, 0.1], &[1.0, 1.0, 0.0, 0.0]).unwrap();
        assert!((auc - 0.875).abs() < 1e-12, "auc {auc}");
    }

    #[test]
    fn auc_none_for_single_class() {
        assert_eq!(roc_auc(&[0.4, 0.6], &[1.0, 1.0]), None);
        assert_eq!(roc_auc(&[], &[]), None);
    }

    proptest! {
        #[test]
        fn auc_is_complement_under_score_negation(
            scores in proptest::collection::vec(0.0f64..1.0, 4..40),
        ) {
            let targets: Vec<f64> = (0..scores.len())
                .map(|i| f64::from(u8::from(i % 2 == 0)))
                .collect();
            let neg: Vec<f64> = scores.iter().map(|s| 1.0 - s).collect();
            if let (Some(a), Some(b)) = (roc_auc(&scores, &targets), roc_auc(&neg, &targets)) {
                prop_assert!((a + b - 1.0).abs() < 1e-9);
            }
        }
    }

    proptest! {
        #[test]
        fn metrics_in_unit_interval(tp in 0u64..100, tn in 0u64..100, fp in 0u64..100, fn_ in 0u64..100) {
            let m = BinaryMetrics { tp, tn, fp, fn_ };
            for v in [m.accuracy(), m.precision(), m.recall(), m.f1(), m.false_positive_rate()] {
                prop_assert!((0.0..=1.0).contains(&v));
            }
        }

        #[test]
        fn f1_between_precision_and_recall(tp in 1u64..100, tn in 0u64..100, fp in 0u64..100, fn_ in 0u64..100) {
            let m = BinaryMetrics { tp, tn, fp, fn_ };
            let lo = m.precision().min(m.recall());
            let hi = m.precision().max(m.recall());
            prop_assert!(m.f1() >= lo - 1e-12 && m.f1() <= hi + 1e-12);
        }
    }
}
