//! Fully-connected layers.

use mira_units::convert;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::activation::Activation;

/// A dense (fully-connected) layer with an activation.
///
/// Weights are stored row-major: `weights[o * inputs + i]` connects input
/// `i` to output `o`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dense {
    inputs: usize,
    outputs: usize,
    weights: Vec<f64>,
    biases: Vec<f64>,
    activation: Activation,
}

impl Dense {
    /// Creates a layer with He initialization (appropriate for ReLU;
    /// close enough to Xavier for the small sigmoid head).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` or `outputs` is zero.
    #[must_use]
    pub fn new(inputs: usize, outputs: usize, activation: Activation, seed: u64) -> Self {
        assert!(inputs > 0, "layer needs at least one input");
        assert!(outputs > 0, "layer needs at least one output");
        let mut rng = StdRng::seed_from_u64(seed);
        let scale = (2.0 / convert::f64_from_usize(inputs)).sqrt();
        let weights = (0..inputs * outputs)
            .map(|_| gaussian(&mut rng) * scale)
            .collect();
        Self {
            inputs,
            outputs,
            weights,
            biases: vec![0.0; outputs],
            activation,
        }
    }

    /// Number of inputs.
    #[must_use]
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Number of outputs.
    #[must_use]
    pub fn outputs(&self) -> usize {
        self.outputs
    }

    /// The layer's activation.
    #[must_use]
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Number of trainable parameters.
    #[must_use]
    pub fn parameter_count(&self) -> usize {
        self.weights.len() + self.biases.len()
    }

    /// Forward pass: returns the activated outputs.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.inputs()`.
    #[must_use]
    #[allow(clippy::needless_range_loop)] // row-major weight indexing
                                          // weights.len() == outputs * inputs and out.len() == outputs by
                                          // construction. mira-lint: allow(panic-reachability)
    pub fn forward(&self, input: &[f64]) -> Vec<f64> {
        assert_eq!(input.len(), self.inputs, "input size mismatch");
        let mut out = self.biases.clone();
        for o in 0..self.outputs {
            let row = &self.weights[o * self.inputs..(o + 1) * self.inputs];
            let mut acc = 0.0;
            for (w, x) in row.iter().zip(input) {
                acc += w * x;
            }
            out[o] += acc;
        }
        self.activation.apply_slice(&mut out);
        out
    }

    /// Backward pass.
    ///
    /// Given this layer's cached `input` and `output` (from forward) and
    /// `grad_out` = ∂L/∂(activated output), accumulates parameter
    /// gradients into `grads` and returns ∂L/∂input.
    #[must_use]
    // Row-major index arithmetic stays inside the outputs × inputs
    // weight block, as in `forward`. mira-lint: allow(panic-reachability)
    pub fn backward(
        &self,
        input: &[f64],
        output: &[f64],
        grad_out: &[f64],
        grads: &mut DenseGrads,
    ) -> Vec<f64> {
        let mut grad_in = vec![0.0; self.inputs];
        for o in 0..self.outputs {
            // δ = ∂L/∂pre-activation.
            let delta = grad_out[o] * self.activation.derivative_from_output(output[o]);
            grads.biases[o] += delta;
            let row = &self.weights[o * self.inputs..(o + 1) * self.inputs];
            let grow = &mut grads.weights[o * self.inputs..(o + 1) * self.inputs];
            for i in 0..self.inputs {
                grow[i] += delta * input[i];
                grad_in[i] += delta * row[i];
            }
        }
        grad_in
    }

    /// Applies a parameter update: `w -= step[k]` element-wise (the
    /// optimizer computes the steps).
    pub fn apply_update(&mut self, weight_step: &[f64], bias_step: &[f64]) {
        for (w, s) in self.weights.iter_mut().zip(weight_step) {
            *w -= s;
        }
        for (b, s) in self.biases.iter_mut().zip(bias_step) {
            *b -= s;
        }
    }

    /// Read-only view of the weights (row-major).
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Read-only view of the biases.
    #[must_use]
    pub fn biases(&self) -> &[f64] {
        &self.biases
    }

    /// Creates a zeroed gradient buffer shaped like this layer.
    #[must_use]
    pub fn zero_grads(&self) -> DenseGrads {
        DenseGrads {
            weights: vec![0.0; self.weights.len()],
            biases: vec![0.0; self.biases.len()],
        }
    }
}

/// Gradient accumulation buffer for one [`Dense`] layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseGrads {
    /// ∂L/∂weights, row-major like the layer.
    pub weights: Vec<f64>,
    /// ∂L/∂biases.
    pub biases: Vec<f64>,
}

impl DenseGrads {
    /// Scales all gradients (e.g. by 1/batch-size).
    pub fn scale(&mut self, k: f64) {
        for w in &mut self.weights {
            *w *= k;
        }
        for b in &mut self.biases {
            *b *= k;
        }
    }

    /// Resets all gradients to zero.
    pub fn zero(&mut self) {
        self.weights.fill(0.0);
        self.biases.fill(0.0);
    }
}

fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_computes_affine_plus_activation() {
        let mut layer = Dense::new(2, 1, Activation::Identity, 0);
        // Overwrite with known weights.
        layer.weights = vec![2.0, -1.0];
        layer.biases = vec![0.5];
        assert_eq!(layer.forward(&[3.0, 4.0]), vec![2.0 * 3.0 - 4.0 + 0.5]);
    }

    #[test]
    fn relu_forward_clamps() {
        let mut layer = Dense::new(1, 1, Activation::Relu, 0);
        layer.weights = vec![1.0];
        layer.biases = vec![-5.0];
        assert_eq!(layer.forward(&[1.0]), vec![0.0]);
    }

    #[test]
    fn backward_matches_finite_difference() {
        let layer = Dense::new(3, 2, Activation::Tanh, 42);
        let input = [0.3, -0.7, 1.1];
        // L = sum of outputs, so grad_out = 1s.
        let loss = |l: &Dense| l.forward(&input).iter().sum::<f64>();

        let output = layer.forward(&input);
        let mut grads = layer.zero_grads();
        let grad_in = layer.backward(&input, &output, &[1.0, 1.0], &mut grads);

        let eps = 1e-6;
        // Check a few weight gradients.
        for k in [0usize, 2, 5] {
            let mut plus = layer.clone();
            plus.weights[k] += eps;
            let mut minus = layer.clone();
            minus.weights[k] -= eps;
            let numeric = (loss(&plus) - loss(&minus)) / (2.0 * eps);
            assert!(
                (numeric - grads.weights[k]).abs() < 1e-5,
                "weight {k}: {numeric} vs {}",
                grads.weights[k]
            );
        }
        // Check input gradient.
        for i in 0..3 {
            let mut xp = input;
            xp[i] += eps;
            let mut xm = input;
            xm[i] -= eps;
            let numeric = (layer.forward(&xp).iter().sum::<f64>()
                - layer.forward(&xm).iter().sum::<f64>())
                / (2.0 * eps);
            assert!(
                (numeric - grad_in[i]).abs() < 1e-5,
                "input {i}: {numeric} vs {}",
                grad_in[i]
            );
        }
    }

    #[test]
    fn parameter_count() {
        let layer = Dense::new(12, 6, Activation::Relu, 0);
        assert_eq!(layer.parameter_count(), 12 * 6 + 6);
    }

    #[test]
    fn initialization_is_seeded() {
        let a = Dense::new(4, 4, Activation::Relu, 9);
        let b = Dense::new(4, 4, Activation::Relu, 9);
        let c = Dense::new(4, 4, Activation::Relu, 10);
        assert_eq!(a.weights(), b.weights());
        assert_ne!(a.weights(), c.weights());
    }

    #[test]
    #[should_panic(expected = "input size mismatch")]
    fn forward_rejects_wrong_size() {
        let layer = Dense::new(3, 1, Activation::Relu, 0);
        let _ = layer.forward(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn zero_inputs_rejected() {
        let _ = Dense::new(0, 1, Activation::Relu, 0);
    }
}
