//! Parameter-update rules.

use serde::{Deserialize, Serialize};

/// Optimizer choice and hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Optimizer {
    /// Stochastic gradient descent with momentum.
    Sgd {
        /// Learning rate.
        learning_rate: f64,
        /// Momentum coefficient in `[0, 1)`.
        momentum: f64,
    },
    /// Adam (Kingma & Ba).
    Adam {
        /// Learning rate.
        learning_rate: f64,
        /// First-moment decay.
        beta1: f64,
        /// Second-moment decay.
        beta2: f64,
    },
}

impl Default for Optimizer {
    fn default() -> Self {
        Optimizer::Adam {
            learning_rate: 0.01,
            beta1: 0.9,
            beta2: 0.999,
        }
    }
}

/// Per-parameter-vector optimizer state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizerState {
    /// First moment (momentum / Adam m).
    m: Vec<f64>,
    /// Second moment (Adam v).
    v: Vec<f64>,
    /// Update count (for Adam bias correction).
    t: u64,
}

impl OptimizerState {
    /// Creates zeroed state for `n` parameters.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            m: vec![0.0; n],
            v: vec![0.0; n],
            t: 0,
        }
    }

    /// Computes the update *steps* (to be subtracted from parameters) for
    /// the given gradients.
    ///
    /// # Panics
    ///
    /// Panics if `grads.len()` differs from the state size.
    #[must_use]
    // The size assert bounds every enumerate() index into m/v.
    // mira-lint: allow(panic-reachability)
    pub fn step(&mut self, optimizer: Optimizer, grads: &[f64]) -> Vec<f64> {
        assert_eq!(grads.len(), self.m.len(), "gradient size mismatch");
        self.t += 1;
        match optimizer {
            Optimizer::Sgd {
                learning_rate,
                momentum,
            } => grads
                .iter()
                .enumerate()
                .map(|(i, &g)| {
                    self.m[i] = momentum * self.m[i] + g;
                    learning_rate * self.m[i]
                })
                .collect(),
            Optimizer::Adam {
                learning_rate,
                beta1,
                beta2,
            } => {
                let eps = 1e-8;
                let bc1 = 1.0 - beta1.powi(self.t as i32);
                let bc2 = 1.0 - beta2.powi(self.t as i32);
                grads
                    .iter()
                    .enumerate()
                    .map(|(i, &g)| {
                        self.m[i] = beta1 * self.m[i] + (1.0 - beta1) * g;
                        self.v[i] = beta2 * self.v[i] + (1.0 - beta2) * g * g;
                        let mhat = self.m[i] / bc1;
                        let vhat = self.v[i] / bc2;
                        learning_rate * mhat / (vhat.sqrt() + eps)
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_without_momentum_is_plain_descent() {
        let mut s = OptimizerState::new(2);
        let opt = Optimizer::Sgd {
            learning_rate: 0.1,
            momentum: 0.0,
        };
        let step = s.step(opt, &[1.0, -2.0]);
        assert_eq!(step, vec![0.1, -0.2]);
    }

    #[test]
    fn momentum_accumulates() {
        let mut s = OptimizerState::new(1);
        let opt = Optimizer::Sgd {
            learning_rate: 1.0,
            momentum: 0.5,
        };
        assert_eq!(s.step(opt, &[1.0]), vec![1.0]);
        assert_eq!(s.step(opt, &[1.0]), vec![1.5]);
        assert_eq!(s.step(opt, &[1.0]), vec![1.75]);
    }

    #[test]
    fn adam_first_step_is_learning_rate_sized() {
        let mut s = OptimizerState::new(1);
        let step = s.step(Optimizer::default(), &[0.37]);
        // Bias-corrected Adam's first step magnitude ≈ lr regardless of
        // gradient scale.
        assert!((step[0] - 0.01).abs() < 1e-6, "step {}", step[0]);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // Minimize (x - 3)^2 from x = 0.
        let mut x = 0.0f64;
        let mut s = OptimizerState::new(1);
        let opt = Optimizer::Adam {
            learning_rate: 0.1,
            beta1: 0.9,
            beta2: 0.999,
        };
        for _ in 0..500 {
            let g = 2.0 * (x - 3.0);
            x -= s.step(opt, &[g])[0];
        }
        assert!((x - 3.0).abs() < 0.05, "x = {x}");
    }

    #[test]
    #[should_panic(expected = "gradient size mismatch")]
    fn size_mismatch_rejected() {
        let mut s = OptimizerState::new(2);
        let _ = s.step(Optimizer::default(), &[1.0]);
    }
}
