//! Activation functions.

use serde::{Deserialize, Serialize};

/// An element-wise activation function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// Rectified linear unit, `max(0, x)` — the paper's hidden-layer
    /// activation.
    Relu,
    /// Logistic sigmoid, `1 / (1 + e^{-x})` — the paper's output
    /// activation for binary classification.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Identity (linear output, for regression heads).
    Identity,
}

impl Activation {
    /// Applies the activation to one value.
    #[must_use]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
            Activation::Identity => x,
        }
    }

    /// Derivative of the activation expressed in terms of its *output*
    /// `y = f(x)` (cheap for all four variants).
    #[must_use]
    pub fn derivative_from_output(self, y: f64) -> f64 {
        match self {
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Tanh => 1.0 - y * y,
            Activation::Identity => 1.0,
        }
    }

    /// Applies the activation to a slice in place.
    pub fn apply_slice(self, xs: &mut [f64]) {
        for x in xs {
            *x = self.apply(*x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.5), 2.5);
    }

    #[test]
    fn sigmoid_range_and_midpoint() {
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-12);
        assert!(Activation::Sigmoid.apply(10.0) > 0.999);
        assert!(Activation::Sigmoid.apply(-10.0) < 0.001);
    }

    #[test]
    fn derivatives_match_finite_difference() {
        let eps = 1e-6;
        for act in [
            Activation::Relu,
            Activation::Sigmoid,
            Activation::Tanh,
            Activation::Identity,
        ] {
            for &x in &[-2.0f64, -0.5, 0.3, 1.7] {
                if act == Activation::Relu && x.abs() < eps {
                    continue; // kink
                }
                let numeric = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
                let analytic = act.derivative_from_output(act.apply(x));
                assert!(
                    (numeric - analytic).abs() < 1e-5,
                    "{act:?} at {x}: {numeric} vs {analytic}"
                );
            }
        }
    }

    #[test]
    fn apply_slice_matches_scalar() {
        let mut xs = [-1.0, 0.0, 2.0];
        Activation::Relu.apply_slice(&mut xs);
        assert_eq!(xs, [0.0, 0.0, 2.0]);
    }

    proptest! {
        #[test]
        fn sigmoid_is_bounded_and_monotone(a in -50.0f64..50.0, b in -50.0f64..50.0) {
            let s = Activation::Sigmoid;
            prop_assert!((0.0..=1.0).contains(&s.apply(a)));
            if a < b {
                prop_assert!(s.apply(a) <= s.apply(b));
            }
        }
    }
}
