//! The per-rack coolant monitor: sensors, calibration, telemetry record,
//! and alarm thresholds.
//!
//! Every rack carries a coolant monitor beside its internal loop's inlet
//! and outlet lines. Every 300 s it records: data-center temperature and
//! humidity near the rack, coolant flow, inlet and outlet coolant
//! temperature, and aggregate rack power. Sensor readings pass through a
//! per-device calibration and carry measurement noise. Threshold alarms
//! on the readings are what raise coolant monitor failure (CMF) events in
//! the RAS log.

use std::fmt;

use serde::{Deserialize, Serialize};

use mira_facility::RackId;
use mira_timeseries::{Duration, SimTime};
use mira_units::{condensation_margin, convert, Fahrenheit, Gpm, Kilowatts, RelHumidity};

/// The coolant monitor's sampling interval (300 s).
pub const SAMPLE_INTERVAL: Duration = Duration::from_seconds(300);

/// One 300-second telemetry record from a rack's coolant monitor — the
/// row format of the whole study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoolantMonitorSample {
    /// Sample timestamp.
    pub time: SimTime,
    /// Rack the monitor is attached to.
    pub rack: RackId,
    /// Data-center ambient temperature near the rack.
    pub dc_temperature: Fahrenheit,
    /// Data-center relative humidity near the rack.
    pub dc_humidity: RelHumidity,
    /// Coolant flow through the rack's internal loop.
    pub flow: Gpm,
    /// Inlet coolant temperature.
    pub inlet: Fahrenheit,
    /// Outlet coolant temperature.
    pub outlet: Fahrenheit,
    /// Aggregate power of the rack's four power enclosures.
    pub power: Kilowatts,
}

impl CoolantMonitorSample {
    /// The six telemetry channels as a fixed array, in [`Channel`] order —
    /// the feature vector layout used by the CMF predictor.
    #[must_use]
    // Raw NN feature vector; channel order is the unit contract. mira-lint: allow(raw-f64-in-public-api)
    pub fn channels(&self) -> [f64; 6] {
        [
            self.dc_temperature.value(),
            self.dc_humidity.value(),
            self.flow.value(),
            self.inlet.value(),
            self.outlet.value(),
            self.power.value(),
        ]
    }

    /// Condensation margin between the (cold) inlet line and the local
    /// dew point — the composite quantity the CMF alarm is defined over.
    #[must_use]
    pub fn condensation_margin(&self) -> Fahrenheit {
        condensation_margin(self.inlet, self.dc_temperature, self.dc_humidity)
    }
}

/// Identifies one of the six telemetry channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Channel {
    DcTemperature = 0,
    DcHumidity = 1,
    Flow = 2,
    Inlet = 3,
    Outlet = 4,
    Power = 5,
}

impl Channel {
    /// All channels in array order.
    pub const ALL: [Channel; 6] = [
        Channel::DcTemperature,
        Channel::DcHumidity,
        Channel::Flow,
        Channel::Inlet,
        Channel::Outlet,
        Channel::Power,
    ];

    /// Dense index in `0..6`.
    #[must_use]
    pub fn index(self) -> usize {
        // Dense unit-only enum discriminant. mira-lint: allow(lossy-cast)
        self as usize
    }
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Channel::DcTemperature => "dc-temperature",
            Channel::DcHumidity => "dc-humidity",
            Channel::Flow => "coolant-flow",
            Channel::Inlet => "inlet-temperature",
            Channel::Outlet => "outlet-temperature",
            Channel::Power => "power",
        };
        f.write_str(name)
    }
}

/// Alarm levels a coolant monitor can raise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MonitorAlarm {
    /// Dew point approaching the inlet-line temperature: condensation
    /// risk. This is the fatal CMF trigger.
    CondensationRisk,
    /// Coolant flow below the safe minimum.
    LowFlow,
    /// Outlet coolant temperature above the safe maximum.
    OverTemperature,
}

impl fmt::Display for MonitorAlarm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            MonitorAlarm::CondensationRisk => "condensation-risk",
            MonitorAlarm::LowFlow => "low-flow",
            MonitorAlarm::OverTemperature => "over-temperature",
        };
        f.write_str(name)
    }
}

/// Alarm thresholds configured on every monitor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlarmThresholds {
    /// Minimum allowed condensation margin before a fatal alarm.
    pub min_condensation_margin: Fahrenheit,
    /// Minimum allowed coolant flow.
    pub min_flow: Gpm,
    /// Maximum allowed outlet temperature.
    pub max_outlet: Fahrenheit,
}

impl AlarmThresholds {
    /// The Mira production thresholds.
    #[must_use]
    pub fn mira() -> Self {
        Self {
            min_condensation_margin: Fahrenheit::new(3.0),
            min_flow: Gpm::new(12.0),
            max_outlet: Fahrenheit::new(95.0),
        }
    }

    /// Checks a sample against the thresholds; returns the first alarm
    /// tripped (condensation dominates, then flow, then temperature).
    #[must_use]
    pub fn check(&self, sample: &CoolantMonitorSample) -> Option<MonitorAlarm> {
        if sample.condensation_margin() < self.min_condensation_margin {
            return Some(MonitorAlarm::CondensationRisk);
        }
        if sample.flow < self.min_flow {
            return Some(MonitorAlarm::LowFlow);
        }
        if sample.outlet > self.max_outlet {
            return Some(MonitorAlarm::OverTemperature);
        }
        None
    }
}

impl Default for AlarmThresholds {
    fn default() -> Self {
        Self::mira()
    }
}

/// A rack's coolant monitor: applies per-device calibration and
/// measurement noise to ground-truth conditions.
///
/// The monitors were regularly validated at ALCF (only one sensor was
/// replaced in six years), so calibration offsets are small and gains are
/// near unity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoolantMonitor {
    rack: RackId,
    seed: u64,
    /// Per-channel additive calibration offsets.
    offsets: [f64; 6],
    /// Per-channel measurement-noise scale (1 σ).
    noise: [f64; 6],
}

impl CoolantMonitor {
    /// Creates the monitor for a rack with deterministic calibration
    /// derived from the seed.
    #[must_use]
    // scales/offsets are fixed [f64; 6] indexed by enumerate() over a
    // six-element array. mira-lint: allow(panic-reachability)
    pub fn new(rack: RackId, seed: u64) -> Self {
        let mut offsets = [0.0; 6];
        // Channel-appropriate calibration scales: temperatures ±0.15 F,
        // humidity ±0.3 RH, flow ±0.25 GPM, power ±0.4 kW.
        let scales = [0.15, 0.30, 0.25, 0.15, 0.15, 0.40];
        for (i, offset) in offsets.iter_mut().enumerate() {
            *offset = unit_noise(seed, rack.index() as u64, i as u64, 0) * scales[i];
        }
        let noise = [0.12, 0.25, 0.18, 0.08, 0.10, 0.35];
        Self {
            rack,
            seed,
            offsets,
            noise,
        }
    }

    /// The rack this monitor instruments.
    #[must_use]
    pub fn rack(&self) -> RackId {
        self.rack
    }

    /// Produces the telemetry record for ground-truth conditions at `t`.
    ///
    /// One argument per physical channel: this mirrors the sensor wiring
    /// and keeps the channels' units type-checked at the call site.
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    // `read` is only called with channel indices 0..6 into the fixed
    // [f64; 6] calibration arrays. mira-lint: allow(panic-reachability)
    pub fn observe(
        &self,
        t: SimTime,
        dc_temperature: Fahrenheit,
        dc_humidity: RelHumidity,
        flow: Gpm,
        inlet: Fahrenheit,
        outlet: Fahrenheit,
        power: Kilowatts,
    ) -> CoolantMonitorSample {
        let tick = t.epoch_seconds() as u64;
        // The rack prefix and the tick product are channel-independent;
        // hoisting them halves the hash work on the 48×6-channel sweep
        // hot path without changing a single output bit.
        let rack_base = self.seed ^ (self.rack.index() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let tick_term = tick.wrapping_mul(0x1656_67B1_9E37_79F9);
        let read = |i: usize, truth: f64| {
            truth + self.offsets[i] + finish_noise(rack_base, i as u64, tick_term) * self.noise[i]
        };
        CoolantMonitorSample {
            time: t,
            rack: self.rack,
            dc_temperature: Fahrenheit::new(read(0, dc_temperature.value())),
            dc_humidity: RelHumidity::new(read(1, dc_humidity.value())),
            flow: Gpm::new(read(2, flow.value()).max(0.0)),
            inlet: Fahrenheit::new(read(3, inlet.value())),
            outlet: Fahrenheit::new(read(4, outlet.value())),
            power: Kilowatts::new(read(5, power.value()).max(0.0)),
        }
    }
}

/// Structure-of-arrays view of a fleet of [`CoolantMonitor`]s for the
/// batched sweep observation kernel.
///
/// Per channel (channel-major rows, one slot per rack) the bank
/// precomputes the channel-dependent hash prefix
/// `rack_base ^ channel * K` — the part of [`finish_noise`]'s input that
/// does not depend on the tick — plus the calibration offset and noise
/// scale. [`MonitorBank::observe_lanes`] then applies the identical
/// avalanche tail and calibration arithmetic lane by lane, so every
/// output bit matches [`CoolantMonitor::observe`].
#[derive(Debug, Clone)]
pub struct MonitorBank {
    lanes: usize,
    /// `rack_base ^ channel·K` per slot (channel-major).
    bases: Vec<u64>,
    /// Additive calibration offset per slot.
    offsets: Vec<f64>,
    /// Measurement-noise scale per slot.
    noise: Vec<f64>,
    /// Per-lane avalanche scratch for [`Self::observe_lanes`]: keeping
    /// the integer hash pass and the floating-point calibration pass in
    /// separate loops lets each vectorize on its own register class.
    hash: Vec<u64>,
}

impl MonitorBank {
    /// Builds the bank over a fleet of monitors (one lane per monitor,
    /// in slice order).
    #[must_use]
    // Bank constructor: builds the channel-major rows once per worker
    // (via sweep_scratch), never in the per-step fold; `c` indexes the
    // monitors' fixed `[_; 6]` channel arrays.
    // mira-lint: allow(alloc-in-hot-path, panic-reachability)
    pub fn new(monitors: &[CoolantMonitor]) -> Self {
        let lanes = monitors.len();
        let mut bases = Vec::with_capacity(6 * lanes);
        let mut offsets = Vec::with_capacity(6 * lanes);
        let mut noise = Vec::with_capacity(6 * lanes);
        for c in 0..6usize {
            for m in monitors {
                let rack_base =
                    m.seed ^ (m.rack.index() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                bases.push(rack_base ^ (c as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
                offsets.push(m.offsets[c]);
                noise.push(m.noise[c]);
            }
        }
        Self {
            lanes,
            bases,
            offsets,
            noise,
            hash: vec![0; lanes],
        }
    }

    /// Number of monitor lanes in the bank.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// [`CoolantMonitor::observe`] for every rack at once: `truth[c]`
    /// holds channel `c`'s ground-truth lanes (in [`Channel`] order) and
    /// `out[c]` receives the observed readings.
    ///
    /// Channel semantics match the sample constructors bit for bit:
    /// humidity readings are clamped into `[0, 100]` (as
    /// `RelHumidity::new` does) and flow/power readings are floored at
    /// zero.
    ///
    /// # Panics
    ///
    /// Panics if any lane slice differs from `self.lanes()`.
    // Raw f64 channel lanes; the materialized per-step view re-wraps
    // them in their unit newtypes. Rows are sized `6 * lanes` by the
    // constructor, every lane slice is length-asserted, and `c < 6`.
    // mira-lint: allow(raw-f64-in-public-api, panic-reachability)
    pub fn observe_lanes(&mut self, t: SimTime, truth: [&[f64]; 6], out: [&mut [f64]; 6]) {
        let lanes = self.lanes;
        let tick = t.epoch_seconds() as u64;
        let tick_term = tick.wrapping_mul(0x1656_67B1_9E37_79F9);
        for (c, (tr, o)) in truth.into_iter().zip(out).enumerate() {
            // Documented panic contract: one slot per lane per channel.
            // mira-lint: allow(panic-reachability)
            assert_eq!(tr.len(), lanes, "one truth slot per lane");
            assert_eq!(o.len(), lanes, "one output slot per lane");
            let row = c * lanes..(c + 1) * lanes;
            let bases = &self.bases[row.clone()];
            let offsets = &self.offsets[row.clone()];
            let noise = &self.noise[row];
            let hash = &mut self.hash[..lanes];
            for (h, &b) in hash.iter_mut().zip(bases) {
                // Avalanche tail of `finish_noise` with the channel
                // prefix precomputed in `bases`.
                let mut z = b.wrapping_add(tick_term);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                *h = z >> 11;
            }
            for l in 0..lanes {
                let n = convert::f64_from_u64(hash[l]) / 9_007_199_254_740_992.0 * 2.0 - 1.0;
                o[l] = tr[l] + offsets[l] + n * noise[l];
            }
            match c {
                // `RelHumidity::new` clamps into [0, 100].
                1 => {
                    for v in o.iter_mut() {
                        *v = v.clamp(0.0, 100.0);
                    }
                }
                // Flow and power are floored at zero by `observe`.
                2 | 5 => {
                    for v in o.iter_mut() {
                        *v = v.max(0.0);
                    }
                }
                _ => {}
            }
        }
    }
}

/// Deterministic white noise in `[-1, 1]` keyed by (seed, rack, channel,
/// tick) — sensor noise that is reproducible across runs.
fn unit_noise(seed: u64, rack: u64, channel: u64, tick: u64) -> f64 {
    finish_noise(
        seed ^ rack.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        channel,
        tick.wrapping_mul(0x1656_67B1_9E37_79F9),
    )
}

/// Tail of [`unit_noise`] with the channel-independent rack prefix and
/// tick product already folded in (hoisted once per observation on the
/// sweep hot path).
fn finish_noise(rack_base: u64, channel: u64, tick_term: u64) -> f64 {
    let mut z = rack_base ^ channel.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    z = z.wrapping_add(tick_term);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    // 2^53 = 9_007_199_254_740_992: top 53 bits map exactly onto the
    // f64 mantissa.
    convert::f64_from_u64(z >> 11) / 9_007_199_254_740_992.0 * 2.0 - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use mira_timeseries::Date;

    fn truth_sample(monitor: &CoolantMonitor, t: SimTime) -> CoolantMonitorSample {
        monitor.observe(
            t,
            Fahrenheit::new(80.0),
            RelHumidity::new(33.0),
            Gpm::new(26.0),
            Fahrenheit::new(64.0),
            Fahrenheit::new(79.0),
            Kilowatts::new(58.0),
        )
    }

    #[test]
    fn observation_is_close_to_truth() {
        let m = CoolantMonitor::new(RackId::new(0, 0), 7);
        let s = truth_sample(&m, SimTime::from_date(Date::new(2015, 5, 1)));
        assert!((s.dc_temperature.value() - 80.0).abs() < 1.0);
        assert!((s.flow.value() - 26.0).abs() < 1.5);
        assert!((s.inlet.value() - 64.0).abs() < 0.8);
        assert!((s.power.value() - 58.0).abs() < 2.0);
    }

    #[test]
    fn observation_is_deterministic() {
        let m = CoolantMonitor::new(RackId::new(1, 4), 7);
        let t = SimTime::from_date(Date::new(2015, 5, 1));
        assert_eq!(truth_sample(&m, t), truth_sample(&m, t));
    }

    #[test]
    fn noise_varies_over_time() {
        let m = CoolantMonitor::new(RackId::new(1, 4), 7);
        let t = SimTime::from_date(Date::new(2015, 5, 1));
        let a = truth_sample(&m, t);
        let b = truth_sample(&m, t + SAMPLE_INTERVAL);
        assert_ne!(a.inlet, b.inlet);
    }

    #[test]
    fn bank_observation_is_bit_identical_to_scalar_observe() {
        let monitors: Vec<CoolantMonitor> = (0..48)
            .map(|i| CoolantMonitor::new(RackId::from_index(i), 7))
            .collect();
        let mut bank = MonitorBank::new(&monitors);
        assert_eq!(bank.lanes(), 48);
        let mut tr = [[0.0f64; 48]; 6];
        let mut obs = [[0.0f64; 48]; 6];
        let base_t = SimTime::from_date(Date::new(2015, 5, 1));
        for k in 0..50i64 {
            let t = base_t + SAMPLE_INTERVAL * k;
            // Six parallel rows are written at the same lane index.
            #[allow(clippy::needless_range_loop)]
            for l in 0..48usize {
                let x = l as f64;
                // Includes truths that trip the humidity clamp and the
                // flow/power zero floor.
                tr[0][l] = 80.0 + x * 0.1;
                tr[1][l] = if l % 7 == 0 { 99.9 } else { 33.0 + x };
                tr[2][l] = if l % 11 == 0 { 0.05 } else { 26.0 };
                tr[3][l] = 64.0 + x * 0.01;
                tr[4][l] = 79.0;
                tr[5][l] = if l % 13 == 0 { 0.1 } else { 58.0 };
            }
            let [t0, t1, t2, t3, t4, t5] = &tr;
            let [o0, o1, o2, o3, o4, o5] = &mut obs;
            bank.observe_lanes(t, [t0, t1, t2, t3, t4, t5], [o0, o1, o2, o3, o4, o5]);
            for (l, m) in monitors.iter().enumerate() {
                let s = m.observe(
                    t,
                    Fahrenheit::new(tr[0][l]),
                    RelHumidity::new(tr[1][l]),
                    Gpm::new(tr[2][l]),
                    Fahrenheit::new(tr[3][l]),
                    Fahrenheit::new(tr[4][l]),
                    Kilowatts::new(tr[5][l]),
                );
                assert_eq!(obs[0][l].to_bits(), s.dc_temperature.value().to_bits());
                assert_eq!(obs[1][l].to_bits(), s.dc_humidity.value().to_bits());
                assert_eq!(obs[2][l].to_bits(), s.flow.value().to_bits());
                assert_eq!(obs[3][l].to_bits(), s.inlet.value().to_bits());
                assert_eq!(obs[4][l].to_bits(), s.outlet.value().to_bits());
                assert_eq!(obs[5][l].to_bits(), s.power.value().to_bits());
            }
        }
    }

    #[test]
    fn calibration_differs_per_rack() {
        let a = CoolantMonitor::new(RackId::new(0, 1), 7);
        let b = CoolantMonitor::new(RackId::new(0, 2), 7);
        assert_ne!(a.offsets, b.offsets);
    }

    #[test]
    fn channels_array_matches_fields() {
        let m = CoolantMonitor::new(RackId::new(0, 0), 7);
        let s = truth_sample(&m, SimTime::from_date(Date::new(2015, 5, 1)));
        let c = s.channels();
        assert_eq!(c[Channel::Flow.index()], s.flow.value());
        assert_eq!(c[Channel::Power.index()], s.power.value());
        assert_eq!(Channel::ALL.len(), 6);
    }

    #[test]
    fn healthy_sample_raises_no_alarm() {
        let m = CoolantMonitor::new(RackId::new(0, 0), 7);
        let s = truth_sample(&m, SimTime::from_date(Date::new(2015, 5, 1)));
        assert_eq!(AlarmThresholds::mira().check(&s), None);
    }

    #[test]
    fn condensation_alarm_trips_on_humid_air_and_cold_inlet() {
        let m = CoolantMonitor::new(RackId::new(0, 0), 7);
        let s = m.observe(
            SimTime::from_date(Date::new(2015, 7, 1)),
            Fahrenheit::new(82.0),
            RelHumidity::new(60.0),
            Gpm::new(26.0),
            Fahrenheit::new(58.0),
            Fahrenheit::new(73.0),
            Kilowatts::new(58.0),
        );
        assert_eq!(
            AlarmThresholds::mira().check(&s),
            Some(MonitorAlarm::CondensationRisk)
        );
    }

    #[test]
    fn low_flow_alarm() {
        let m = CoolantMonitor::new(RackId::new(0, 0), 7);
        let s = m.observe(
            SimTime::from_date(Date::new(2015, 7, 1)),
            Fahrenheit::new(80.0),
            RelHumidity::new(30.0),
            Gpm::new(5.0),
            Fahrenheit::new(64.0),
            Fahrenheit::new(79.0),
            Kilowatts::new(58.0),
        );
        assert_eq!(
            AlarmThresholds::mira().check(&s),
            Some(MonitorAlarm::LowFlow)
        );
    }

    #[test]
    fn over_temperature_alarm() {
        let m = CoolantMonitor::new(RackId::new(0, 0), 7);
        let s = m.observe(
            SimTime::from_date(Date::new(2015, 7, 1)),
            Fahrenheit::new(80.0),
            RelHumidity::new(30.0),
            Gpm::new(26.0),
            Fahrenheit::new(64.0),
            Fahrenheit::new(98.0),
            Kilowatts::new(58.0),
        );
        assert_eq!(
            AlarmThresholds::mira().check(&s),
            Some(MonitorAlarm::OverTemperature)
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(Channel::Inlet.to_string(), "inlet-temperature");
        assert_eq!(
            MonitorAlarm::CondensationRisk.to_string(),
            "condensation-risk"
        );
    }
}
