//! The per-rack coolant monitor: sensors, calibration, telemetry record,
//! and alarm thresholds.
//!
//! Every rack carries a coolant monitor beside its internal loop's inlet
//! and outlet lines. Every 300 s it records: data-center temperature and
//! humidity near the rack, coolant flow, inlet and outlet coolant
//! temperature, and aggregate rack power. Sensor readings pass through a
//! per-device calibration and carry measurement noise. Threshold alarms
//! on the readings are what raise coolant monitor failure (CMF) events in
//! the RAS log.

use std::fmt;

use serde::{Deserialize, Serialize};

use mira_facility::RackId;
use mira_timeseries::{Duration, SimTime};
use mira_units::{condensation_margin, convert, Fahrenheit, Gpm, Kilowatts, RelHumidity};

/// The coolant monitor's sampling interval (300 s).
pub const SAMPLE_INTERVAL: Duration = Duration::from_seconds(300);

/// One 300-second telemetry record from a rack's coolant monitor — the
/// row format of the whole study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoolantMonitorSample {
    /// Sample timestamp.
    pub time: SimTime,
    /// Rack the monitor is attached to.
    pub rack: RackId,
    /// Data-center ambient temperature near the rack.
    pub dc_temperature: Fahrenheit,
    /// Data-center relative humidity near the rack.
    pub dc_humidity: RelHumidity,
    /// Coolant flow through the rack's internal loop.
    pub flow: Gpm,
    /// Inlet coolant temperature.
    pub inlet: Fahrenheit,
    /// Outlet coolant temperature.
    pub outlet: Fahrenheit,
    /// Aggregate power of the rack's four power enclosures.
    pub power: Kilowatts,
}

impl CoolantMonitorSample {
    /// The six telemetry channels as a fixed array, in [`Channel`] order —
    /// the feature vector layout used by the CMF predictor.
    #[must_use]
    // Raw NN feature vector; channel order is the unit contract. mira-lint: allow(raw-f64-in-public-api)
    pub fn channels(&self) -> [f64; 6] {
        [
            self.dc_temperature.value(),
            self.dc_humidity.value(),
            self.flow.value(),
            self.inlet.value(),
            self.outlet.value(),
            self.power.value(),
        ]
    }

    /// Condensation margin between the (cold) inlet line and the local
    /// dew point — the composite quantity the CMF alarm is defined over.
    #[must_use]
    pub fn condensation_margin(&self) -> Fahrenheit {
        condensation_margin(self.inlet, self.dc_temperature, self.dc_humidity)
    }
}

/// Identifies one of the six telemetry channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Channel {
    DcTemperature = 0,
    DcHumidity = 1,
    Flow = 2,
    Inlet = 3,
    Outlet = 4,
    Power = 5,
}

impl Channel {
    /// All channels in array order.
    pub const ALL: [Channel; 6] = [
        Channel::DcTemperature,
        Channel::DcHumidity,
        Channel::Flow,
        Channel::Inlet,
        Channel::Outlet,
        Channel::Power,
    ];

    /// Dense index in `0..6`.
    #[must_use]
    pub fn index(self) -> usize {
        // Dense unit-only enum discriminant. mira-lint: allow(lossy-cast)
        self as usize
    }
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Channel::DcTemperature => "dc-temperature",
            Channel::DcHumidity => "dc-humidity",
            Channel::Flow => "coolant-flow",
            Channel::Inlet => "inlet-temperature",
            Channel::Outlet => "outlet-temperature",
            Channel::Power => "power",
        };
        f.write_str(name)
    }
}

/// Alarm levels a coolant monitor can raise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MonitorAlarm {
    /// Dew point approaching the inlet-line temperature: condensation
    /// risk. This is the fatal CMF trigger.
    CondensationRisk,
    /// Coolant flow below the safe minimum.
    LowFlow,
    /// Outlet coolant temperature above the safe maximum.
    OverTemperature,
}

impl fmt::Display for MonitorAlarm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            MonitorAlarm::CondensationRisk => "condensation-risk",
            MonitorAlarm::LowFlow => "low-flow",
            MonitorAlarm::OverTemperature => "over-temperature",
        };
        f.write_str(name)
    }
}

/// Alarm thresholds configured on every monitor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlarmThresholds {
    /// Minimum allowed condensation margin before a fatal alarm.
    pub min_condensation_margin: Fahrenheit,
    /// Minimum allowed coolant flow.
    pub min_flow: Gpm,
    /// Maximum allowed outlet temperature.
    pub max_outlet: Fahrenheit,
}

impl AlarmThresholds {
    /// The Mira production thresholds.
    #[must_use]
    pub fn mira() -> Self {
        Self {
            min_condensation_margin: Fahrenheit::new(3.0),
            min_flow: Gpm::new(12.0),
            max_outlet: Fahrenheit::new(95.0),
        }
    }

    /// Checks a sample against the thresholds; returns the first alarm
    /// tripped (condensation dominates, then flow, then temperature).
    #[must_use]
    pub fn check(&self, sample: &CoolantMonitorSample) -> Option<MonitorAlarm> {
        if sample.condensation_margin() < self.min_condensation_margin {
            return Some(MonitorAlarm::CondensationRisk);
        }
        if sample.flow < self.min_flow {
            return Some(MonitorAlarm::LowFlow);
        }
        if sample.outlet > self.max_outlet {
            return Some(MonitorAlarm::OverTemperature);
        }
        None
    }
}

impl Default for AlarmThresholds {
    fn default() -> Self {
        Self::mira()
    }
}

/// A rack's coolant monitor: applies per-device calibration and
/// measurement noise to ground-truth conditions.
///
/// The monitors were regularly validated at ALCF (only one sensor was
/// replaced in six years), so calibration offsets are small and gains are
/// near unity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoolantMonitor {
    rack: RackId,
    seed: u64,
    /// Per-channel additive calibration offsets.
    offsets: [f64; 6],
    /// Per-channel measurement-noise scale (1 σ).
    noise: [f64; 6],
}

impl CoolantMonitor {
    /// Creates the monitor for a rack with deterministic calibration
    /// derived from the seed.
    #[must_use]
    // scales/offsets are fixed [f64; 6] indexed by enumerate() over a
    // six-element array. mira-lint: allow(panic-reachability)
    pub fn new(rack: RackId, seed: u64) -> Self {
        let mut offsets = [0.0; 6];
        // Channel-appropriate calibration scales: temperatures ±0.15 F,
        // humidity ±0.3 RH, flow ±0.25 GPM, power ±0.4 kW.
        let scales = [0.15, 0.30, 0.25, 0.15, 0.15, 0.40];
        for (i, offset) in offsets.iter_mut().enumerate() {
            *offset = unit_noise(seed, rack.index() as u64, i as u64, 0) * scales[i];
        }
        let noise = [0.12, 0.25, 0.18, 0.08, 0.10, 0.35];
        Self {
            rack,
            seed,
            offsets,
            noise,
        }
    }

    /// The rack this monitor instruments.
    #[must_use]
    pub fn rack(&self) -> RackId {
        self.rack
    }

    /// Produces the telemetry record for ground-truth conditions at `t`.
    ///
    /// One argument per physical channel: this mirrors the sensor wiring
    /// and keeps the channels' units type-checked at the call site.
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    // `read` is only called with channel indices 0..6 into the fixed
    // [f64; 6] calibration arrays. mira-lint: allow(panic-reachability)
    pub fn observe(
        &self,
        t: SimTime,
        dc_temperature: Fahrenheit,
        dc_humidity: RelHumidity,
        flow: Gpm,
        inlet: Fahrenheit,
        outlet: Fahrenheit,
        power: Kilowatts,
    ) -> CoolantMonitorSample {
        let tick = t.epoch_seconds() as u64;
        // The rack prefix and the tick product are channel-independent;
        // hoisting them halves the hash work on the 48×6-channel sweep
        // hot path without changing a single output bit.
        let rack_base = self.seed ^ (self.rack.index() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let tick_term = tick.wrapping_mul(0x1656_67B1_9E37_79F9);
        let read = |i: usize, truth: f64| {
            truth + self.offsets[i] + finish_noise(rack_base, i as u64, tick_term) * self.noise[i]
        };
        CoolantMonitorSample {
            time: t,
            rack: self.rack,
            dc_temperature: Fahrenheit::new(read(0, dc_temperature.value())),
            dc_humidity: RelHumidity::new(read(1, dc_humidity.value())),
            flow: Gpm::new(read(2, flow.value()).max(0.0)),
            inlet: Fahrenheit::new(read(3, inlet.value())),
            outlet: Fahrenheit::new(read(4, outlet.value())),
            power: Kilowatts::new(read(5, power.value()).max(0.0)),
        }
    }
}

/// Deterministic white noise in `[-1, 1]` keyed by (seed, rack, channel,
/// tick) — sensor noise that is reproducible across runs.
fn unit_noise(seed: u64, rack: u64, channel: u64, tick: u64) -> f64 {
    finish_noise(
        seed ^ rack.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        channel,
        tick.wrapping_mul(0x1656_67B1_9E37_79F9),
    )
}

/// Tail of [`unit_noise`] with the channel-independent rack prefix and
/// tick product already folded in (hoisted once per observation on the
/// sweep hot path).
fn finish_noise(rack_base: u64, channel: u64, tick_term: u64) -> f64 {
    let mut z = rack_base ^ channel.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    z = z.wrapping_add(tick_term);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    // 2^53 = 9_007_199_254_740_992: top 53 bits map exactly onto the
    // f64 mantissa.
    convert::f64_from_u64(z >> 11) / 9_007_199_254_740_992.0 * 2.0 - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use mira_timeseries::Date;

    fn truth_sample(monitor: &CoolantMonitor, t: SimTime) -> CoolantMonitorSample {
        monitor.observe(
            t,
            Fahrenheit::new(80.0),
            RelHumidity::new(33.0),
            Gpm::new(26.0),
            Fahrenheit::new(64.0),
            Fahrenheit::new(79.0),
            Kilowatts::new(58.0),
        )
    }

    #[test]
    fn observation_is_close_to_truth() {
        let m = CoolantMonitor::new(RackId::new(0, 0), 7);
        let s = truth_sample(&m, SimTime::from_date(Date::new(2015, 5, 1)));
        assert!((s.dc_temperature.value() - 80.0).abs() < 1.0);
        assert!((s.flow.value() - 26.0).abs() < 1.5);
        assert!((s.inlet.value() - 64.0).abs() < 0.8);
        assert!((s.power.value() - 58.0).abs() < 2.0);
    }

    #[test]
    fn observation_is_deterministic() {
        let m = CoolantMonitor::new(RackId::new(1, 4), 7);
        let t = SimTime::from_date(Date::new(2015, 5, 1));
        assert_eq!(truth_sample(&m, t), truth_sample(&m, t));
    }

    #[test]
    fn noise_varies_over_time() {
        let m = CoolantMonitor::new(RackId::new(1, 4), 7);
        let t = SimTime::from_date(Date::new(2015, 5, 1));
        let a = truth_sample(&m, t);
        let b = truth_sample(&m, t + SAMPLE_INTERVAL);
        assert_ne!(a.inlet, b.inlet);
    }

    #[test]
    fn calibration_differs_per_rack() {
        let a = CoolantMonitor::new(RackId::new(0, 1), 7);
        let b = CoolantMonitor::new(RackId::new(0, 2), 7);
        assert_ne!(a.offsets, b.offsets);
    }

    #[test]
    fn channels_array_matches_fields() {
        let m = CoolantMonitor::new(RackId::new(0, 0), 7);
        let s = truth_sample(&m, SimTime::from_date(Date::new(2015, 5, 1)));
        let c = s.channels();
        assert_eq!(c[Channel::Flow.index()], s.flow.value());
        assert_eq!(c[Channel::Power.index()], s.power.value());
        assert_eq!(Channel::ALL.len(), 6);
    }

    #[test]
    fn healthy_sample_raises_no_alarm() {
        let m = CoolantMonitor::new(RackId::new(0, 0), 7);
        let s = truth_sample(&m, SimTime::from_date(Date::new(2015, 5, 1)));
        assert_eq!(AlarmThresholds::mira().check(&s), None);
    }

    #[test]
    fn condensation_alarm_trips_on_humid_air_and_cold_inlet() {
        let m = CoolantMonitor::new(RackId::new(0, 0), 7);
        let s = m.observe(
            SimTime::from_date(Date::new(2015, 7, 1)),
            Fahrenheit::new(82.0),
            RelHumidity::new(60.0),
            Gpm::new(26.0),
            Fahrenheit::new(58.0),
            Fahrenheit::new(73.0),
            Kilowatts::new(58.0),
        );
        assert_eq!(
            AlarmThresholds::mira().check(&s),
            Some(MonitorAlarm::CondensationRisk)
        );
    }

    #[test]
    fn low_flow_alarm() {
        let m = CoolantMonitor::new(RackId::new(0, 0), 7);
        let s = m.observe(
            SimTime::from_date(Date::new(2015, 7, 1)),
            Fahrenheit::new(80.0),
            RelHumidity::new(30.0),
            Gpm::new(5.0),
            Fahrenheit::new(64.0),
            Fahrenheit::new(79.0),
            Kilowatts::new(58.0),
        );
        assert_eq!(
            AlarmThresholds::mira().check(&s),
            Some(MonitorAlarm::LowFlow)
        );
    }

    #[test]
    fn over_temperature_alarm() {
        let m = CoolantMonitor::new(RackId::new(0, 0), 7);
        let s = m.observe(
            SimTime::from_date(Date::new(2015, 7, 1)),
            Fahrenheit::new(80.0),
            RelHumidity::new(30.0),
            Gpm::new(26.0),
            Fahrenheit::new(64.0),
            Fahrenheit::new(98.0),
            Kilowatts::new(58.0),
        );
        assert_eq!(
            AlarmThresholds::mira().check(&s),
            Some(MonitorAlarm::OverTemperature)
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(Channel::Inlet.to_string(), "inlet-temperature");
        assert_eq!(
            MonitorAlarm::CondensationRisk.to_string(),
            "condensation-risk"
        );
    }
}
