//! Loop pumps: impeller curves, system resistance, and pumping energy.
//!
//! The paper, on the Theta integration: "to prevent accidental shutdowns
//! of Mira, the impellers on the coolant loop were upgraded when Theta
//! was added to the loop and the flow rate of coolant to Mira was
//! increased." This module models why that upgrade was necessary:
//!
//! - a centrifugal pump delivers along a falling head–flow curve
//!   `H(Q) = H₀ − a·Q²`;
//! - the piping network resists along a rising system curve
//!   `H(Q) = k·Q²` (plus Theta's added branch lowering `k`'s share of
//!   the head available to Mira);
//! - the loop settles where the curves cross.
//!
//! With the original impeller, adding Theta's parallel branch would have
//! dropped Mira's share of the flow below its safe minimum — the
//! upgraded impeller restores the operating point at 1,300 GPM.

use serde::{Deserialize, Serialize};

use mira_units::{Gpm, Kilowatts};

/// A centrifugal pump's quadratic head–flow curve, `H(Q) = H₀ − a·Q²`,
/// with head in feet of water and flow in GPM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PumpCurve {
    /// Shut-off head (feet of water at zero flow).
    pub shutoff_head_ft: f64,
    /// Quadratic droop coefficient (ft per GPM²).
    pub droop: f64,
    /// Wire-to-water efficiency at the design point.
    pub efficiency: f64,
}

impl PumpCurve {
    /// The original Mira loop impeller: designed to cross the bare-loop
    /// system curve at ≈1,250 GPM.
    #[must_use]
    pub fn original() -> Self {
        Self {
            shutoff_head_ft: 150.0,
            droop: 150.0 * 0.5 / (1250.0 * 1250.0),
            efficiency: 0.78,
        }
    }

    /// The upgraded (2016) impeller: higher shut-off head, crossing the
    /// heavier Mira+Theta system curve at ≈1,300 GPM for Mira's branch.
    #[must_use]
    pub fn upgraded() -> Self {
        Self {
            shutoff_head_ft: 195.0,
            droop: 195.0 * 0.5 / (1430.0 * 1430.0),
            efficiency: 0.80,
        }
    }

    /// Delivered head at a flow (clamped at zero past runout).
    #[must_use]
    // Hydraulic head in feet; no mira-units newtype exists for head. mira-lint: allow(raw-f64-in-public-api)
    pub fn head_at(&self, flow: Gpm) -> f64 {
        (self.shutoff_head_ft - self.droop * flow.value() * flow.value()).max(0.0)
    }

    /// Solves the operating point against a system curve `H = k·Q²`:
    /// `Q* = sqrt(H₀ / (a + k))`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not positive.
    #[must_use]
    // System-curve coefficient ft/GPM^2, a fit constant. mira-lint: allow(raw-f64-in-public-api)
    pub fn operating_point(&self, system_k: f64) -> Gpm {
        assert!(system_k > 0.0, "system resistance must be positive");
        Gpm::new((self.shutoff_head_ft / (self.droop + system_k)).sqrt())
    }

    /// Electrical power to drive the pump at a flow, from the hydraulic
    /// power `ρ·g·Q·H` over the efficiency.
    #[must_use]
    pub fn electrical_power(&self, flow: Gpm) -> Kilowatts {
        let head_ft = self.head_at(flow);
        // 1 GPM·ft of water = 0.1885 / 1000 kW hydraulic... use SI:
        // Q [m³/s] · H [m] · ρg [9810 N/m³].
        let q_m3s = flow.to_litres_per_minute() / 1000.0 / 60.0;
        let h_m = head_ft * 0.3048;
        let hydraulic_kw = q_m3s * h_m * 9.81;
        Kilowatts::new(hydraulic_kw / self.efficiency)
    }
}

/// The external loop's hydraulic picture before and after Theta.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoopHydraulics {
    /// System-curve coefficient of Mira's branch alone (ft/GPM²).
    pub mira_k: f64,
    /// Effective system-curve coefficient once Theta's parallel branch
    /// draws from the same header (Mira's branch sees a heavier system:
    /// shared header losses rise).
    pub with_theta_k: f64,
}

impl LoopHydraulics {
    /// The Mira loop calibration: the original pump × bare loop crosses
    /// at ≈1,250 GPM; the upgraded pump × Theta-era loop crosses at
    /// ≈1,300 GPM on Mira's branch.
    #[must_use]
    pub fn mira() -> Self {
        let original = PumpCurve::original();
        // Solve k from the known operating points.
        let k_bare = original.shutoff_head_ft / (1250.0 * 1250.0) - original.droop;
        let upgraded = PumpCurve::upgraded();
        let k_theta = upgraded.shutoff_head_ft / (1300.0 * 1300.0) - upgraded.droop;
        Self {
            mira_k: k_bare,
            with_theta_k: k_theta,
        }
    }

    /// Mira's branch flow for a pump before Theta.
    #[must_use]
    pub fn flow_before_theta(&self, pump: &PumpCurve) -> Gpm {
        pump.operating_point(self.mira_k)
    }

    /// Mira's branch flow for a pump with Theta on the loop.
    #[must_use]
    pub fn flow_with_theta(&self, pump: &PumpCurve) -> Gpm {
        pump.operating_point(self.with_theta_k)
    }
}

impl Default for LoopHydraulics {
    fn default() -> Self {
        Self::mira()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn original_pump_crosses_at_1250() {
        let loop_h = LoopHydraulics::mira();
        let q = loop_h.flow_before_theta(&PumpCurve::original());
        assert!((q.value() - 1250.0).abs() < 1.0, "{q}");
    }

    #[test]
    fn upgraded_pump_restores_1300_with_theta() {
        let loop_h = LoopHydraulics::mira();
        let q = loop_h.flow_with_theta(&PumpCurve::upgraded());
        assert!((q.value() - 1300.0).abs() < 1.0, "{q}");
    }

    #[test]
    fn theta_without_upgrade_starves_mira() {
        // The accidental-shutdown scenario the operators avoided: the
        // old impeller against the heavier Theta-era loop loses flow.
        let loop_h = LoopHydraulics::mira();
        let starved = loop_h.flow_with_theta(&PumpCurve::original());
        assert!(
            starved.value() < 1200.0,
            "old impeller with Theta: {starved}"
        );
        assert!(starved.value() > 900.0, "but not absurdly low: {starved}");
    }

    #[test]
    fn head_falls_with_flow() {
        let p = PumpCurve::original();
        assert!(p.head_at(Gpm::new(0.0)) > p.head_at(Gpm::new(800.0)));
        assert!(p.head_at(Gpm::new(800.0)) > p.head_at(Gpm::new(1500.0)));
        assert_eq!(p.head_at(Gpm::new(1.0e5)), 0.0, "clamped past runout");
    }

    #[test]
    fn pump_power_is_plausible() {
        // A 1,250 GPM, ~75 ft pump is tens of kW — real but small next
        // to the megawatt compute load.
        let p = PumpCurve::original();
        let kw = p.electrical_power(Gpm::new(1250.0)).value();
        assert!((10.0..60.0).contains(&kw), "pump power {kw} kW");
        // Upgraded pump at higher flow draws more.
        let up = PumpCurve::upgraded()
            .electrical_power(Gpm::new(1300.0))
            .value();
        assert!(up > kw);
    }

    #[test]
    #[should_panic(expected = "system resistance must be positive")]
    fn rejects_nonpositive_resistance() {
        let _ = PumpCurve::original().operating_point(0.0);
    }
}
