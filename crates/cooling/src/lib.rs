//! Chilled-water-plant and rack cooling-loop thermo-hydraulic model.
//!
//! Mira's compute racks are liquid-cooled by a closed process loop fed
//! from the Argonne Chilled Water Plant (CWP): two 1,500-ton chillers with
//! a waterside economizer for free cooling, an external loop under the
//! data-center floor, and a heat exchanger (HX) under every rack coupling
//! the external loop to the rack's internal loop.
//!
//! - [`plant`] — the CWP: supply-temperature control, chiller/economizer
//!   duty split, free-cooling energy accounting.
//! - [`network`] — hydraulic flow distribution: loop setpoint (raised
//!   from 1,250 to 1,300 GPM when Theta joined in July 2016), per-rack
//!   blockage factors, solenoid valves, and conservation of flow.
//! - [`exchanger`] — the per-rack HX: heat load → coolant ΔT.
//! - [`monitor`] — the coolant monitor: per-rack sensors, calibration,
//!   the 300 s telemetry record ([`CoolantMonitorSample`]), and alarm
//!   thresholds.
//! - [`precursor`] — the empirically-shaped telemetry signature in the
//!   hours before a coolant monitor failure (Fig. 12).
//!
//! # Example
//!
//! ```
//! use mira_cooling::{HeatExchanger, network::FlowNetwork};
//! use mira_units::{Fahrenheit, Gpm, Watts};
//!
//! let hx = HeatExchanger::mira();
//! // ≈53 kW of rack heat at 26 GPM warms the coolant ≈15 °F.
//! let outlet = hx.outlet_temperature(Fahrenheit::new(64.0), Gpm::new(26.0), Watts::new(53_000.0));
//! assert!((outlet.value() - 79.0).abs() < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exchanger;
pub mod monitor;
pub mod network;
pub mod plant;
pub mod precursor;
pub mod pump;

pub use exchanger::HeatExchanger;
pub use monitor::{
    AlarmThresholds, CoolantMonitor, CoolantMonitorSample, MonitorAlarm, MonitorBank,
};
pub use network::{FlowCursor, FlowNetwork};
pub use plant::{ChilledWaterPlant, PlantLoad};
pub use precursor::PrecursorSignature;
pub use pump::{LoopHydraulics, PumpCurve};
