//! Hydraulic flow distribution across the 48 rack heat exchangers.
//!
//! Underfloor piping from the CWP to the racks suffers partial blockage —
//! complex cable layout, space constraints, filter fouling — so the flow
//! each rack's monitor measures varies by up to 11 % even though the loop
//! setpoint is uniform (Fig. 7a). The network model distributes the loop
//! setpoint across racks in proportion to per-rack conductance, conserving
//! total flow, and drops a rack to zero when its solenoid valve closes
//! (the Blue Gene/Q control action on a fatal coolant event).

use serde::{Deserialize, Serialize};

use mira_facility::RackId;
use mira_timeseries::SimTime;
use mira_units::{convert, Gpm};
use mira_weather::{FractalBank, NoiseCursor, ValueNoise};

/// Per-rack drift-cursor bank plus a reusable weight buffer for the
/// allocation-free distribution path ([`FlowNetwork::distribute_into`]).
///
/// Each rack samples a distinct phase of the shared drift noise, so each
/// rack owns its own [`NoiseCursor`]; cached lattice values are pure
/// functions of `(seed, cell)`, which keeps the cursor path bit-identical
/// to [`FlowNetwork::distribute`] from any prior cursor state. The lane
/// kernel ([`FlowNetwork::distribute_lanes`]) instead drives a one-octave
/// [`FractalBank`] — a single-octave fractal is exactly `sample` (unit
/// amplitude, unit norm), so both cursor forms produce the same bits.
#[derive(Debug, Clone)]
pub struct FlowCursor {
    per_rack: Vec<NoiseCursor>,
    weights: Vec<f64>,
    lanes: FractalBank,
}

/// The external-loop flow network.
///
/// ```
/// use mira_cooling::FlowNetwork;
/// use mira_facility::RackId;
/// use mira_timeseries::{Date, SimTime};
/// use mira_units::Gpm;
///
/// let net = FlowNetwork::mira(11);
/// let t = SimTime::from_date(Date::new(2015, 3, 1));
/// let open = [true; 48];
/// let flows = net.distribute(t, Gpm::new(1250.0), &open);
/// let total: f64 = flows.iter().map(|f| f.value()).sum();
/// assert!((total - 1250.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlowNetwork {
    /// Static per-rack hydraulic conductance from the pipe layout.
    conductance: Vec<f64>,
    /// Slow drift of each rack's conductance (fouling, maintenance).
    drift: ValueNoise,
}

impl FlowNetwork {
    /// Builds the Mira network with deterministic per-rack blockage.
    #[must_use]
    pub fn mira(seed: u64) -> Self {
        let conductance = RackId::all()
            .map(|rack| {
                // Fixed wiring: hash, not RNG, so topology is stable
                // across runs with different stochastic seeds.
                let h = (rack.index() as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F);
                let u = convert::f64_from_u64((h >> 16) & 0xFFFF) / 65_535.0; // [0, 1]
                                                                              // Conductance in [0.90, 1.00]: an 11 % max/min spread.
                0.90 + 0.10 * u
            })
            .collect();
        Self {
            conductance,
            drift: ValueNoise::new(seed ^ 0xF10D_0000, 45.0 * 86_400.0),
        }
    }

    /// Effective conductance of a rack at `t` (static layout plus slow
    /// fouling/maintenance drift).
    #[must_use]
    // Dimensionless relative conductance. mira-lint: allow(raw-f64-in-public-api)
    pub fn conductance(&self, rack: RackId, t: SimTime) -> f64 {
        let phase = convert::f64_from_i64(t.epoch_seconds())
            + convert::f64_from_usize(rack.index()) * 8.64e6;
        let drift = self.drift.sample(phase) * 0.012;
        (self.conductance[rack.index()] + drift).max(0.05)
    }

    /// Distributes the loop setpoint across racks in proportion to
    /// conductance. `valve_open[i]` gates rack `i`; closed valves get
    /// zero flow and their share is redistributed.
    ///
    /// Returns 48 per-rack flows summing to `setpoint` (or all zero if
    /// every valve is closed).
    #[must_use]
    pub fn distribute(
        &self,
        t: SimTime,
        setpoint: Gpm,
        valve_open: &[bool; RackId::COUNT],
    ) -> Vec<Gpm> {
        let weights: Vec<f64> = RackId::all()
            .map(|r| {
                if valve_open[r.index()] {
                    self.conductance(r, t)
                } else {
                    0.0
                }
            })
            .collect();
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return vec![Gpm::new(0.0); RackId::COUNT];
        }
        weights.iter().map(|w| setpoint * (w / total)).collect()
    }

    /// Builds the cursor bank for [`Self::distribute_into`].
    #[must_use]
    // Cursor-bank constructor: allocates the per-rack buffers once per
    // worker (via sweep_scratch), never in the per-step fold.
    // mira-lint: allow(alloc-in-hot-path)
    pub fn flow_cursor(&self) -> FlowCursor {
        FlowCursor {
            per_rack: vec![NoiseCursor::default(); self.conductance.len()],
            weights: Vec::with_capacity(self.conductance.len()),
            lanes: self.drift.fractal_bank(1, self.conductance.len()),
        }
    }

    /// [`Self::conductance`] through a drift cursor; bit-identical to the
    /// cold path from any prior cursor state.
    #[must_use]
    // Dimensionless relative conductance. mira-lint: allow(raw-f64-in-public-api)
    pub fn conductance_with(&self, rack: RackId, t: SimTime, cursor: &mut NoiseCursor) -> f64 {
        let phase = convert::f64_from_i64(t.epoch_seconds())
            + convert::f64_from_usize(rack.index()) * 8.64e6;
        let drift = self.drift.sample_with(phase, cursor) * 0.012;
        (self.conductance[rack.index()] + drift).max(0.05)
    }

    /// [`Self::distribute`] written into a reusable buffer: flows are
    /// bit-identical and no heap allocation happens once `out` and the
    /// cursor are warm.
    pub fn distribute_into(
        &self,
        t: SimTime,
        setpoint: Gpm,
        valve_open: &[bool; RackId::COUNT],
        cursor: &mut FlowCursor,
        out: &mut Vec<Gpm>,
    ) {
        cursor.weights.clear();
        for r in RackId::all() {
            let w = if valve_open[r.index()] {
                self.conductance_with(r, t, &mut cursor.per_rack[r.index()])
            } else {
                0.0
            };
            cursor.weights.push(w);
        }
        let total: f64 = cursor.weights.iter().sum();
        out.clear();
        if total <= 0.0 {
            out.resize(RackId::COUNT, Gpm::new(0.0));
            return;
        }
        out.extend(cursor.weights.iter().map(|w| setpoint * (w / total)));
    }

    /// [`Self::distribute_into`] as a lane kernel: rack `i`'s flow lands
    /// in `out[i]` in GPM, with the weight buffer living on the stack —
    /// no heap allocation at all, warm or cold.
    ///
    /// Bit-identical to [`Self::distribute`]: drift is the same noise at
    /// the same per-rack phase (evaluated through the one-octave lane
    /// bank, which is exactly `sample`), weights apply the same
    /// conductance/floor expressions in rack order, the total is the
    /// same lane-order sum, and each lane applies the same
    /// `setpoint * (w / total)` expression. Drift is evaluated for
    /// closed-valve lanes too (the scalar path skips them) and then
    /// masked to zero — a discarded pure value, which cannot perturb any
    /// other lane, and cursor refills are bit-neutral from any state.
    // Raw GPM lanes; the materialized per-step view re-wraps them in
    // `Gpm`. Lane indexing is `enumerate` over same-length `[_; 48]`
    // rows. mira-lint: allow(raw-f64-in-public-api, panic-reachability)
    pub fn distribute_lanes(
        &self,
        t: SimTime,
        setpoint: Gpm,
        valve_open: &[bool; RackId::COUNT],
        cursor: &mut FlowCursor,
        out: &mut [f64; RackId::COUNT],
    ) {
        let base = convert::f64_from_i64(t.epoch_seconds());
        cursor.lanes.fractal_lanes_into(base, 8.64e6, out);
        for (i, w) in out.iter_mut().enumerate() {
            *w = if valve_open[i] {
                (self.conductance[i] + *w * 0.012).max(0.05)
            } else {
                0.0
            };
        }
        let total: f64 = out.iter().sum();
        if total <= 0.0 {
            out.fill(0.0);
            return;
        }
        let sp = setpoint.value();
        for w in out.iter_mut() {
            *w = sp * (*w / total);
        }
    }

    /// The relative spread `(max − min) / min` of per-rack flow with all
    /// valves open at `t`.
    #[must_use]
    // Dimensionless relative spread. mira-lint: allow(raw-f64-in-public-api)
    pub fn spread(&self, t: SimTime, setpoint: Gpm) -> f64 {
        let flows = self.distribute(t, setpoint, &[true; RackId::COUNT]);
        let min = flows
            .iter()
            .map(|f| f.value())
            .fold(f64::INFINITY, f64::min);
        let max = flows
            .iter()
            .map(|f| f.value())
            .fold(f64::NEG_INFINITY, f64::max);
        (max - min) / min
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mira_timeseries::Date;

    fn t0() -> SimTime {
        SimTime::from_date(Date::new(2016, 1, 1))
    }

    #[test]
    fn conserves_total_flow() {
        let net = FlowNetwork::mira(1);
        let flows = net.distribute(t0(), Gpm::new(1300.0), &[true; 48]);
        let total: f64 = flows.iter().map(|f| f.value()).sum();
        assert!((total - 1300.0).abs() < 1e-6);
    }

    #[test]
    fn spread_matches_fig7_band() {
        let net = FlowNetwork::mira(1);
        let s = net.spread(t0(), Gpm::new(1250.0));
        assert!((0.07..=0.15).contains(&s), "spread {s} outside Fig. 7 band");
    }

    #[test]
    fn per_rack_flow_near_26_gpm() {
        let net = FlowNetwork::mira(1);
        let flows = net.distribute(t0(), Gpm::new(1250.0), &[true; 48]);
        for f in &flows {
            assert!((23.0..30.0).contains(&f.value()), "flow {f}");
        }
    }

    #[test]
    fn closed_valve_redistributes() {
        let net = FlowNetwork::mira(1);
        let mut open = [true; 48];
        open[RackId::new(1, 8).index()] = false;
        let flows = net.distribute(t0(), Gpm::new(1250.0), &open);
        assert_eq!(flows[RackId::new(1, 8).index()].value(), 0.0);
        let total: f64 = flows.iter().map(|f| f.value()).sum();
        assert!((total - 1250.0).abs() < 1e-6);
        // Everyone else gets a bit more than before.
        let before = net.distribute(t0(), Gpm::new(1250.0), &[true; 48]);
        let r = RackId::new(0, 0).index();
        assert!(flows[r].value() > before[r].value());
    }

    #[test]
    fn all_valves_closed_is_zero_everywhere() {
        let net = FlowNetwork::mira(1);
        let flows = net.distribute(t0(), Gpm::new(1250.0), &[false; 48]);
        assert!(flows.iter().all(|f| f.value() == 0.0));
    }

    #[test]
    fn cursor_distribution_is_bit_identical() {
        let net = FlowNetwork::mira(7);
        let mut cursor = net.flow_cursor();
        let mut out = Vec::new();
        let mut open = [true; 48];
        let mut t = t0();
        for step in 0..600usize {
            // Exercise valve churn, including the all-closed branch.
            if step % 37 == 0 {
                open[step % 48] = !open[step % 48];
            }
            let all_closed = step == 250;
            let gate = if all_closed { [false; 48] } else { open };
            let sp = Gpm::new(if step < 300 { 1250.0 } else { 1300.0 });
            net.distribute_into(t, sp, &gate, &mut cursor, &mut out);
            let cold = net.distribute(t, sp, &gate);
            assert_eq!(out.len(), cold.len());
            for (a, b) in out.iter().zip(cold.iter()) {
                assert_eq!(a.value().to_bits(), b.value().to_bits());
            }
            // The lane kernel shares the same cursor bank and must agree
            // bit-for-bit with the cold path too.
            let mut lanes = [0.0f64; 48];
            net.distribute_lanes(t, sp, &gate, &mut cursor, &mut lanes);
            for (a, b) in lanes.iter().zip(cold.iter()) {
                assert_eq!(a.to_bits(), b.value().to_bits());
            }
            t += mira_timeseries::Duration::from_minutes(5);
        }
        // A backwards jump must invalidate cleanly.
        let t = t0() - mira_timeseries::Duration::from_days(400);
        net.distribute_into(t, Gpm::new(1250.0), &open, &mut cursor, &mut out);
        assert_eq!(out, net.distribute(t, Gpm::new(1250.0), &open));
    }

    #[test]
    fn drift_is_slow_and_bounded() {
        let net = FlowNetwork::mira(1);
        let rack = RackId::new(2, 3);
        let c0 = net.conductance(rack, t0());
        let c1 = net.conductance(rack, t0() + mira_timeseries::Duration::from_hours(6));
        assert!((c0 - c1).abs() < 0.01, "drift too fast: {c0} vs {c1}");
        assert!((0.85..1.05).contains(&c0));
    }
}
