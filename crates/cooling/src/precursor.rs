//! The telemetry signature in the hours before a coolant monitor failure.
//!
//! Fig. 12 of the paper: the otherwise rock-stable coolant temperatures
//! move hours before a CMF. The inlet temperature sags by up to 7 %
//! starting about four hours out, then snaps up by ~8 % in the last half
//! hour; the outlet follows with a ~5 % dip from three hours out; the
//! flow rate stays flat until roughly 30 minutes before the event and
//! then collapses — often *becoming* the proximate cause.
//!
//! [`PrecursorSignature`] encodes those shapes as multiplicative factors
//! on the healthy channel values as a function of lead time. The
//! simulator applies them to racks with a scheduled CMF; the predictor
//! learns to detect them.

use serde::{Deserialize, Serialize};

use mira_timeseries::Duration;

/// Piecewise-linear interpolation over `(lead_hours, factor)` knots,
/// with `lead_hours` descending toward the failure at 0.
// knots.len() >= 2 is asserted; windows(2) pairs have exactly two
// elements. mira-lint: allow(panic-reachability)
fn interp(knots: &[(f64, f64)], lead_hours: f64) -> f64 {
    assert!(knots.len() >= 2, "interp needs at least two knots");
    if lead_hours >= knots[0].0 {
        return knots[0].1;
    }
    for pair in knots.windows(2) {
        let (h1, f1) = pair[0];
        let (h0, f0) = pair[1];
        if lead_hours >= h0 {
            let t = (lead_hours - h0) / (h1 - h0);
            return f0 + (f1 - f0) * t;
        }
    }
    knots[knots.len() - 1].1
}

/// Multiplicative pre-failure factors for the coolant channels.
///
/// All factors are 1.0 at lead times beyond six hours (no signature) and
/// reach their Fig. 12 extremes as the failure approaches.
///
/// ```
/// use mira_cooling::PrecursorSignature;
/// use mira_timeseries::Duration;
///
/// let sig = PrecursorSignature::mira();
/// // Four hours out the inlet has sagged ~7 %.
/// let f = sig.inlet_factor(Duration::from_hours(3));
/// assert!(f < 0.94);
/// // Flow is still nominal one hour out...
/// assert!((sig.flow_factor(Duration::from_hours(1)) - 1.0).abs() < 1e-9);
/// // ...and collapsing at the event.
/// assert!(sig.flow_factor(Duration::ZERO) < 0.7);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrecursorSignature {
    inlet_knots: Vec<(f64, f64)>,
    outlet_knots: Vec<(f64, f64)>,
    flow_knots: Vec<(f64, f64)>,
}

impl PrecursorSignature {
    /// The signature calibrated to Fig. 12.
    #[must_use]
    pub fn mira() -> Self {
        Self {
            // Inlet: sag begins ~5 h out, trough −7 % from 4 h to 1 h,
            // sharp recovery overshooting to +0.5 % at the event
            // (an ~8 % rise off the trough in the last half hour).
            inlet_knots: vec![
                (12.0, 1.0),
                (9.0, 0.9965),
                (6.0, 0.991),
                (5.0, 0.985),
                (4.0, 0.935),
                (1.0, 0.93),
                (0.5, 0.945),
                (0.0, 1.005),
            ],
            // Outlet: follows with a −5 % dip from 3 h out, partial
            // recovery at the event. A faint drift exists earlier — far
            // below the Fig. 12 plotting scale but learnable.
            outlet_knots: vec![
                (12.0, 1.0),
                (8.0, 0.999),
                (6.0, 0.997),
                (4.5, 0.99),
                (3.0, 0.95),
                (0.5, 0.95),
                (0.0, 0.97),
            ],
            // Flow: flat until ~30 min out, then rapid collapse.
            flow_knots: vec![(12.0, 1.0), (0.5, 1.0), (0.25, 0.85), (0.0, 0.55)],
        }
    }

    /// Inlet-temperature factor at `lead` before the failure.
    #[must_use]
    // Dimensionless multiplier on the healthy channel value. mira-lint: allow(raw-f64-in-public-api)
    pub fn inlet_factor(&self, lead: Duration) -> f64 {
        interp(&self.inlet_knots, lead.as_hours().max(0.0))
    }

    /// Outlet-temperature factor at `lead` before the failure.
    #[must_use]
    // Dimensionless multiplier on the healthy channel value. mira-lint: allow(raw-f64-in-public-api)
    pub fn outlet_factor(&self, lead: Duration) -> f64 {
        interp(&self.outlet_knots, lead.as_hours().max(0.0))
    }

    /// Flow factor at `lead` before the failure.
    #[must_use]
    // Dimensionless multiplier on the healthy channel value. mira-lint: allow(raw-f64-in-public-api)
    pub fn flow_factor(&self, lead: Duration) -> f64 {
        interp(&self.flow_knots, lead.as_hours().max(0.0))
    }

    /// The horizon beyond which no signature is present. The visible
    /// Fig. 12 shape lives within six hours; a faint (sub-1 %) drift
    /// extends to twelve, which is what lets a learned detector work at
    /// long lead times where fixed thresholds cannot.
    #[must_use]
    pub fn horizon(&self) -> Duration {
        Duration::from_hours(12)
    }

    /// Per-event severity of the signature, in `[0.5, 1.2]`.
    ///
    /// Not every incident telegraphs equally: some loop anomalies are
    /// violent, some barely move the needle until the end. The severity
    /// is a deterministic hash of the failure instant, and scales every
    /// channel's deviation from 1.0. This is what keeps Fig. 13's
    /// accuracy *curve* a curve — weak events are missed at long leads
    /// and caught close in — instead of a step.
    #[must_use]
    // Dimensionless severity in [0.5, 1.2]. mira-lint: allow(raw-f64-in-public-api)
    pub fn event_severity(&self, rack_index: usize, failure_at_epoch: i64) -> f64 {
        let mut z = (failure_at_epoch as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((rack_index as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
        z = (z ^ (z >> 29)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 32;
        // 2^53: top 53 bits map exactly onto the f64 mantissa.
        let u = mira_units::convert::f64_from_u64(z >> 11) / 9_007_199_254_740_992.0;
        0.5 + 0.7 * u
    }

    /// Scales a factor's deviation from 1.0 by an event severity.
    #[must_use]
    // Dimensionless factors in, dimensionless factor out. mira-lint: allow(raw-f64-in-public-api)
    pub fn scale(factor: f64, severity: f64) -> f64 {
        1.0 + (factor - 1.0) * severity
    }
}

impl Default for PrecursorSignature {
    fn default() -> Self {
        Self::mira()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn no_signature_beyond_horizon() {
        let sig = PrecursorSignature::mira();
        for h in [12, 24, 48] {
            let lead = Duration::from_hours(h);
            assert_eq!(sig.inlet_factor(lead), 1.0);
            assert_eq!(sig.outlet_factor(lead), 1.0);
            assert_eq!(sig.flow_factor(lead), 1.0);
        }
    }

    #[test]
    fn early_drift_is_faint() {
        // Between 6 and 12 hours out the drift exists but stays under
        // 1 % — invisible at Fig. 12's plotting scale.
        let sig = PrecursorSignature::mira();
        for mins in [6 * 60 + 5, 8 * 60, 10 * 60] {
            let lead = Duration::from_minutes(mins);
            assert!(sig.inlet_factor(lead) < 1.0);
            assert!(sig.inlet_factor(lead) > 0.99);
            assert!(sig.outlet_factor(lead) > 0.995);
            assert_eq!(sig.flow_factor(lead), 1.0);
        }
    }

    #[test]
    fn severity_is_bounded_and_deterministic() {
        let sig = PrecursorSignature::mira();
        for k in 0..200 {
            let s = sig.event_severity(k % 48, 1_400_000_000 + k as i64 * 9973);
            assert!((0.5..=1.2).contains(&s), "severity {s}");
        }
        assert_eq!(
            sig.event_severity(7, 1_450_000_000),
            sig.event_severity(7, 1_450_000_000)
        );
        // Scaling leaves 1.0 fixed and contracts deviations.
        assert_eq!(PrecursorSignature::scale(1.0, 0.7), 1.0);
        assert!((PrecursorSignature::scale(0.9, 0.5) - 0.95).abs() < 1e-12);
    }

    #[test]
    fn inlet_trough_is_seven_percent() {
        let sig = PrecursorSignature::mira();
        let trough = sig.inlet_factor(Duration::from_hours(2));
        assert!((0.92..0.94).contains(&trough), "trough {trough}");
    }

    #[test]
    fn inlet_recovers_eight_percent_in_last_half_hour() {
        let sig = PrecursorSignature::mira();
        let trough = sig.inlet_factor(Duration::from_hours(1));
        let at_event = sig.inlet_factor(Duration::ZERO);
        let rise = (at_event - trough) / trough;
        assert!((0.06..0.10).contains(&rise), "rise {rise}");
    }

    #[test]
    fn outlet_dip_is_five_percent_at_three_hours() {
        let sig = PrecursorSignature::mira();
        let dip = sig.outlet_factor(Duration::from_hours(3));
        assert!((0.945..0.955).contains(&dip), "dip {dip}");
    }

    #[test]
    fn flow_flat_then_collapses() {
        let sig = PrecursorSignature::mira();
        assert_eq!(sig.flow_factor(Duration::from_hours(2)), 1.0);
        assert_eq!(sig.flow_factor(Duration::from_minutes(30)), 1.0);
        let at_event = sig.flow_factor(Duration::ZERO);
        assert!((0.5..0.6).contains(&at_event), "collapse {at_event}");
    }

    #[test]
    fn negative_lead_clamps_to_event() {
        let sig = PrecursorSignature::mira();
        assert_eq!(
            sig.flow_factor(Duration::from_seconds(-100)),
            sig.flow_factor(Duration::ZERO)
        );
    }

    proptest! {
        #[test]
        fn factors_are_bounded_and_continuous(mins in 0i64..400) {
            let sig = PrecursorSignature::mira();
            let lead = Duration::from_minutes(mins);
            let next = Duration::from_minutes(mins + 1);
            for f in [
                PrecursorSignature::inlet_factor,
                PrecursorSignature::outlet_factor,
                PrecursorSignature::flow_factor,
            ] {
                let a = f(&sig, lead);
                let b = f(&sig, next);
                prop_assert!((0.5..=1.05).contains(&a));
                prop_assert!((a - b).abs() < 0.05, "jump {a} -> {b}");
            }
        }
    }
}
