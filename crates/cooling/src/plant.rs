//! The Argonne Chilled Water Plant: chillers, waterside economizer, and
//! the free-cooling energy ledger.

use serde::{Deserialize, Serialize};

use mira_timeseries::{Duration, SimTime};
use mira_units::{convert, Fahrenheit, KilowattHours, Kilowatts, Watts};
use mira_weather::{NoiseCursor, ValueNoise};

/// Cooling capacity of one chiller tower in refrigeration tons.
pub const CHILLER_TONS: f64 = 1500.0;

/// Number of chiller towers built for Mira.
pub const CHILLER_COUNT: u32 = 2;

/// kW of heat removal per refrigeration ton.
const KW_PER_TON: f64 = 3.517;

/// Electrical draw of the chillers at 100 % CWP output, in kW.
///
/// Back-computed from the paper's headline number: running the economizer
/// at 100 % of CWP capacity saves 17,820 kWh per day, i.e. 742.5 kW of
/// chiller electrical load avoided.
pub const CHILLER_FULL_LOAD_KW: f64 = 17_820.0 / 24.0;

/// The plant's response at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlantLoad {
    /// Chilled-water supply temperature delivered to the external loop.
    pub supply_temperature: Fahrenheit,
    /// Fraction of the heat load carried by the waterside economizer.
    pub free_cooling_fraction: f64,
    /// Electrical draw of the chillers at this instant.
    pub chiller_power: Kilowatts,
    /// Electrical draw that the economizer is currently avoiding.
    pub avoided_power: Kilowatts,
}

/// The chilled water plant.
///
/// Supply temperature is held at the 64 °F setpoint by the chillers; when
/// the economizer carries part of the load (cold Chicago months) the
/// supply runs slightly warmer — environmental cooling is not as precise
/// as mechanical chilling, which is exactly the inlet-temperature bump the
/// paper observes December–March (Fig. 4d). Operational uplifts (the
/// Theta integration transient of 2016) are applied by the caller via
/// `supply_uplift`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChilledWaterPlant {
    setpoint: Fahrenheit,
    /// Extra supply temperature at 100 % free cooling.
    economizer_penalty: Fahrenheit,
    control_noise: ValueNoise,
}

impl ChilledWaterPlant {
    /// The Mira CWP calibration (64 °F setpoint).
    #[must_use]
    pub fn mira(seed: u64) -> Self {
        Self {
            setpoint: Fahrenheit::new(64.0),
            economizer_penalty: Fahrenheit::new(1.25),
            control_noise: ValueNoise::new(seed ^ 0xC001_CAFE, 6.0 * 3600.0),
        }
    }

    /// The chilled-water setpoint.
    #[must_use]
    pub fn setpoint(&self) -> Fahrenheit {
        self.setpoint
    }

    /// Total heat-removal capacity of the plant.
    #[must_use]
    pub fn capacity_kw(&self) -> Kilowatts {
        Kilowatts::new(CHILLER_TONS * f64::from(CHILLER_COUNT) * KW_PER_TON)
    }

    /// Computes the plant state at `t`.
    ///
    /// * `free_cooling_fraction` — how much of the load the economizer
    ///   can carry (from the weather model), clamped to `[0, 1]`.
    /// * `heat_load` — heat arriving from the data center.
    /// * `supply_uplift` — operational supply-temperature offset (e.g.
    ///   the 2016 Theta integration transient).
    #[must_use]
    // Dimensionless economizer fraction. mira-lint: allow(raw-f64-in-public-api)
    pub fn respond(
        &self,
        t: SimTime,
        free_cooling_fraction: f64,
        heat_load: Watts,
        supply_uplift: Fahrenheit,
    ) -> PlantLoad {
        self.respond_with(
            t,
            free_cooling_fraction,
            heat_load,
            supply_uplift,
            &mut NoiseCursor::default(),
        )
    }

    /// [`Self::respond`] through a control-noise cursor; bit-identical
    /// to the cold path from any prior cursor state.
    #[must_use]
    // Dimensionless economizer fraction. mira-lint: allow(raw-f64-in-public-api)
    pub fn respond_with(
        &self,
        t: SimTime,
        free_cooling_fraction: f64,
        heat_load: Watts,
        supply_uplift: Fahrenheit,
        cursor: &mut NoiseCursor,
    ) -> PlantLoad {
        let free = free_cooling_fraction.clamp(0.0, 1.0);
        let load_kw = heat_load.to_kilowatts().value().max(0.0);
        let utilization = (load_kw / self.capacity_kw().value()).clamp(0.0, 1.0);

        // Chillers carry the remainder of the load; electrical draw
        // scales with carried load relative to full CWP output.
        let chiller_power = Kilowatts::new(CHILLER_FULL_LOAD_KW * utilization * (1.0 - free));
        let avoided_power = Kilowatts::new(CHILLER_FULL_LOAD_KW * utilization * free);

        let noise = self
            .control_noise
            .sample_with(convert::f64_from_i64(t.epoch_seconds()), cursor)
            * 0.2;
        let supply =
            self.setpoint + self.economizer_penalty * free + supply_uplift + Fahrenheit::new(noise);

        PlantLoad {
            supply_temperature: supply,
            free_cooling_fraction: free,
            chiller_power,
            avoided_power,
        }
    }
}

/// Accumulates economizer savings over time — the ledger behind the
/// paper's "2,174,040 kWh per free-cooling season" figure.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FreeCoolingLedger {
    saved: KilowattHours,
    chiller_energy: KilowattHours,
}

impl FreeCoolingLedger {
    /// Creates an empty ledger.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one plant interval.
    pub fn record(&mut self, load: &PlantLoad, dt: Duration) {
        let hours = dt.as_hours();
        self.saved += load.avoided_power.for_hours(hours);
        self.chiller_energy += load.chiller_power.for_hours(hours);
    }

    /// Merges another ledger into this one (energies are additive, so
    /// ledgers over disjoint spans combine exactly).
    pub fn merge(&mut self, other: &FreeCoolingLedger) {
        self.saved += other.saved;
        self.chiller_energy += other.chiller_energy;
    }

    /// Total chiller energy avoided by the economizer.
    #[must_use]
    pub fn saved(&self) -> KilowattHours {
        self.saved
    }

    /// Total chiller energy actually spent.
    #[must_use]
    pub fn chiller_energy(&self) -> KilowattHours {
        self.chiller_energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mira_timeseries::Date;

    fn t0() -> SimTime {
        SimTime::from_date(Date::new(2015, 1, 15))
    }

    #[test]
    fn capacity_matches_two_towers() {
        let p = ChilledWaterPlant::mira(0);
        assert!((p.capacity_kw().value() - 10_551.0).abs() < 1.0);
    }

    #[test]
    fn full_free_cooling_idles_the_chillers() {
        let p = ChilledWaterPlant::mira(0);
        let load = p.respond(t0(), 1.0, Watts::new(3.0e6), Fahrenheit::new(0.0));
        assert_eq!(load.chiller_power.value(), 0.0);
        assert!(load.avoided_power.value() > 0.0);
    }

    #[test]
    fn summer_runs_chillers() {
        let p = ChilledWaterPlant::mira(0);
        let load = p.respond(t0(), 0.0, Watts::new(3.0e6), Fahrenheit::new(0.0));
        assert!(load.chiller_power.value() > 0.0);
        assert_eq!(load.avoided_power.value(), 0.0);
    }

    #[test]
    fn economizer_supply_runs_warmer() {
        let p = ChilledWaterPlant::mira(0);
        let winter = p.respond(t0(), 1.0, Watts::new(3.0e6), Fahrenheit::new(0.0));
        let summer = p.respond(t0(), 0.0, Watts::new(3.0e6), Fahrenheit::new(0.0));
        assert!(
            winter.supply_temperature.value() > summer.supply_temperature.value() + 0.8,
            "winter {} vs summer {}",
            winter.supply_temperature,
            summer.supply_temperature
        );
    }

    #[test]
    fn uplift_passes_through() {
        let p = ChilledWaterPlant::mira(0);
        let base = p.respond(t0(), 0.0, Watts::new(3.0e6), Fahrenheit::new(0.0));
        let lifted = p.respond(t0(), 0.0, Watts::new(3.0e6), Fahrenheit::new(2.0));
        assert!(
            (lifted.supply_temperature.value() - base.supply_temperature.value() - 2.0).abs()
                < 1e-9
        );
    }

    #[test]
    fn paper_daily_saving_at_full_capacity() {
        let p = ChilledWaterPlant::mira(0);
        // Full CWP output covered entirely by the economizer.
        let load = p.respond(
            t0(),
            1.0,
            Watts::new(p.capacity_kw().value() * 1000.0),
            Fahrenheit::new(0.0),
        );
        let mut ledger = FreeCoolingLedger::new();
        ledger.record(&load, Duration::from_days(1));
        assert!(
            (ledger.saved().value() - 17_820.0).abs() < 1.0,
            "daily saving {}",
            ledger.saved()
        );
    }

    #[test]
    fn seasonal_saving_matches_paper_order() {
        // 122 days of December-March at full free cooling and capacity.
        let p = ChilledWaterPlant::mira(0);
        let load = p.respond(
            t0(),
            1.0,
            Watts::new(p.capacity_kw().value() * 1000.0),
            Fahrenheit::new(0.0),
        );
        let mut ledger = FreeCoolingLedger::new();
        ledger.record(&load, Duration::from_days(122));
        assert!((ledger.saved().value() - 2_174_040.0).abs() < 10.0);
    }

    #[test]
    fn cursor_response_is_bit_identical() {
        let p = ChilledWaterPlant::mira(99);
        let mut cursor = NoiseCursor::default();
        let mut t = t0();
        for step in 0..500 {
            let free = f64::from(step % 11) / 10.0;
            let load = Watts::new(2.0e6 + f64::from(step) * 1.0e3);
            let uplift = Fahrenheit::new(if step > 300 { 2.0 } else { 0.0 });
            let warm = p.respond_with(t, free, load, uplift, &mut cursor);
            assert_eq!(warm, p.respond(t, free, load, uplift));
            t += Duration::from_minutes(5);
        }
        // A jump far outside the cached noise cell must invalidate.
        let t = t0() + Duration::from_days(900);
        assert_eq!(
            p.respond_with(t, 0.3, Watts::new(3.0e6), Fahrenheit::new(0.0), &mut cursor),
            p.respond(t, 0.3, Watts::new(3.0e6), Fahrenheit::new(0.0))
        );
    }

    #[test]
    fn fractions_are_clamped() {
        let p = ChilledWaterPlant::mira(0);
        let load = p.respond(t0(), 7.0, Watts::new(3.0e6), Fahrenheit::new(0.0));
        assert_eq!(load.free_cooling_fraction, 1.0);
        let load = p.respond(t0(), -2.0, Watts::new(3.0e6), Fahrenheit::new(0.0));
        assert_eq!(load.free_cooling_fraction, 0.0);
    }
}
