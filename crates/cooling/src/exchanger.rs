//! The per-rack heat exchanger between the external and internal loops.

use serde::{Deserialize, Serialize};

use mira_units::{Fahrenheit, Gpm, Watts};

/// Specific heat of water in J/(kg·K).
const WATER_CP: f64 = 4186.0;

/// Counter-flow heat exchanger under one rack.
///
/// The external (chilled) loop cools the rack's internal loop; the heat
/// picked up by the internal loop raises the coolant temperature between
/// the inlet and outlet ports the coolant monitor instruments:
///
/// `ΔT = Q / (ṁ · c_p · ε)`
///
/// where `ε` is the exchanger effectiveness — sub-unity effectiveness
/// shows up as a *larger* measured internal-loop ΔT for the same heat
/// transferred to the external loop.
///
/// With the paper's numbers this closes: ≈26 GPM per rack (1250 GPM / 48)
/// and a ≈64 °F inlet / ≈79 °F outlet split implies ≈55–60 kW of heat per
/// rack, which times 48 racks is the 2.5–2.9 MW system draw.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeatExchanger {
    effectiveness: f64,
}

impl HeatExchanger {
    /// The Mira HX calibration.
    #[must_use]
    pub fn mira() -> Self {
        Self {
            effectiveness: 0.92,
        }
    }

    /// Creates an exchanger with the given effectiveness.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < effectiveness <= 1`.
    #[must_use]
    // Dimensionless effectiveness in (0, 1]. mira-lint: allow(raw-f64-in-public-api)
    pub fn new(effectiveness: f64) -> Self {
        assert!(
            effectiveness > 0.0 && effectiveness <= 1.0,
            "effectiveness must be in (0, 1]"
        );
        Self { effectiveness }
    }

    /// Exchanger effectiveness.
    #[must_use]
    // Dimensionless effectiveness in (0, 1]. mira-lint: allow(raw-f64-in-public-api)
    pub fn effectiveness(&self) -> f64 {
        self.effectiveness
    }

    /// Coolant temperature rise across the rack for `heat` watts of load
    /// at the given flow.
    ///
    /// Returns a zero rise for non-positive flow (valve closed): with no
    /// coolant movement the monitor reads no ΔT (and the rack is about to
    /// trip on temperature instead).
    #[must_use]
    pub fn delta_t(&self, flow: Gpm, heat: Watts) -> Fahrenheit {
        let m_dot = flow.mass_flow_kg_per_s();
        if m_dot <= 1e-9 || heat.value() <= 0.0 {
            return Fahrenheit::new(0.0);
        }
        let dt_kelvin = heat.value() / (m_dot * WATER_CP * self.effectiveness);
        // A kelvin step is 1.8 Fahrenheit steps.
        Fahrenheit::new(dt_kelvin * 1.8)
    }

    /// Outlet coolant temperature for a given inlet, flow and heat load.
    #[must_use]
    pub fn outlet_temperature(&self, inlet: Fahrenheit, flow: Gpm, heat: Watts) -> Fahrenheit {
        inlet + self.delta_t(flow, heat)
    }

    /// The heat load implied by an observed ΔT at a given flow — the
    /// inverse model, useful for validating telemetry.
    #[must_use]
    pub fn implied_heat(&self, delta_t: Fahrenheit, flow: Gpm) -> Watts {
        let m_dot = flow.mass_flow_kg_per_s();
        Watts::new((delta_t.value() / 1.8) * m_dot * WATER_CP * self.effectiveness)
    }
}

impl Default for HeatExchanger {
    fn default() -> Self {
        Self::mira()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_operating_point_closes() {
        let hx = HeatExchanger::mira();
        // 26 GPM, ~57 kW -> outlet ~79 F from 64 F inlet.
        let out =
            hx.outlet_temperature(Fahrenheit::new(64.0), Gpm::new(26.0), Watts::new(57_000.0));
        assert!(
            (78.0..80.5).contains(&out.value()),
            "outlet {out} off the paper's ≈79 F"
        );
    }

    #[test]
    fn zero_flow_gives_zero_delta() {
        let hx = HeatExchanger::mira();
        assert_eq!(hx.delta_t(Gpm::new(0.0), Watts::new(50_000.0)).value(), 0.0);
        assert_eq!(hx.delta_t(Gpm::new(26.0), Watts::new(-5.0)).value(), 0.0);
    }

    #[test]
    fn inverse_model_round_trips() {
        let hx = HeatExchanger::mira();
        let flow = Gpm::new(27.5);
        let q = Watts::new(61_000.0);
        let dt = hx.delta_t(flow, q);
        assert!((hx.implied_heat(dt, flow).value() - q.value()).abs() < 1.0);
    }

    #[test]
    fn lower_effectiveness_raises_measured_delta() {
        let good = HeatExchanger::new(0.95);
        let fouled = HeatExchanger::new(0.75);
        let flow = Gpm::new(26.0);
        assert!(
            fouled.delta_t(flow, Watts::new(50_000.0)) > good.delta_t(flow, Watts::new(50_000.0))
        );
    }

    #[test]
    #[should_panic(expected = "effectiveness must be in (0, 1]")]
    fn rejects_bad_effectiveness() {
        let _ = HeatExchanger::new(1.5);
    }

    proptest! {
        #[test]
        fn delta_monotone_in_heat(q1 in 0.0f64..100_000.0, q2 in 0.0f64..100_000.0) {
            let hx = HeatExchanger::mira();
            let flow = Gpm::new(26.0);
            let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            prop_assert!(hx.delta_t(flow, Watts::new(lo)).value() <= hx.delta_t(flow, Watts::new(hi)).value());
        }

        #[test]
        fn delta_inverse_in_flow(f1 in 5.0f64..50.0, f2 in 5.0f64..50.0) {
            let hx = HeatExchanger::mira();
            let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
            prop_assert!(
                hx.delta_t(Gpm::new(hi), Watts::new(50_000.0)).value()
                    <= hx.delta_t(Gpm::new(lo), Watts::new(50_000.0)).value() + 1e-12
            );
        }
    }
}
