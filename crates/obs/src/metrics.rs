//! Mergeable metric accumulators: counters, gauges, histograms.
//!
//! # Merge discipline
//!
//! [`MetricsPartial::merge`] absorbs a partial covering the span
//! *after* this one's, mirroring the sweep executor's chronological
//! shard merge. Counters and histogram bucket counts are integer folds
//! and therefore associative exactly; gauge and histogram sums are
//! floating-point folds whose bits depend on association — but the
//! executor always merges in the same shard order regardless of worker
//! count, so snapshots stay byte-identical across
//! `MIRA_SWEEP_THREADS` settings.
//!
//! # Conflicts
//!
//! Keys are `&'static str`, fixed at the call site, so two call sites
//! disagreeing on a key's kind (or a histogram's bucket bounds) is a
//! programming error. The accumulator must not panic on the sweep hot
//! path, so conflicts are resolved *left-biased* — the existing value
//! wins, the conflicting operation is dropped — and tallied under the
//! reserved [`CONFLICT_KEY`] counter so the bug is visible in every
//! snapshot instead of aborting a six-year sweep.

use std::collections::BTreeMap;

use mira_units::convert;

/// Counter bumped whenever an operation or merge is dropped because a
/// key was already registered with a different kind or bucket bounds.
pub const CONFLICT_KEY: &str = "obs.conflicts";

/// A fixed-bucket histogram: `bounds` are inclusive upper bucket edges,
/// plus one implicit overflow bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: &'static [f64],
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Histogram {
    // Constructed once per metric key via `or_insert_with`; steady-state
    // observes only bump existing buckets, so the bucket vector is
    // bounded by key cardinality, not by step count.
    // mira-lint: allow(alloc-in-hot-path)
    fn new(bounds: &'static [f64]) -> Self {
        Self {
            bounds,
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    fn push(&mut self, value: f64) {
        let bucket = self.bounds.iter().take_while(|b| value > **b).count();
        if let Some(c) = self.counts.get_mut(bucket) {
            *c += 1;
        }
        self.sum += value;
        self.count += 1;
    }

    fn same_bounds(&self, bounds: &[f64]) -> bool {
        self.bounds.len() == bounds.len()
            && self
                .bounds
                .iter()
                .zip(bounds)
                .all(|(a, b)| a.total_cmp(b).is_eq())
    }

    fn absorb(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.sum += other.sum;
        self.count += other.count;
    }

    /// Inclusive upper bucket edges (the overflow bucket is implicit).
    #[must_use]
    pub fn bounds(&self) -> &'static [f64] {
        self.bounds
    }

    /// Per-bucket observation counts (`bounds.len() + 1` entries, the
    /// last being the overflow bucket).
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Sum of all observed values.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Total number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }
}

/// One metric accumulator.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotonically increasing event count.
    Counter(u64),
    /// A sampled level, kept as a count-weighted blend.
    Gauge {
        /// Sum of all samples.
        sum: f64,
        /// Number of samples.
        count: u64,
    },
    /// A fixed-bucket distribution.
    Histogram(Histogram),
}

/// A mergeable bag of metrics, keyed by static strings in
/// deterministic (lexicographic) order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsPartial {
    values: BTreeMap<&'static str, MetricValue>,
}

impl MetricsPartial {
    /// An empty partial.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Bumps the counter `key` by `n`.
    pub fn add(&mut self, key: &'static str, n: u64) {
        let hit = match self.values.entry(key).or_insert(MetricValue::Counter(0)) {
            MetricValue::Counter(c) => {
                *c += n;
                true
            }
            _ => false,
        };
        if !hit {
            self.conflict();
        }
    }

    /// Samples the gauge `key`.
    pub fn gauge(&mut self, key: &'static str, value: f64) {
        let hit = match self
            .values
            .entry(key)
            .or_insert(MetricValue::Gauge { sum: 0.0, count: 0 })
        {
            MetricValue::Gauge { sum, count } => {
                *sum += value;
                *count += 1;
                true
            }
            _ => false,
        };
        if !hit {
            self.conflict();
        }
    }

    /// Observes `value` into the histogram `key` with the given bucket
    /// `bounds` (inclusive upper edges; an overflow bucket is added).
    pub fn observe(&mut self, key: &'static str, bounds: &'static [f64], value: f64) {
        let hit = match self
            .values
            .entry(key)
            .or_insert_with(|| MetricValue::Histogram(Histogram::new(bounds)))
        {
            MetricValue::Histogram(h) if h.same_bounds(bounds) => {
                h.push(value);
                true
            }
            _ => false,
        };
        if !hit {
            self.conflict();
        }
    }

    fn conflict(&mut self) {
        if let MetricValue::Counter(c) = self
            .values
            .entry(CONFLICT_KEY)
            .or_insert(MetricValue::Counter(0))
        {
            *c += 1;
        }
    }

    /// Absorbs a partial covering the span after this one's. Counters
    /// and histogram buckets add; gauges blend count-weighted; kind or
    /// bound mismatches are dropped left-biased and tallied under
    /// [`CONFLICT_KEY`].
    pub fn merge(&mut self, later: &MetricsPartial) {
        for (key, theirs) in &later.values {
            if !self.values.contains_key(key) {
                self.values.insert(key, theirs.clone());
                continue;
            }
            let hit = match (self.values.get_mut(key), theirs) {
                (Some(MetricValue::Counter(a)), MetricValue::Counter(b)) => {
                    *a += b;
                    true
                }
                (
                    Some(MetricValue::Gauge { sum, count }),
                    MetricValue::Gauge { sum: s2, count: c2 },
                ) => {
                    *sum += s2;
                    *count += c2;
                    true
                }
                (Some(MetricValue::Histogram(a)), MetricValue::Histogram(b))
                    if a.same_bounds(b.bounds) =>
                {
                    a.absorb(b);
                    true
                }
                _ => false,
            };
            if !hit {
                self.conflict();
            }
        }
    }

    /// The counter `key`, if recorded.
    #[must_use]
    pub fn counter(&self, key: &str) -> Option<u64> {
        match self.values.get(key) {
            Some(MetricValue::Counter(c)) => Some(*c),
            _ => None,
        }
    }

    /// The gauge `key` as `(count, mean)`, if recorded.
    #[must_use]
    pub fn gauge_stats(&self, key: &str) -> Option<(u64, f64)> {
        match self.values.get(key) {
            Some(MetricValue::Gauge { sum, count }) if *count > 0 => {
                Some((*count, *sum / convert::f64_from_u64(*count)))
            }
            _ => None,
        }
    }

    /// The histogram `key`, if recorded.
    #[must_use]
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        match self.values.get(key) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of distinct keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Iterates keys and values in deterministic (lexicographic) order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &MetricValue)> {
        self.values.iter().map(|(k, v)| (*k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BOUNDS: &[f64] = &[1.0, 2.0, 4.0];

    #[test]
    fn counters_add() {
        let mut m = MetricsPartial::new();
        m.add("a", 2);
        m.add("a", 3);
        assert_eq!(m.counter("a"), Some(5));
        assert_eq!(m.counter("missing"), None);
    }

    #[test]
    fn gauges_blend_count_weighted() {
        let mut m = MetricsPartial::new();
        m.gauge("g", 1.0);
        m.gauge("g", 3.0);
        let (count, mean) = m.gauge_stats("g").unwrap();
        assert_eq!(count, 2);
        assert!((mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_are_inclusive_upper_edges() {
        let mut m = MetricsPartial::new();
        for v in [0.5, 1.0, 1.5, 4.0, 9.0] {
            m.observe("h", BOUNDS, v);
        }
        let h = m.histogram("h").unwrap();
        // <=1: {0.5, 1.0}; <=2: {1.5}; <=4: {4.0}; overflow: {9.0}.
        assert_eq!(h.counts(), &[2, 1, 1, 1]);
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn merge_matches_single_fold() {
        let mut whole = MetricsPartial::new();
        let mut left = MetricsPartial::new();
        let mut right = MetricsPartial::new();
        for (i, v) in [0.5, 1.5, 2.5, 5.0].iter().enumerate() {
            whole.add("n", 1);
            whole.gauge("g", *v);
            whole.observe("h", BOUNDS, *v);
            let part = if i < 2 { &mut left } else { &mut right };
            part.add("n", 1);
            part.gauge("g", *v);
            part.observe("h", BOUNDS, *v);
        }
        left.merge(&right);
        assert_eq!(left, whole);
    }

    #[test]
    fn kind_conflicts_are_dropped_and_tallied() {
        let mut m = MetricsPartial::new();
        m.add("k", 1);
        m.gauge("k", 2.0); // wrong kind: dropped.
        assert_eq!(m.counter("k"), Some(1));
        assert_eq!(m.counter(CONFLICT_KEY), Some(1));

        let mut other = MetricsPartial::new();
        other.gauge("k", 1.0);
        m.merge(&other);
        assert_eq!(m.counter("k"), Some(1), "merge conflict keeps left");
        assert_eq!(m.counter(CONFLICT_KEY), Some(2));
    }

    #[test]
    fn bound_mismatch_is_a_conflict() {
        const OTHER: &[f64] = &[10.0];
        let mut m = MetricsPartial::new();
        m.observe("h", BOUNDS, 1.0);
        m.observe("h", OTHER, 1.0);
        assert_eq!(m.histogram("h").unwrap().count(), 1);
        assert_eq!(m.counter(CONFLICT_KEY), Some(1));
    }
}
