//! Deterministic observability for the `mira-ops` workspace.
//!
//! Production telemetry stacks live or die on a cheap, always-on
//! instrumentation layer with a uniform data model. This crate is that
//! layer for the simulator itself, split along the workspace's one
//! non-negotiable axis — determinism:
//!
//! - **Metrics** ([`MetricsPartial`]): counters, gauges, and
//!   fixed-bucket histograms against `&'static str` keys. A partial is
//!   a *mergeable* accumulator: sweep shards each fold their own, and
//!   merging in chronological shard order reproduces a single
//!   sequential fold — bit-for-bit identical snapshots for any worker
//!   count, exactly like the aggregation stack in `mira-core`.
//! - **Spans** ([`SpanStats`] via [`Collector`]): scoped regions keyed
//!   to *sim-time* (step index). The deterministic half (entry counts,
//!   sim-steps covered) lives in the byte-stable snapshot; wall-clock
//!   durations are read through an injectable [`Clock`] and land in a
//!   separate, explicitly nondeterministic [`Timings`] section that the
//!   byte-stability gate never compares.
//!
//! The only wall-clock read in the crate is [`WallClock::nanos`];
//! instrumented code elsewhere in the workspace never names a wall
//! clock, which keeps it clean under `mira-lint`'s `nondeterminism`
//! and `determinism-taint` rules.
//!
//! Instrumented hot paths take a generic [`Sink`]; the provided
//! [`NoopSink`] compiles every hook down to nothing, so observability
//! costs nothing when it is off.
//!
//! ```
//! use mira_obs::{Collector, ManualClock, Sink};
//!
//! let mut obs = Collector::with_clock(ManualClock::new());
//! obs.add("demo.events", 3);
//! obs.gauge("demo.level", 0.5);
//! obs.span_begin("demo.region", 0);
//! obs.span_end("demo.region", 10);
//! let report = obs.into_report();
//! assert_eq!(report.metrics.counter("demo.events"), Some(3));
//! assert!(report.deterministic_json().contains("demo.region"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod collector;
pub mod metrics;
pub mod report;
pub mod sink;

pub use clock::{Clock, ManualClock, WallClock};
pub use collector::Collector;
pub use metrics::{Histogram, MetricValue, MetricsPartial};
pub use report::{ObsReport, SpanStats, Timings};
pub use sink::{NoopSink, Sink};

/// Whether instrumentation is live. Recorder-style integrations that
/// cannot take a generic [`Sink`] parameter branch on this once per
/// hook; the disabled arm does no work at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ObsMode {
    /// Collect nothing (the zero-cost default).
    #[default]
    Off,
    /// Collect metrics and spans.
    On,
}

impl ObsMode {
    /// `true` when instrumentation is live.
    #[must_use]
    #[inline]
    pub fn is_on(self) -> bool {
        matches!(self, ObsMode::On)
    }
}
