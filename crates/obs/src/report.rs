//! Snapshot documents: the byte-stable deterministic half and the
//! explicitly nondeterministic wall-clock half.
//!
//! [`ObsReport::deterministic_json`] renders metrics and span tallies
//! only — that document is proven byte-identical across
//! `MIRA_SWEEP_THREADS` settings by the determinism gates.
//! [`ObsReport::to_json`] appends the [`Timings`] section, which holds
//! wall-clock durations and is excluded from every byte-stability
//! comparison.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::metrics::{MetricValue, MetricsPartial};

/// The deterministic half of a span: how often it ran and how much
/// sim-time (in step indices) it covered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Number of begin/end pairs.
    pub count: u64,
    /// Total sim-steps between begins and ends.
    pub steps: u64,
}

impl SpanStats {
    /// Adds a later span's tallies into this one.
    pub fn merge(&mut self, later: SpanStats) {
        self.count += later.count;
        self.steps += later.steps;
    }
}

/// Wall-clock durations, separated from the deterministic snapshot.
/// Values depend on the machine, the scheduler, and the worker count —
/// byte-stability gates must never compare them.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Timings {
    entries: BTreeMap<&'static str, (u64, u64)>,
}

impl Timings {
    /// Empty timings.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one measured duration under `key`.
    pub fn record(&mut self, key: &'static str, nanos: u64) {
        let entry = self.entries.entry(key).or_insert((0, 0));
        entry.0 += 1;
        entry.1 = entry.1.saturating_add(nanos);
    }

    /// Absorbs another timing table (counts and nanos add).
    pub fn merge(&mut self, later: &Timings) {
        for (key, (count, nanos)) in &later.entries {
            let entry = self.entries.entry(key).or_insert((0, 0));
            entry.0 += count;
            entry.1 = entry.1.saturating_add(*nanos);
        }
    }

    /// Total nanoseconds recorded under `key`, if any.
    #[must_use]
    pub fn nanos(&self, key: &str) -> Option<u64> {
        self.entries.get(key).map(|(_, n)| *n)
    }

    /// Whether nothing was timed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn render_json(&self, out: &mut String) {
        out.push('{');
        for (i, (key, (count, nanos))) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{key}\":{{\"count\":{count},\"nanos\":{nanos}}}");
        }
        out.push('}');
    }
}

/// A finished observability report: merged metrics, span tallies, and
/// the nondeterministic timings.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObsReport {
    /// Merged deterministic metrics.
    pub metrics: MetricsPartial,
    /// Deterministic span tallies, keyed by span name.
    pub spans: BTreeMap<&'static str, SpanStats>,
    /// Wall-clock durations (nondeterministic; excluded from the
    /// byte-stability gates).
    pub timings: Timings,
}

impl ObsReport {
    /// An empty report.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds span tallies under `name`.
    pub fn record_span(&mut self, name: &'static str, stats: SpanStats) {
        self.spans.entry(name).or_default().merge(stats);
    }

    /// Absorbs a report covering the span after this one's.
    pub fn merge(&mut self, later: &ObsReport) {
        self.metrics.merge(&later.metrics);
        for (name, stats) in &later.spans {
            self.spans.entry(name).or_default().merge(*stats);
        }
        self.timings.merge(&later.timings);
    }

    /// Whether nothing at all was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty() && self.spans.is_empty() && self.timings.is_empty()
    }

    /// The byte-stable document: metrics and span tallies, rendered in
    /// deterministic key order, with no wall-clock content. Identical
    /// at any sweep worker count.
    #[must_use]
    pub fn deterministic_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"counters\":{");
        let mut first = true;
        for (key, value) in self.metrics.iter() {
            if let MetricValue::Counter(c) = value {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "\"{key}\":{c}");
            }
        }
        out.push_str("},\"gauges\":{");
        let mut first = true;
        for (key, value) in self.metrics.iter() {
            if let MetricValue::Gauge { sum, count } = value {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(
                    out,
                    "\"{key}\":{{\"count\":{count},\"sum\":{}}}",
                    json_f64(*sum)
                );
            }
        }
        out.push_str("},\"histograms\":{");
        let mut first = true;
        for (key, value) in self.metrics.iter() {
            if let MetricValue::Histogram(h) = value {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "\"{key}\":{{\"bounds\":[");
                for (i, b) in h.bounds().iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&json_f64(*b));
                }
                out.push_str("],\"counts\":[");
                for (i, c) in h.counts().iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{c}");
                }
                let _ = write!(
                    out,
                    "],\"count\":{},\"sum\":{}}}",
                    h.count(),
                    json_f64(h.sum())
                );
            }
        }
        out.push_str("},\"spans\":{");
        for (i, (name, stats)) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{name}\":{{\"count\":{},\"steps\":{}}}",
                stats.count, stats.steps
            );
        }
        out.push_str("}}");
        out
    }

    /// The full document: the deterministic snapshot plus the
    /// nondeterministic `timings` section.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"deterministic\":");
        out.push_str(&self.deterministic_json());
        out.push_str(",\"timings\":");
        self.timings.render_json(&mut out);
        out.push('}');
        out
    }

    /// A human-readable rendering of the full report.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (key, value) in self.metrics.iter() {
            match value {
                MetricValue::Counter(c) => {
                    let _ = writeln!(out, "counter    {key} = {c}");
                }
                MetricValue::Gauge { sum, count } => {
                    let mean = if *count == 0 {
                        0.0
                    } else {
                        *sum / mira_units::convert::f64_from_u64(*count)
                    };
                    let _ = writeln!(out, "gauge      {key} = {mean:.4} (n={count})");
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(
                        out,
                        "histogram  {key}: n={} sum={:.3} buckets={:?}",
                        h.count(),
                        h.sum(),
                        h.counts()
                    );
                }
            }
        }
        for (name, stats) in &self.spans {
            let _ = writeln!(
                out,
                "span       {name}: count={} steps={}",
                stats.count, stats.steps
            );
        }
        for (key, (count, nanos)) in &self.timings.entries {
            let _ = writeln!(
                out,
                "timing     {key}: count={count} wall={:.3} ms",
                mira_units::convert::f64_from_u64(*nanos) / 1.0e6
            );
        }
        out
    }
}

/// JSON-renders an `f64` deterministically: Rust's shortest round-trip
/// formatting for finite values, `null` for non-finite ones (JSON has
/// no NaN/∞ literals).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> ObsReport {
        let mut r = ObsReport::new();
        r.metrics.add("b.count", 2);
        r.metrics.add("a.count", 1);
        r.metrics.gauge("g.level", 1.5);
        r.metrics.observe("h.dist", &[1.0, 2.0], 1.5);
        r.record_span(
            "sweep.run",
            SpanStats {
                count: 1,
                steps: 10,
            },
        );
        r.timings.record("sweep.wall", 1_500_000);
        r
    }

    #[test]
    fn deterministic_json_is_sorted_and_timing_free() {
        let json = sample_report().deterministic_json();
        assert!(json.find("a.count").unwrap() < json.find("b.count").unwrap());
        assert!(json.contains("\"spans\":{\"sweep.run\":{\"count\":1,\"steps\":10}}"));
        assert!(!json.contains("timings"));
        assert!(!json.contains("nanos"));
    }

    #[test]
    fn full_json_appends_timings() {
        let json = sample_report().to_json();
        assert!(json.contains("\"timings\":{\"sweep.wall\":{\"count\":1,\"nanos\":1500000}}"));
        assert!(json.starts_with("{\"deterministic\":{"));
    }

    #[test]
    fn merge_adds_spans_and_timings() {
        let mut a = sample_report();
        let b = sample_report();
        a.merge(&b);
        assert_eq!(a.spans["sweep.run"].count, 2);
        assert_eq!(a.spans["sweep.run"].steps, 20);
        assert_eq!(a.timings.nanos("sweep.wall"), Some(3_000_000));
        assert_eq!(a.metrics.counter("a.count"), Some(2));
    }

    #[test]
    fn text_rendering_mentions_every_kind() {
        let text = sample_report().to_text();
        for needle in ["counter", "gauge", "histogram", "span", "timing"] {
            assert!(text.contains(needle), "{text}");
        }
    }

    #[test]
    fn non_finite_values_render_as_null() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(2.5), "2.5");
    }
}
