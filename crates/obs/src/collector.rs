//! The collecting [`Sink`]: accumulates metrics, span tallies, and
//! wall-clock timings behind an injected [`Clock`].

use crate::clock::{Clock, WallClock};
use crate::metrics::MetricsPartial;
use crate::report::{ObsReport, SpanStats, Timings};
use crate::sink::Sink;

/// An open span awaiting its end.
#[derive(Debug, Clone, Copy)]
struct OpenSpan {
    name: &'static str,
    begin_step: u64,
    begin_nanos: u64,
}

/// A live collector. Implements [`Sink`] with `enabled() == true`;
/// convert into an [`ObsReport`] with [`Collector::into_report`].
///
/// Span discipline is a stack: `span_end(name, ..)` closes the
/// innermost open span with that name. An unmatched end is dropped;
/// spans still open at [`Collector::into_report`] are discarded (their
/// partial time never lands anywhere — a span is only reported once it
/// closes).
#[derive(Debug, Clone)]
pub struct Collector<C: Clock = WallClock> {
    clock: C,
    metrics: MetricsPartial,
    open: Vec<OpenSpan>,
    spans: std::collections::BTreeMap<&'static str, SpanStats>,
    timings: Timings,
}

impl Collector<WallClock> {
    /// A collector timing against the real monotonic clock.
    #[must_use]
    pub fn new() -> Self {
        Self::with_clock(WallClock::default())
    }
}

impl Default for Collector<WallClock> {
    fn default() -> Self {
        Self::new()
    }
}

impl<C: Clock> Collector<C> {
    /// A collector timing against `clock` (inject a
    /// [`crate::ManualClock`] in tests).
    #[must_use]
    pub fn with_clock(clock: C) -> Self {
        Self {
            clock,
            metrics: MetricsPartial::new(),
            open: Vec::new(),
            spans: std::collections::BTreeMap::new(),
            timings: Timings::new(),
        }
    }

    /// The metrics accumulated so far.
    #[must_use]
    pub fn metrics(&self) -> &MetricsPartial {
        &self.metrics
    }

    /// Finishes collection. Open spans are discarded.
    #[must_use]
    pub fn into_report(self) -> ObsReport {
        ObsReport {
            metrics: self.metrics,
            spans: self.spans,
            timings: self.timings,
        }
    }
}

impl<C: Clock> Sink for Collector<C> {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    fn add(&mut self, key: &'static str, n: u64) {
        self.metrics.add(key, n);
    }

    fn gauge(&mut self, key: &'static str, value: f64) {
        self.metrics.gauge(key, value);
    }

    fn observe(&mut self, key: &'static str, bounds: &'static [f64], value: f64) {
        self.metrics.observe(key, bounds, value);
    }

    fn span_begin(&mut self, name: &'static str, step: u64) {
        self.open.push(OpenSpan {
            name,
            begin_step: step,
            begin_nanos: self.clock.nanos(),
        });
    }

    fn span_end(&mut self, name: &'static str, step: u64) {
        let Some(at) = self.open.iter().rposition(|s| s.name == name) else {
            return;
        };
        let open = self.open.remove(at);
        let entry = self.spans.entry(name).or_default();
        entry.count += 1;
        entry.steps += step.saturating_sub(open.begin_step);
        let elapsed = self.clock.nanos().saturating_sub(open.begin_nanos);
        self.timings.record(name, elapsed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn spans_pair_by_name_and_nest() {
        let clock = ManualClock::new();
        let mut c = Collector::with_clock(clock.clone());
        c.span_begin("outer", 0);
        c.clock.advance(100);
        c.span_begin("inner", 4);
        c.clock.advance(50);
        c.span_end("inner", 6);
        c.clock.advance(25);
        c.span_end("outer", 10);
        let report = c.into_report();
        assert_eq!(report.spans["inner"], SpanStats { count: 1, steps: 2 });
        assert_eq!(
            report.spans["outer"],
            SpanStats {
                count: 1,
                steps: 10
            }
        );
        assert_eq!(report.timings.nanos("inner"), Some(50));
        assert_eq!(report.timings.nanos("outer"), Some(175));
    }

    #[test]
    fn unmatched_end_is_dropped_and_open_spans_discarded() {
        let mut c = Collector::with_clock(ManualClock::new());
        c.span_end("never-opened", 3);
        c.span_begin("left-open", 0);
        let report = c.into_report();
        assert!(report.spans.is_empty());
        assert!(report.timings.is_empty());
    }

    #[test]
    fn collector_is_an_enabled_sink() {
        let mut c = Collector::with_clock(ManualClock::new());
        assert!(c.enabled());
        c.add("k", 2);
        assert_eq!(c.metrics().counter("k"), Some(2));
    }
}
