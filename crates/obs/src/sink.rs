//! The instrumentation hook surface.
//!
//! Hot loops take a generic `&mut impl Sink` and call the hooks
//! unconditionally; with [`NoopSink`] every hook is an empty `#[inline]`
//! body the optimizer erases, so the instrumented and plain code paths
//! compile to the same loop. Uninstrumented convenience wrappers
//! delegate with a `NoopSink`.

/// Receiver of instrumentation events.
///
/// Every method has an empty default body, so a sink only implements
/// what it collects. Implementors that do collect should override
/// [`Sink::enabled`] to `true` so call sites can skip building
/// expensive event payloads.
pub trait Sink {
    /// Whether this sink records anything. Call sites may use this to
    /// skip computing expensive metric inputs.
    #[inline]
    #[must_use]
    fn enabled(&self) -> bool {
        false
    }

    /// Bumps the counter `key` by `n`.
    #[inline]
    fn add(&mut self, key: &'static str, n: u64) {
        let _ = (key, n);
    }

    /// Samples the gauge `key`.
    #[inline]
    fn gauge(&mut self, key: &'static str, value: f64) {
        let _ = (key, value);
    }

    /// Observes `value` into the histogram `key` bucketed by `bounds`.
    #[inline]
    fn observe(&mut self, key: &'static str, bounds: &'static [f64], value: f64) {
        let _ = (key, bounds, value);
    }

    /// Opens the span `name` at sim-step `step`.
    #[inline]
    fn span_begin(&mut self, name: &'static str, step: u64) {
        let _ = (name, step);
    }

    /// Closes the innermost open span `name` at sim-step `step`.
    #[inline]
    fn span_end(&mut self, name: &'static str, step: u64) {
        let _ = (name, step);
    }
}

/// The zero-cost disabled sink.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopSink;

impl Sink for NoopSink {}

/// Forwarding, so instrumented fns can be handed `&mut sink` without
/// consuming the caller's sink.
impl<S: Sink + ?Sized> Sink for &mut S {
    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    #[inline]
    fn add(&mut self, key: &'static str, n: u64) {
        (**self).add(key, n);
    }

    #[inline]
    fn gauge(&mut self, key: &'static str, value: f64) {
        (**self).gauge(key, value);
    }

    #[inline]
    fn observe(&mut self, key: &'static str, bounds: &'static [f64], value: f64) {
        (**self).observe(key, bounds, value);
    }

    #[inline]
    fn span_begin(&mut self, name: &'static str, step: u64) {
        (**self).span_begin(name, step);
    }

    #[inline]
    fn span_end(&mut self, name: &'static str, step: u64) {
        (**self).span_end(name, step);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_sink_is_disabled_and_inert() {
        let mut s = NoopSink;
        assert!(!s.enabled());
        s.add("k", 1);
        s.gauge("g", 1.0);
        s.observe("h", &[1.0], 0.5);
        s.span_begin("sp", 0);
        s.span_end("sp", 1);
    }

    #[test]
    fn mut_ref_forwards() {
        fn use_sink<S: Sink>(mut s: S) {
            assert!(!s.enabled());
            s.add("k", 1);
            s.span_begin("sp", 0);
        }
        let mut s = NoopSink;
        use_sink(&mut s);
    }
}
