//! Injectable wall-time sources.
//!
//! Instrumented code never names `std::time` directly — it reads
//! nanoseconds through a [`Clock`] it was handed. That keeps every
//! simulation crate clean under `mira-lint`'s `nondeterminism` and
//! `determinism-taint` rules: the one genuine wall-clock read in the
//! workspace is [`WallClock::nanos`], which lives here, outside the
//! deterministic crates, and feeds only the nondeterministic
//! [`crate::Timings`] section of a report.

/// A monotonic nanosecond source.
pub trait Clock {
    /// Nanoseconds elapsed since an arbitrary fixed origin.
    fn nanos(&self) -> u64;
}

/// The real monotonic clock, measured from construction time.
#[derive(Debug, Clone, Copy)]
pub struct WallClock {
    origin: std::time::Instant,
}

impl Default for WallClock {
    fn default() -> Self {
        Self {
            origin: std::time::Instant::now(),
        }
    }
}

impl Clock for WallClock {
    fn nanos(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A hand-advanced clock for deterministic tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ManualClock {
    now: std::cell::Cell<u64>,
}

impl ManualClock {
    /// A clock stopped at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `nanos`.
    pub fn advance(&self, nanos: u64) {
        self.now.set(self.now.get().saturating_add(nanos));
    }
}

impl Clock for ManualClock {
    fn nanos(&self) -> u64 {
        self.now.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::default();
        let a = c.nanos();
        let b = c.nanos();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_advances_by_hand() {
        let c = ManualClock::new();
        assert_eq!(c.nanos(), 0);
        c.advance(5);
        c.advance(7);
        assert_eq!(c.nanos(), 12);
    }
}
