//! Merge laws for [`MetricsPartial`]: partitioned folds must agree
//! with a single stream, and merging must be associative.
//!
//! Counters and histogram bucket counts are integer folds, so they are
//! compared exactly — including across re-association. Gauge and
//! histogram sums are floating-point folds whose bits depend on
//! association, so the associativity law compares them to a tight
//! tolerance while the count-weighted blend (counts, bucket shapes) is
//! exact.

use proptest::prelude::*;

use mira_obs::MetricsPartial;

const BOUNDS: &[f64] = &[-500.0, -50.0, 0.0, 50.0, 500.0];

const COUNTER_KEYS: [&str; 3] = ["c.a", "c.b", "c.c"];
const GAUGE_KEYS: [&str; 2] = ["g.a", "g.b"];
const HIST_KEYS: [&str; 2] = ["h.a", "h.b"];

/// One recorded operation over a small key alphabet so streams collide
/// on keys often.
#[derive(Debug, Clone)]
enum Op {
    Add(&'static str, u64),
    Gauge(&'static str, f64),
    Observe(&'static str, f64),
}

/// Decodes a sampled integer into an op. The vendored proptest stand-in
/// has no `prop_oneof!`/`select`, so one integer strategy fans out over
/// kind, key, and payload instead.
fn decode(n: u64) -> Op {
    let value = ((n / 7) % 2_000_000) as f64 / 1000.0 - 1000.0;
    match n % 7 {
        0 => Op::Add(COUNTER_KEYS[0], n % 100),
        1 => Op::Add(COUNTER_KEYS[1], n % 100),
        2 => Op::Add(COUNTER_KEYS[2], n % 100),
        3 => Op::Gauge(GAUGE_KEYS[0], value),
        4 => Op::Gauge(GAUGE_KEYS[1], value),
        5 => Op::Observe(HIST_KEYS[0], value),
        _ => Op::Observe(HIST_KEYS[1], value),
    }
}

fn ops(max_len: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((0u64..4_000_000_000).prop_map(decode), 0..max_len)
}

fn fold(ops: &[Op]) -> MetricsPartial {
    let mut m = MetricsPartial::new();
    for op in ops {
        match op {
            Op::Add(key, n) => m.add(key, *n),
            Op::Gauge(key, v) => m.gauge(key, *v),
            Op::Observe(key, v) => m.observe(key, BOUNDS, *v),
        }
    }
    m
}

fn close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
}

/// Integer-exact content must match exactly; float folds to tolerance.
fn assert_equivalent(a: &MetricsPartial, b: &MetricsPartial) {
    for key in COUNTER_KEYS {
        assert_eq!(a.counter(key), b.counter(key), "counter {key}");
    }
    for key in GAUGE_KEYS {
        let (sa, sb) = (a.gauge_stats(key), b.gauge_stats(key));
        assert_eq!(sa.is_some(), sb.is_some(), "gauge presence {key}");
        if let (Some((ca, ma)), Some((cb, mb))) = (sa, sb) {
            assert_eq!(ca, cb, "gauge count {key}");
            assert!(close(ma, mb, 1e-12), "gauge mean {key}: {ma} vs {mb}");
        }
    }
    for key in HIST_KEYS {
        let (ha, hb) = (a.histogram(key), b.histogram(key));
        assert_eq!(ha.is_some(), hb.is_some(), "histogram presence {key}");
        if let (Some(ha), Some(hb)) = (ha, hb) {
            assert_eq!(ha.counts(), hb.counts(), "histogram buckets {key}");
            assert_eq!(ha.count(), hb.count(), "histogram count {key}");
            assert!(
                close(ha.sum(), hb.sum(), 1e-12),
                "histogram sum {key}: {} vs {}",
                ha.sum(),
                hb.sum()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Splitting a stream at any point and merging the two partials
    /// agrees with the single-stream fold: exactly on every integer
    /// tally, and to rounding error on float sums (the merge adds two
    /// pre-summed partials, which re-associates the float additions).
    #[test]
    fn split_merge_matches_single_fold(
        stream in ops(120),
        cut_frac in 0.0..1.0f64,
    ) {
        let cut = ((stream.len() as f64) * cut_frac) as usize;
        let (left_ops, right_ops) = stream.split_at(cut.min(stream.len()));

        let whole = fold(&stream);
        let mut merged = fold(left_ops);
        merged.merge(&fold(right_ops));

        assert_equivalent(&merged, &whole);
    }

    /// The sweep executor's byte-stability invariant in miniature: with
    /// a FIXED partition merged in chronological order, the result is
    /// bit-for-bit identical no matter how many times (or on which
    /// "worker") each partial was computed — the merge is a pure
    /// function of the partition, not of scheduling.
    #[test]
    fn fixed_partition_merge_is_bitwise_deterministic(
        stream in ops(120),
        cut_frac in 0.0..1.0f64,
    ) {
        let cut = ((stream.len() as f64) * cut_frac) as usize;
        let (left_ops, right_ops) = stream.split_at(cut.min(stream.len()));

        // "Worker A" and "worker B" each compute the shards
        // independently; chronological merge of the same partition must
        // agree bitwise.
        let mut run_a = fold(left_ops);
        run_a.merge(&fold(right_ops));
        let mut run_b = fold(left_ops);
        run_b.merge(&fold(right_ops));

        prop_assert_eq!(run_a, run_b);
    }

    /// Merging is associative: (a ⊕ b) ⊕ c ~ a ⊕ (b ⊕ c). Counters and
    /// histogram bucket counts are exact; gauge/histogram sums agree to
    /// rounding error (re-association of float adds).
    #[test]
    fn merge_is_associative(
        a in ops(60),
        b in ops(60),
        c in ops(60),
    ) {
        let (a, b, c) = (fold(&a), fold(&b), fold(&c));

        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);

        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);

        assert_equivalent(&left, &right);
    }

    /// The gauge blend is count-weighted: merging partials with n₁ and
    /// n₂ samples yields mean (n₁m₁ + n₂m₂)/(n₁+n₂), not (m₁+m₂)/2.
    #[test]
    fn gauge_blend_is_count_weighted(
        xs in proptest::collection::vec(-1.0e3..1.0e3f64, 1..40),
        ys in proptest::collection::vec(-1.0e3..1.0e3f64, 1..40),
    ) {
        let mut a = MetricsPartial::new();
        for &x in &xs {
            a.gauge("g.a", x);
        }
        let mut b = MetricsPartial::new();
        for &y in &ys {
            b.gauge("g.a", y);
        }
        a.merge(&b);

        let (count, mean) = a.gauge_stats("g.a").expect("gauge present");
        prop_assert_eq!(count as usize, xs.len() + ys.len());
        let expected =
            (xs.iter().sum::<f64>() + ys.iter().sum::<f64>()) / ((xs.len() + ys.len()) as f64);
        prop_assert!(close(mean, expected, 1e-12), "{} vs {}", mean, expected);
    }

    /// Merging an empty partial in either direction is the identity.
    #[test]
    fn empty_is_identity(stream in ops(80)) {
        let folded = fold(&stream);

        let mut left = MetricsPartial::new();
        left.merge(&folded);
        prop_assert_eq!(&left, &folded);

        let mut right = folded.clone();
        right.merge(&MetricsPartial::new());
        prop_assert_eq!(&right, &folded);
    }
}
