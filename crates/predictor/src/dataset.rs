//! Balanced dataset extraction from telemetry plus the CMF ground truth.
//!
//! Following the paper's methodology: for every CMF, the six hours of
//! coolant telemetry leading up to it (at the chosen lead time) becomes a
//! class-one example; an equal number of class-zero windows is collected
//! evenly across the whole production period, at times with no CMF
//! within the following six hours on the sampled rack.

use serde::{Deserialize, Serialize};

use mira_cooling::CoolantMonitorSample;
use mira_facility::RackId;
use mira_nn::Dataset;
use mira_timeseries::{Duration, SimTime};
use mira_units::convert;

use crate::features::FeatureConfig;

/// Random-access source of coolant-monitor telemetry.
///
/// The simulator's telemetry is a pure function of `(rack, time)`, so
/// training data can be extracted for any instant without replaying the
/// whole history.
pub trait TelemetryProvider {
    /// The coolant-monitor sample for `rack` at `t`.
    fn sample(&self, rack: RackId, t: SimTime) -> CoolantMonitorSample;

    /// The telemetry sampling interval (300 s on Mira).
    fn interval(&self) -> Duration {
        Duration::from_seconds(300)
    }

    /// Floor-wide median of each telemetry channel at `t` — the common
    /// mode that differential features divide out. The default samples
    /// all 48 racks; engines with a cheaper path should override.
    fn floor_median(&self, t: SimTime) -> [f64; 6] {
        let mut columns: [Vec<f64>; 6] = Default::default();
        for rack in RackId::all() {
            let ch = self.sample(rack, t).channels();
            for (col, v) in columns.iter_mut().zip(ch) {
                col.push(v);
            }
        }
        let mut out = [0.0; 6];
        for (o, col) in out.iter_mut().zip(columns.iter_mut()) {
            col.sort_by(f64::total_cmp);
            *o = col[col.len() / 2];
        }
        out
    }
}

/// Builds balanced CMF prediction datasets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetBuilder {
    features: FeatureConfig,
    /// Full CMF ground truth: (failure time, rack), time-ordered. Used
    /// to keep negatives clean even when only a subset of events
    /// provides positives.
    all_cmfs: Vec<(SimTime, RackId)>,
    /// The events whose pre-failure windows become positives (defaults
    /// to all of them; an event-level split restricts this).
    positives: Vec<(SimTime, RackId)>,
    /// Production period for negative sampling.
    production: (SimTime, SimTime),
    /// Salt decorrelating this builder's negative grid from any other
    /// builder's (in particular a train/eval pair's).
    negative_salt: u64,
}

impl DatasetBuilder {
    /// Creates a builder.
    ///
    /// # Panics
    ///
    /// Panics if the production window is empty or no CMFs are given.
    #[must_use]
    pub fn new(
        features: FeatureConfig,
        mut cmfs: Vec<(SimTime, RackId)>,
        production: (SimTime, SimTime),
    ) -> Self {
        assert!(production.0 < production.1, "empty production window");
        assert!(!cmfs.is_empty(), "need at least one CMF");
        cmfs.sort_by_key(|(t, _)| *t);
        Self {
            features,
            positives: cmfs.clone(),
            all_cmfs: cmfs,
            production,
            negative_salt: 0,
        }
    }

    /// Splits the builder at the *event* level: the first builder's
    /// positives are a `train_fraction` share of the CMFs, the second's
    /// the rest, drawn by seeded shuffle. Both keep the full ground
    /// truth for negative cleanliness, and their negative grids use
    /// different salts — so nothing the second builder produces (rows,
    /// events, or grid points) was available to a model trained on the
    /// first. This is what makes a lead-time sweep honest.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < train_fraction < 1` leaves both sides at
    /// least one event.
    #[must_use]
    // `order` is a permutation of 0..all_cmfs.len(); every index drawn
    // from it is in bounds. mira-lint: allow(panic-reachability)
    pub fn split_events(&self, train_fraction: f64, seed: u64) -> (Self, Self) {
        assert!(
            train_fraction > 0.0 && train_fraction < 1.0,
            "train fraction must be in (0, 1)"
        );
        let mut order: Vec<usize> = (0..self.all_cmfs.len()).collect();
        // Seeded Fisher-Yates (splitmix stream).
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        for i in (1..order.len()).rev() {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let j =
                convert::usize_from_u64(state.wrapping_mul(0x2545_F491_4F6C_DD1D) % (i as u64 + 1));
            order.swap(i, j);
        }
        let cut = convert::usize_from_f64_round(
            convert::f64_from_usize(self.all_cmfs.len()) * train_fraction,
        );
        assert!(
            cut >= 1 && cut < self.all_cmfs.len(),
            "split leaves a side empty"
        );
        let make = |idx: &[usize], salt: u64| {
            let mut positives: Vec<(SimTime, RackId)> =
                idx.iter().map(|&i| self.all_cmfs[i]).collect();
            positives.sort_by_key(|(t, _)| *t);
            Self {
                features: self.features,
                all_cmfs: self.all_cmfs.clone(),
                positives,
                production: self.production,
                negative_salt: salt,
            }
        };
        (
            make(&order[..cut], seed ^ 0x7EA1),
            make(&order[cut..], seed ^ 0xE7A1),
        )
    }

    /// The feature configuration in use.
    #[must_use]
    pub fn features(&self) -> &FeatureConfig {
        &self.features
    }

    /// Extracts the feature window of `rack` ending at `end`
    /// (fetching floor medians too when the mode is differential).
    #[must_use]
    pub fn window_features<P: TelemetryProvider>(
        &self,
        provider: &P,
        rack: RackId,
        end: SimTime,
    ) -> Option<Vec<f64>> {
        let step = provider.interval();
        let n = (self.features.window.as_seconds() / step.as_seconds()).max(2);
        let start = end - self.features.window;
        let rows: Vec<[f64; 6]> = (0..n)
            .map(|i| {
                let t = start + step * i;
                let mut ch = provider.sample(rack, t).channels();
                if self.features.mode == crate::features::FeatureMode::DifferentialDeltas {
                    let median = provider.floor_median(t);
                    for (v, m) in ch.iter_mut().zip(median) {
                        *v /= m.abs().max(1e-6);
                    }
                }
                ch
            })
            .collect();
        self.features.extract_rows(&rows)
    }

    /// Whether `rack` suffers a CMF within `horizon` after `t` (checked
    /// against the *full* ground truth, not just this builder's
    /// positives).
    #[must_use]
    pub fn cmf_within(&self, rack: RackId, t: SimTime, horizon: Duration) -> bool {
        let idx = self.all_cmfs.partition_point(|(ct, _)| *ct < t);
        // partition_point is at most len, so the open range cannot
        // panic. mira-lint: allow(panic-reachability)
        self.all_cmfs[idx..]
            .iter()
            .take_while(|(ct, _)| *ct - t <= horizon)
            .any(|(_, cr)| *cr == rack)
    }

    /// The balanced evaluation points for a lead time: positive window
    /// ends (`lead` before each CMF, on the failing rack) and an equal
    /// number of clean negative window ends sampled evenly across
    /// production. `true` marks the positive class.
    #[must_use]
    pub fn sample_points(&self, lead: Duration) -> Vec<(RackId, SimTime, bool)> {
        let mut points = Vec::new();

        // Positive class: telemetry leading up to each positive event.
        for &(cmf_time, rack) in &self.positives {
            let end = cmf_time - lead;
            if end - self.features.window < self.production.0 {
                continue;
            }
            points.push((rack, end, true));
        }

        // Negative class: spread across production, racks and offsets
        // drawn from a salted hash of (lead, k) so every lead — and
        // every builder — gets its own grid. (A shared deterministic
        // grid would leak: evaluation negatives identical to training
        // negatives measure memorization, not generalization.)
        let needed = points.len();
        let span = self.production.1 - self.production.0;
        // Oversample candidates: some get rejected near CMFs.
        let candidates = needed * 2 + 8;
        let stride =
            Duration::from_seconds(span.as_seconds() / convert::i64_from_usize(candidates));
        let salt = self
            .negative_salt
            .wrapping_mul(0xD131_0BA6_98DF_B5AC)
            .wrapping_add((lead.as_seconds() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut negatives = 0usize;
        let mut k = 0usize;
        while negatives < needed && k < candidates * 2 {
            let mut h = salt.wrapping_add((k as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
            h = (h ^ (h >> 30)).wrapping_mul(0x94D0_49BB_1331_11EB);
            h ^= h >> 31;
            let jitter = Duration::from_seconds(convert::i64_from_u64(
                h % (stride.as_seconds().max(1) as u64),
            ));
            let end = self.production.0
                + self.features.window
                + stride * convert::i64_from_usize(k)
                + jitter;
            k += 1;
            if end >= self.production.1 {
                continue;
            }
            let rack = convert::usize_from_u64((h >> 32) % RackId::COUNT as u64);
            let rack = RackId::from_index(rack);
            // Clean negatives: no CMF on this rack within the horizon
            // after the window, nor during the window itself.
            if self.cmf_within(rack, end, self.features.window + lead)
                || self.cmf_within(rack, end - self.features.window, self.features.window)
            {
                continue;
            }
            points.push((rack, end, false));
            negatives += 1;
        }
        points
    }

    /// Builds a balanced training dataset with positive windows ending
    /// `lead` before each CMF and an equal number of negatives sampled
    /// evenly across production time.
    ///
    /// Windows whose features cannot be extracted are skipped.
    #[must_use]
    pub fn build<P: TelemetryProvider>(&self, provider: &P, lead: Duration) -> Dataset {
        let mut data = Dataset::empty();
        for (rack, end, positive) in self.sample_points(lead) {
            if let Some(f) = self.window_features(provider, rack, end) {
                data.push(f, f64::from(u8::from(positive)));
            }
        }
        data
    }

    /// Hard negatives: healthy windows that *look* eventful.
    ///
    /// Evenly-sampled negatives are telemetry at its quietest, so a
    /// model trained only on them learns "any big change means failure"
    /// and cries wolf in deployment — exactly the false-positive problem
    /// the paper worries about. The two benign-change generators on Mira
    /// are (a) post-outage recoveries (a rack coming back from its six
    /// dark hours swings every channel) and (b) Monday maintenance
    /// transitions (burner jobs collapse power and outlet). One window
    /// of each flavour per CMF, verified clean of upcoming failures.
    #[must_use]
    pub fn hard_negative_points(&self) -> Vec<(RackId, SimTime, bool)> {
        let mut points = Vec::new();
        let window = self.features.window;
        for (i, &(cmf_time, rack)) in self.positives.iter().enumerate() {
            // (a) The same rack's recovery: window covering the power-up
            // transition, ending 7 h after the failure.
            let recovery_end = cmf_time + Duration::from_hours(7);
            if recovery_end < self.production.1
                && !self.cmf_within(rack, recovery_end, window + Duration::from_hours(6))
            {
                points.push((rack, recovery_end, false));
            }
            // (b) A maintenance-Monday afternoon on a rotating healthy
            // rack: the window spans the 9 AM drain and burner handoff.
            let monday = next_monday_after(
                self.production.0
                    + Duration::from_days(7 * (convert::i64_from_usize(i) + 1) % 2100),
            ) + Duration::from_hours(15);
            let other = RackId::from_index((i * 13 + 5) % RackId::COUNT);
            if monday < self.production.1
                && !self.cmf_within(other, monday, window + Duration::from_hours(6))
                && !self.cmf_within(other, monday - window, window)
            {
                points.push((other, monday, false));
            }
        }
        points
    }

    /// [`DatasetBuilder::build`] plus the hard negatives — the training
    /// diet for a deployable (console) model.
    #[must_use]
    pub fn build_hard<P: TelemetryProvider>(&self, provider: &P, lead: Duration) -> Dataset {
        let mut data = self.build(provider, lead);
        for (rack, end, positive) in self.hard_negative_points() {
            if let Some(f) = self.window_features(provider, rack, end) {
                data.push(f, f64::from(u8::from(positive)));
            }
        }
        data
    }

    /// The events providing this builder's positive windows (the full
    /// ground truth unless [`DatasetBuilder::split_events`] restricted
    /// it).
    #[must_use]
    pub fn cmfs(&self) -> &[(SimTime, RackId)] {
        &self.positives
    }

    /// The full CMF ground truth used for negative cleanliness.
    #[must_use]
    pub fn all_cmfs(&self) -> &[(SimTime, RackId)] {
        &self.all_cmfs
    }

    /// The production span.
    #[must_use]
    pub fn production(&self) -> (SimTime, SimTime) {
        self.production
    }
}

/// Midnight of the first Monday at or after `t`.
fn next_monday_after(t: SimTime) -> SimTime {
    let mut date = t.date();
    while date.weekday() != mira_timeseries::Weekday::Monday {
        date = date.plus_days(1);
    }
    SimTime::from_date(date)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mira_cooling::PrecursorSignature;
    use mira_timeseries::Date;
    use mira_units::{Fahrenheit, Gpm, Kilowatts, RelHumidity};

    /// A toy provider: flat telemetry except a precursor signature
    /// before the known CMFs.
    struct ToyProvider {
        cmfs: Vec<(SimTime, RackId)>,
        signature: PrecursorSignature,
    }

    impl TelemetryProvider for ToyProvider {
        fn sample(&self, rack: RackId, t: SimTime) -> CoolantMonitorSample {
            let mut inlet = 64.0;
            let mut flow = 26.0;
            for &(ct, cr) in &self.cmfs {
                if cr == rack && ct >= t && (ct - t) <= Duration::from_hours(6) {
                    inlet *= self.signature.inlet_factor(ct - t);
                    flow *= self.signature.flow_factor(ct - t);
                }
            }
            CoolantMonitorSample {
                time: t,
                rack,
                dc_temperature: Fahrenheit::new(80.0),
                dc_humidity: RelHumidity::new(33.0),
                flow: Gpm::new(flow),
                inlet: Fahrenheit::new(inlet),
                outlet: Fahrenheit::new(79.0),
                power: Kilowatts::new(58.0),
            }
        }
    }

    fn setup() -> (ToyProvider, DatasetBuilder) {
        let start = SimTime::from_date(Date::new(2015, 1, 1));
        let end = SimTime::from_date(Date::new(2015, 12, 31));
        let cmfs: Vec<(SimTime, RackId)> = (0..12)
            .map(|i| {
                (
                    start + Duration::from_days(20 + i * 25),
                    RackId::from_index((i * 5 % 48) as usize),
                )
            })
            .collect();
        let provider = ToyProvider {
            cmfs: cmfs.clone(),
            signature: PrecursorSignature::mira(),
        };
        let builder = DatasetBuilder::new(FeatureConfig::mira(), cmfs, (start, end));
        (provider, builder)
    }

    #[test]
    fn builds_balanced_dataset() {
        let (provider, builder) = setup();
        let data = builder.build(&provider, Duration::from_minutes(30));
        assert!(data.len() >= 20, "dataset of {}", data.len());
        let pos = data.positives();
        assert_eq!(data.len(), pos * 2, "balanced classes");
        assert_eq!(data.width(), 36);
    }

    #[test]
    fn positive_windows_carry_signature() {
        let (provider, builder) = setup();
        let data = builder.build(&provider, Duration::from_minutes(30));
        // Positive rows must have larger feature magnitudes than
        // negatives (flat telemetry → zero deltas).
        let mut pos_norm = 0.0;
        let mut neg_norm = 0.0;
        for (f, &l) in data.features().iter().zip(data.labels()) {
            let norm: f64 = f.iter().map(|v| v.abs()).sum();
            if l >= 0.5 {
                pos_norm += norm;
            } else {
                neg_norm += norm;
            }
        }
        assert!(pos_norm > neg_norm * 10.0, "pos {pos_norm} neg {neg_norm}");
    }

    #[test]
    fn cmf_within_detects_lookahead() {
        let (_, builder) = setup();
        let (t, r) = builder.positives[0];
        assert!(builder.cmf_within(r, t - Duration::from_hours(3), Duration::from_hours(6)));
        assert!(!builder.cmf_within(r, t + Duration::from_minutes(1), Duration::from_hours(6)));
        let other = RackId::from_index((r.index() + 1) % 48);
        assert!(!builder.cmf_within(other, t - Duration::from_hours(3), Duration::from_hours(6)));
    }

    #[test]
    fn longer_lead_weakens_signature() {
        let (provider, builder) = setup();
        let near = builder.build(&provider, Duration::from_minutes(30));
        let far = builder.build(&provider, Duration::from_hours(5));
        let mean_pos_norm = |d: &Dataset| {
            let mut total = 0.0;
            let mut n = 0;
            for (f, &l) in d.features().iter().zip(d.labels()) {
                if l >= 0.5 {
                    total += f.iter().map(|v| v.abs()).sum::<f64>();
                    n += 1;
                }
            }
            total / f64::from(n.max(1))
        };
        assert!(mean_pos_norm(&near) > mean_pos_norm(&far));
    }

    #[test]
    #[should_panic(expected = "need at least one CMF")]
    fn requires_cmfs() {
        let start = SimTime::from_date(Date::new(2015, 1, 1));
        let end = SimTime::from_date(Date::new(2016, 1, 1));
        let _ = DatasetBuilder::new(FeatureConfig::mira(), vec![], (start, end));
    }
}
