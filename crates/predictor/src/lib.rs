//! Coolant-monitor-failure prediction pipeline.
//!
//! Sec. VI-B of the paper: the otherwise-stable coolant telemetry moves
//! hours before a CMF, so a small neural network fed the *changes* of the
//! six coolant-monitor channels over the trailing six hours can predict
//! an impending failure — 87 % accuracy six hours out, 97 % at thirty
//! minutes (Fig. 13). This crate is that pipeline:
//!
//! - [`features`] — windowed change-features over the six telemetry
//!   channels (with a levels-only mode for the "thresholds are not
//!   enough" ablation).
//! - [`dataset`] — balanced positive/negative window extraction from any
//!   [`TelemetryProvider`] plus the CMF ground truth.
//! - [`pipeline`] — [`CmfPredictor`]: standardize → train the 12-12-6
//!   MLP → evaluate, including the paper's 3 : 1 : 1 split, 5-fold cross
//!   validation, and the lead-time sweep behind Fig. 13.
//! - [`tune`] — Bayesian-optimization architecture search over hidden
//!   layer sizes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cusum;
pub mod dataset;
pub mod features;
pub mod location;
pub mod pipeline;
pub mod threshold;
pub mod tune;

pub use cusum::{CusumChannel, CusumDetector};
pub use dataset::{DatasetBuilder, TelemetryProvider};
pub use features::{FeatureConfig, FeatureMode};
pub use location::{LocationPredictor, RackRanking, TopKAccuracy};
pub use pipeline::{CmfPredictor, LeadTimePoint, PredictorConfig};
pub use threshold::ThresholdDetector;
pub use tune::{tune_architecture, ArchitectureSearch};
