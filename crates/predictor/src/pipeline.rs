//! Train/evaluate pipeline for the CMF predictor.

use serde::{Deserialize, Serialize};

use mira_nn::{
    Activation, BinaryMetrics, Dataset, KFold, Loss, Mlp, Optimizer, Standardizer, TrainConfig,
};
use mira_obs::{NoopSink, Sink};
use mira_timeseries::Duration;
use mira_units::convert;

use crate::dataset::{DatasetBuilder, TelemetryProvider};

/// Metric keys emitted by the `*_observed` training entry points (the
/// epoch-level `nn.*` keys come from [`mira_nn::network::obs_keys`]).
pub mod obs_keys {
    /// Rows in the pooled training dataset (before the 3 : 1 : 1 split).
    pub const DATASET_ROWS: &str = "predictor.dataset_rows";
    /// Feature-vector width.
    pub const FEATURE_WIDTH: &str = "predictor.feature_width";
    /// Hard-negative rows appended to the training diet.
    pub const HARD_NEGATIVES: &str = "predictor.hard_negatives";
}

/// Predictor hyper-parameters (defaults are the paper's).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictorConfig {
    /// Hidden layer widths (paper: 12, 12, 6, chosen by Bayesian
    /// optimization).
    pub hidden: Vec<usize>,
    /// Training epochs (paper: 50).
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate for Adam.
    pub learning_rate: f64,
    /// Seed for initialization, shuffling and splits.
    pub seed: u64,
    /// Early-stopping patience on the validation split (None trains the
    /// full epoch budget, like the paper).
    pub patience: Option<usize>,
    /// Include hard negatives (recovery and maintenance windows) in the
    /// training diet. Off reproduces the paper's balanced dataset; on
    /// is the deployable-console setting that keeps false alerts down
    /// under distribution shift.
    pub hard_negatives: bool,
    /// Lead times whose positive windows are pooled for training.
    pub train_leads: Vec<Duration>,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        Self {
            hidden: vec![12, 12, 6],
            epochs: 50,
            batch_size: 32,
            learning_rate: 0.01,
            seed: 0,
            patience: None,
            hard_negatives: false,
            train_leads: vec![
                Duration::from_minutes(30),
                Duration::from_hours(1),
                Duration::from_hours(2),
                Duration::from_hours(3),
                Duration::from_hours(4),
                Duration::from_hours(5),
                Duration::from_hours(6),
            ],
        }
    }
}

impl PredictorConfig {
    fn train_config(&self) -> TrainConfig {
        TrainConfig {
            epochs: self.epochs,
            batch_size: self.batch_size,
            loss: Loss::BinaryCrossEntropy,
            optimizer: Optimizer::Adam {
                learning_rate: self.learning_rate,
                beta1: 0.9,
                beta2: 0.999,
            },
            seed: self.seed,
            patience: self.patience,
        }
    }
}

/// One point of the Fig. 13 lead-time sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeadTimePoint {
    /// Lead time before the CMF.
    pub lead: Duration,
    /// Classification metrics at that lead.
    pub metrics: BinaryMetrics,
}

/// A trained CMF predictor: standardizer + MLP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CmfPredictor {
    standardizer: Standardizer,
    network: Mlp,
}

impl CmfPredictor {
    /// Trains a predictor on windows pooled over `config.train_leads`.
    ///
    /// Returns the predictor and its metrics on the held-out test part
    /// of the paper's 3 : 1 : 1 split.
    pub fn train<P: TelemetryProvider>(
        provider: &P,
        builder: &DatasetBuilder,
        config: &PredictorConfig,
    ) -> (Self, BinaryMetrics) {
        Self::train_observed(provider, builder, config, &mut NoopSink)
    }

    /// [`CmfPredictor::train`] with an instrumentation sink: dataset
    /// shape lands under the `predictor.*` keys and the inner training
    /// loop reports through [`mira_nn::network::obs_keys`].
    pub fn train_observed<P: TelemetryProvider, S: Sink>(
        provider: &P,
        builder: &DatasetBuilder,
        config: &PredictorConfig,
        sink: &mut S,
    ) -> (Self, BinaryMetrics) {
        let mut data = pooled_dataset(provider, builder, &config.train_leads);
        if config.hard_negatives {
            let before = data.len();
            for (rack, end, positive) in builder.hard_negative_points() {
                if let Some(f) = builder.window_features(provider, rack, end) {
                    data.push(f, f64::from(u8::from(positive)));
                }
            }
            sink.add(
                obs_keys::HARD_NEGATIVES,
                convert::u64_from_usize(data.len() - before),
            );
        }
        Self::train_on_observed(&data, config, sink)
    }

    /// Trains on an already-built dataset (3 : 1 : 1 split inside).
    ///
    /// # Panics
    ///
    /// Panics if the dataset is too small to split.
    pub fn train_on(data: &Dataset, config: &PredictorConfig) -> (Self, BinaryMetrics) {
        Self::train_on_observed(data, config, &mut NoopSink)
    }

    /// [`CmfPredictor::train_on`] with an instrumentation sink.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is too small to split.
    pub fn train_on_observed<S: Sink>(
        data: &Dataset,
        config: &PredictorConfig,
        sink: &mut S,
    ) -> (Self, BinaryMetrics) {
        assert!(data.len() >= 10, "dataset too small: {}", data.len());
        sink.add(obs_keys::DATASET_ROWS, convert::u64_from_usize(data.len()));
        sink.gauge(
            obs_keys::FEATURE_WIDTH,
            convert::f64_from_usize(data.width()),
        );
        let shuffled = data.shuffled(config.seed ^ 0x5871_70CD);
        let parts = shuffled.split(&[3.0, 1.0, 1.0]);
        // split() returns one part per weight: exactly three here.
        // mira-lint: allow(panic-reachability)
        let (train, test, validation) = (&parts[0], &parts[1], &parts[2]);

        let standardizer = Standardizer::fit(train);
        let train_std = standardizer.transform(train);
        let val_std = standardizer.transform(validation);

        let mut widths = vec![data.width()];
        widths.extend_from_slice(&config.hidden);
        widths.push(1);
        let mut network = Mlp::new(&widths, Activation::Relu, Activation::Sigmoid, config.seed);
        network.train_with_validation_observed(
            train_std.features(),
            train_std.labels(),
            val_std.features(),
            val_std.labels(),
            &config.train_config(),
            sink,
        );

        let predictor = Self {
            standardizer,
            network,
        };
        let metrics = predictor.evaluate(test);
        (predictor, metrics)
    }

    /// Probability that a CMF is coming, for a raw feature vector.
    #[must_use]
    pub fn predict(&self, features: &[f64]) -> f64 {
        self.network
            .predict(&self.standardizer.transform_row(features))
    }

    /// Metrics over a raw (un-standardized) dataset.
    #[must_use]
    pub fn evaluate(&self, data: &Dataset) -> BinaryMetrics {
        let probs: Vec<f64> = data.features().iter().map(|f| self.predict(f)).collect();
        BinaryMetrics::from_predictions(&probs, data.labels())
    }

    /// Threshold-free ranking quality (ROC AUC) over a raw dataset.
    #[must_use]
    pub fn auc(&self, data: &Dataset) -> Option<f64> {
        let probs: Vec<f64> = data.features().iter().map(|f| self.predict(f)).collect();
        mira_nn::roc_auc(&probs, data.labels())
    }

    /// Evaluates the trained predictor at a specific lead time with a
    /// freshly built balanced dataset.
    #[must_use]
    pub fn evaluate_at<P: TelemetryProvider>(
        &self,
        provider: &P,
        builder: &DatasetBuilder,
        lead: Duration,
    ) -> BinaryMetrics {
        let data = builder.build(provider, lead);
        self.evaluate(&data)
    }

    /// Evaluates at a specific lead time and an explicit decision
    /// threshold — the deployed operating point (e.g. the operator
    /// console's alert threshold), where the paper's "false positives
    /// need to be minimized" constraint actually binds.
    #[must_use]
    pub fn evaluate_at_threshold<P: TelemetryProvider>(
        &self,
        provider: &P,
        builder: &DatasetBuilder,
        lead: Duration,
        threshold: f64,
    ) -> BinaryMetrics {
        let data = builder.build(provider, lead);
        let probs: Vec<f64> = data.features().iter().map(|f| self.predict(f)).collect();
        BinaryMetrics::from_predictions_at(&probs, data.labels(), threshold)
    }

    /// The Fig. 13 sweep: metrics at each lead time.
    #[must_use]
    pub fn lead_time_sweep<P: TelemetryProvider>(
        &self,
        provider: &P,
        builder: &DatasetBuilder,
        leads: &[Duration],
    ) -> Vec<LeadTimePoint> {
        leads
            .iter()
            .map(|&lead| LeadTimePoint {
                lead,
                metrics: self.evaluate_at(provider, builder, lead),
            })
            .collect()
    }

    /// 5-fold (or k-fold) cross validation on a dataset; returns one
    /// metric set per fold.
    #[must_use]
    pub fn cross_validate(
        data: &Dataset,
        k: usize,
        config: &PredictorConfig,
    ) -> Vec<BinaryMetrics> {
        KFold::new(k, config.seed ^ 0xF01D)
            .splits(data)
            .into_iter()
            .map(|(train, test)| {
                let standardizer = Standardizer::fit(&train);
                let train_std = standardizer.transform(&train);
                let mut widths = vec![data.width()];
                widths.extend_from_slice(&config.hidden);
                widths.push(1);
                let mut network =
                    Mlp::new(&widths, Activation::Relu, Activation::Sigmoid, config.seed);
                network.train(
                    train_std.features(),
                    train_std.labels(),
                    &config.train_config(),
                );
                let fold = Self {
                    standardizer,
                    network,
                };
                fold.evaluate(&test)
            })
            .collect()
    }
}

/// Pools balanced datasets built at several lead times.
#[must_use]
pub fn pooled_dataset<P: TelemetryProvider>(
    provider: &P,
    builder: &DatasetBuilder,
    leads: &[Duration],
) -> Dataset {
    let mut pooled = Dataset::empty();
    for &lead in leads {
        let d = builder.build(provider, lead);
        for (f, &l) in d.features().iter().zip(d.labels()) {
            pooled.push(f.clone(), l);
        }
    }
    pooled
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureConfig;
    use mira_cooling::{CoolantMonitorSample, PrecursorSignature};
    use mira_facility::RackId;
    use mira_timeseries::{Date, SimTime};
    use mira_units::{Fahrenheit, Gpm, Kilowatts, RelHumidity};

    struct ToyProvider {
        cmfs: Vec<(SimTime, RackId)>,
        signature: PrecursorSignature,
    }

    impl TelemetryProvider for ToyProvider {
        fn sample(&self, rack: RackId, t: SimTime) -> CoolantMonitorSample {
            // Deterministic sensor noise.
            let mut h = (t.epoch_seconds() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            h ^= (rack.index() as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
            h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            let noise = (h >> 11) as f64 / (1u64 << 53) as f64 - 0.5;

            let mut inlet = 64.0;
            let mut outlet = 79.0;
            let mut flow = 26.0;
            for &(ct, cr) in &self.cmfs {
                if cr == rack && ct >= t && (ct - t) <= self.signature.horizon() {
                    inlet *= self.signature.inlet_factor(ct - t);
                    outlet *= self.signature.outlet_factor(ct - t);
                    flow *= self.signature.flow_factor(ct - t);
                }
            }
            CoolantMonitorSample {
                time: t,
                rack,
                dc_temperature: Fahrenheit::new(80.0 + noise),
                dc_humidity: RelHumidity::new(33.0 + noise),
                flow: Gpm::new(flow + noise * 0.3),
                inlet: Fahrenheit::new(inlet + noise * 0.15),
                outlet: Fahrenheit::new(outlet + noise * 0.2),
                power: Kilowatts::new(58.0 + noise),
            }
        }
    }

    fn setup() -> (ToyProvider, DatasetBuilder) {
        let start = SimTime::from_date(Date::new(2015, 1, 1));
        let end = SimTime::from_date(Date::new(2017, 12, 1));
        let cmfs: Vec<(SimTime, RackId)> = (0..60)
            .map(|i| {
                (
                    start + Duration::from_days(10 + i * 17) + Duration::from_hours(i % 23),
                    RackId::from_index((i as usize * 11) % 48),
                )
            })
            .collect();
        let provider = ToyProvider {
            cmfs: cmfs.clone(),
            signature: PrecursorSignature::mira(),
        };
        let builder = DatasetBuilder::new(FeatureConfig::mira(), cmfs, (start, end));
        (provider, builder)
    }

    fn quick_config() -> PredictorConfig {
        PredictorConfig {
            epochs: 30,
            train_leads: vec![
                Duration::from_minutes(30),
                Duration::from_hours(2),
                Duration::from_hours(4),
                Duration::from_hours(6),
            ],
            ..PredictorConfig::default()
        }
    }

    #[test]
    fn trains_and_beats_chance_comfortably() {
        let (provider, builder) = setup();
        let (_, metrics) = CmfPredictor::train(&provider, &builder, &quick_config());
        assert!(
            metrics.accuracy() > 0.8,
            "test accuracy {}",
            metrics.accuracy()
        );
    }

    #[test]
    fn observed_training_reports_the_pipeline_shape() {
        use mira_obs::{Collector, ManualClock};

        let (provider, builder) = setup();
        let config = quick_config();
        let mut sink = Collector::with_clock(ManualClock::new());
        let (observed, om) = CmfPredictor::train_observed(&provider, &builder, &config, &mut sink);
        let (plain, pm) = CmfPredictor::train(&provider, &builder, &config);
        assert_eq!(observed, plain, "instrumentation must not change training");
        assert_eq!(om, pm);

        let report = sink.into_report();
        let rows = report
            .metrics
            .counter(obs_keys::DATASET_ROWS)
            .expect("rows counted");
        assert!(rows >= 10);
        let (_, width) = report
            .metrics
            .gauge_stats(obs_keys::FEATURE_WIDTH)
            .expect("width gauged");
        assert!(width > 0.0);
        // The inner loop reports its epochs: no patience configured, so
        // the budget is exhausted.
        use mira_nn::network::obs_keys as nn_keys;
        let epochs = u64::try_from(config.epochs).expect("small");
        assert_eq!(report.metrics.counter(nn_keys::EPOCHS), Some(epochs));
        assert_eq!(
            report.metrics.counter(nn_keys::EARLY_STOP_EXHAUSTED),
            Some(1)
        );
        // Hard negatives are off in the default config.
        assert_eq!(report.metrics.counter(obs_keys::HARD_NEGATIVES), None);
    }

    #[test]
    fn short_leads_beat_long_leads() {
        let (provider, builder) = setup();
        let (predictor, _) = CmfPredictor::train(&provider, &builder, &quick_config());
        let near = predictor.evaluate_at(&provider, &builder, Duration::from_minutes(30));
        let far = predictor.evaluate_at(&provider, &builder, Duration::from_hours(6));
        assert!(
            near.accuracy() >= far.accuracy(),
            "near {} far {}",
            near.accuracy(),
            far.accuracy()
        );
        assert!(near.accuracy() > 0.9, "near accuracy {}", near.accuracy());
        assert!(far.accuracy() > 0.7, "far accuracy {}", far.accuracy());
    }

    #[test]
    fn sweep_produces_all_points() {
        let (provider, builder) = setup();
        let (predictor, _) = CmfPredictor::train(&provider, &builder, &quick_config());
        let leads = [
            Duration::from_minutes(30),
            Duration::from_hours(3),
            Duration::from_hours(6),
        ];
        let sweep = predictor.lead_time_sweep(&provider, &builder, &leads);
        assert_eq!(sweep.len(), 3);
        assert_eq!(sweep[0].lead, leads[0]);
        for p in &sweep {
            assert!(p.metrics.total() > 0);
        }
    }

    #[test]
    fn cross_validation_runs_k_folds() {
        let (provider, builder) = setup();
        let data = pooled_dataset(
            &provider,
            &builder,
            &[Duration::from_minutes(30), Duration::from_hours(3)],
        );
        let folds = CmfPredictor::cross_validate(&data, 5, &quick_config());
        assert_eq!(folds.len(), 5);
        let mean_acc: f64 =
            folds.iter().map(BinaryMetrics::accuracy).sum::<f64>() / folds.len() as f64;
        assert!(mean_acc > 0.75, "CV accuracy {mean_acc}");
    }

    #[test]
    fn predict_gives_probability() {
        let (provider, builder) = setup();
        let (predictor, _) = CmfPredictor::train(&provider, &builder, &quick_config());
        let data = builder.build(&provider, Duration::from_minutes(30));
        for f in data.features().iter().take(10) {
            let p = predictor.predict(f);
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
