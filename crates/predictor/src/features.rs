//! Windowed change-features over the coolant-monitor channels.
//!
//! The paper's key observation (Sec. VI-D) is that *levels* of the
//! coolant metrics are not informative — they stay high through perfectly
//! healthy high-utilization periods — while their *changes* over the
//! trailing hours are. The default feature mode therefore encodes
//! relative changes across segments of the trailing window; the
//! levels-only mode exists to reproduce the ablation showing why
//! threshold-based monitoring falls short.

use serde::{Deserialize, Serialize};

use mira_cooling::CoolantMonitorSample;
use mira_timeseries::Duration;
use mira_units::convert;

/// How raw channel values become features.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureMode {
    /// Relative changes of each window segment from the window's start —
    /// the paper's approach.
    Deltas,
    /// Delta features over rack-vs-floor-median channel *ratios*.
    ///
    /// A failure precursor moves one rack's coolant; an economizer or
    /// weather swing moves all 48 together. Dividing each channel by
    /// the floor median before taking deltas cancels that common mode —
    /// the feature-engineering step that makes the predictor deployable
    /// through transitional-season weather (and a concrete instance of
    /// the paper's "use the overall coolant telemetry" suggestion).
    DifferentialDeltas,
    /// Only the *current* channel readings (the final segment's means) —
    /// what a threshold-based monitor inspects. The paper's Sec. VI-D
    /// argues this is insufficient: levels stay high through healthy
    /// high-utilization periods and drift with season and calibration,
    /// masking the faint early signatures that changes expose.
    Levels,
}

/// Feature-extraction configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeatureConfig {
    /// Length of the trailing telemetry window (the paper uses 6 h).
    pub window: Duration,
    /// Number of segments the window is divided into; features are
    /// per-channel per-segment.
    pub segments: usize,
    /// Feature mode.
    pub mode: FeatureMode,
}

impl FeatureConfig {
    /// The paper's configuration: six hours, six segments, delta
    /// features — 36 features over the 6 channels.
    #[must_use]
    pub fn mira() -> Self {
        Self {
            window: Duration::from_hours(6),
            segments: 6,
            mode: FeatureMode::Deltas,
        }
    }

    /// Number of features produced.
    #[must_use]
    pub fn feature_count(&self) -> usize {
        match self.mode {
            FeatureMode::Deltas | FeatureMode::DifferentialDeltas => 6 * self.segments,
            FeatureMode::Levels => 6,
        }
    }

    /// Extracts the feature vector from a time-ordered window of
    /// samples (all from one rack). [`FeatureMode::DifferentialDeltas`]
    /// needs the floor medians too — use
    /// [`FeatureConfig::extract_rows`] (or
    /// [`crate::DatasetBuilder::window_features`], which handles it).
    ///
    /// Returns `None` when there are too few samples to fill every
    /// segment (at least one sample per segment is required).
    #[must_use]
    pub fn extract(&self, window: &[CoolantMonitorSample]) -> Option<Vec<f64>> {
        let rows: Vec<[f64; 6]> = window.iter().map(CoolantMonitorSample::channels).collect();
        self.extract_rows(&rows)
    }

    /// Extracts features from pre-assembled channel rows (one `[f64; 6]`
    /// per timestep). For [`FeatureMode::DifferentialDeltas`] the rows
    /// must already be rack-over-median ratios.
    #[must_use]
    // seg is clamped to segments - 1 and channel indices stay in the
    // fixed [f64; 6] rows. mira-lint: allow(panic-reachability)
    pub fn extract_rows(&self, window: &[[f64; 6]]) -> Option<Vec<f64>> {
        if window.len() < self.segments.max(2) {
            return None;
        }
        // Segment means per channel.
        let seg_len =
            convert::f64_from_usize(window.len()) / convert::f64_from_usize(self.segments);
        let mut seg_means = vec![[0.0f64; 6]; self.segments];
        let mut seg_counts = vec![0u32; self.segments];
        for (i, ch) in window.iter().enumerate() {
            let seg = convert::usize_from_f64_floor(convert::f64_from_usize(i) / seg_len)
                .min(self.segments - 1);
            for c in 0..6 {
                seg_means[seg][c] += ch[c];
            }
            seg_counts[seg] += 1;
        }
        for (seg, count) in seg_means.iter_mut().zip(&seg_counts) {
            if *count == 0 {
                return None;
            }
            for v in seg.iter_mut() {
                *v /= f64::from(*count);
            }
        }

        let mut features = Vec::with_capacity(self.feature_count());
        match self.mode {
            FeatureMode::Deltas | FeatureMode::DifferentialDeltas => {
                // Relative change of each segment mean from the window's
                // first segment (the "healthy baseline"), per channel.
                for c in 0..6 {
                    let base = seg_means[0][c];
                    let denom = base.abs().max(1e-6);
                    for seg in seg_means.iter() {
                        features.push((seg[c] - base) / denom);
                    }
                }
            }
            FeatureMode::Levels => {
                if let Some(last) = seg_means.last() {
                    features.extend_from_slice(last);
                }
            }
        }
        Some(features)
    }
}

impl Default for FeatureConfig {
    fn default() -> Self {
        Self::mira()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mira_facility::RackId;
    use mira_timeseries::{Date, SimTime};
    use mira_units::{Fahrenheit, Gpm, Kilowatts, RelHumidity};

    fn sample(t_offset: i64, inlet: f64) -> CoolantMonitorSample {
        CoolantMonitorSample {
            time: SimTime::from_date(Date::new(2016, 5, 1))
                + Duration::from_seconds(t_offset * 300),
            rack: RackId::new(0, 0),
            dc_temperature: Fahrenheit::new(80.0),
            dc_humidity: RelHumidity::new(33.0),
            flow: Gpm::new(26.0),
            inlet: Fahrenheit::new(inlet),
            outlet: Fahrenheit::new(79.0),
            power: Kilowatts::new(58.0),
        }
    }

    #[test]
    fn mira_config_produces_36_features() {
        let cfg = FeatureConfig::mira();
        assert_eq!(cfg.feature_count(), 36);
        let window: Vec<CoolantMonitorSample> = (0..72).map(|i| sample(i, 64.0)).collect();
        let f = cfg.extract(&window).expect("full window");
        assert_eq!(f.len(), 36);
    }

    #[test]
    fn flat_telemetry_gives_zero_deltas() {
        let cfg = FeatureConfig::mira();
        let window: Vec<CoolantMonitorSample> = (0..72).map(|i| sample(i, 64.0)).collect();
        let f = cfg.extract(&window).unwrap();
        assert!(f.iter().all(|v| v.abs() < 1e-9));
    }

    #[test]
    fn inlet_drop_shows_in_inlet_features_only() {
        let cfg = FeatureConfig::mira();
        // Inlet sags 7 % over the window; everything else flat.
        let window: Vec<CoolantMonitorSample> = (0..72)
            .map(|i| sample(i, 64.0 * (1.0 - 0.07 * i as f64 / 71.0)))
            .collect();
        let f = cfg.extract(&window).unwrap();
        // Channels are [dc_temp, dc_rh, flow, inlet, outlet, power]; 6
        // segment features each. Inlet occupies indices 18..24.
        let inlet_last = f[23];
        assert!(inlet_last < -0.04, "inlet delta {inlet_last}");
        for (i, v) in f.iter().enumerate() {
            if !(18..24).contains(&i) {
                assert!(v.abs() < 1e-9, "leak at {i}: {v}");
            }
        }
    }

    #[test]
    fn levels_mode_reports_current_readings_only() {
        let cfg = FeatureConfig {
            mode: FeatureMode::Levels,
            ..FeatureConfig::mira()
        };
        assert_eq!(cfg.feature_count(), 6);
        let window: Vec<CoolantMonitorSample> = (0..72).map(|i| sample(i, 64.0)).collect();
        let f = cfg.extract(&window).unwrap();
        assert_eq!(f.len(), 6);
        // Channel order: [dc_temp, dc_rh, flow, inlet, outlet, power].
        assert!((f[3] - 64.0).abs() < 1e-9, "inlet level {}", f[3]);
        assert!((f[2] - 26.0).abs() < 1e-9, "flow level {}", f[2]);
    }

    #[test]
    fn short_window_is_rejected() {
        let cfg = FeatureConfig::mira();
        let window: Vec<CoolantMonitorSample> = (0..3).map(|i| sample(i, 64.0)).collect();
        assert!(cfg.extract(&window).is_none());
    }

    #[test]
    fn uneven_segment_fill_still_works() {
        let cfg = FeatureConfig::mira();
        // 71 samples across 6 segments: not divisible.
        let window: Vec<CoolantMonitorSample> = (0..71).map(|i| sample(i, 64.0)).collect();
        let f = cfg.extract(&window).unwrap();
        assert_eq!(f.len(), 36);
    }
}
