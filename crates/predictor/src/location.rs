//! Location-aware prediction — the paper's requested next step.
//!
//! Sec. VI-B: "operationally it will be even more useful to have a
//! predictor which even predicts the location of an impeding CMF from
//! the overall coolant telemetry of the datacenter." This module scores
//! *every* rack's trailing window with a trained [`CmfPredictor`] and
//! ranks them — turning the per-rack binary model into a floor-wide
//! localization tool evaluated by top-k hit rate.

use serde::{Deserialize, Serialize};

use mira_facility::RackId;
use mira_timeseries::Duration;
use mira_units::convert;

use crate::dataset::{DatasetBuilder, TelemetryProvider};
use crate::pipeline::CmfPredictor;

/// Ranked per-rack failure probabilities at one instant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RackRanking {
    /// `(rack, probability)` sorted most-suspicious first.
    pub ranked: Vec<(RackId, f64)>,
}

impl RackRanking {
    /// 0-based rank of `rack` (None if scoring failed for it).
    #[must_use]
    pub fn rank_of(&self, rack: RackId) -> Option<usize> {
        self.ranked.iter().position(|(r, _)| *r == rack)
    }

    /// The `k` most suspicious racks.
    #[must_use]
    pub fn top(&self, k: usize) -> Vec<RackId> {
        self.ranked.iter().take(k).map(|(r, _)| *r).collect()
    }
}

/// Top-k localization quality over a set of failures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TopKAccuracy {
    /// The k evaluated.
    pub k: usize,
    /// Fraction of failures whose rack ranked within the top k.
    pub hit_rate: f64,
    /// Mean 0-based rank of the failing rack.
    pub mean_rank: f64,
    /// Failures evaluated.
    pub events: usize,
}

/// Floor-wide localization on top of a trained per-rack predictor.
#[derive(Debug)]
pub struct LocationPredictor<'a> {
    predictor: &'a CmfPredictor,
    builder: &'a DatasetBuilder,
}

impl<'a> LocationPredictor<'a> {
    /// Wraps a trained predictor and its dataset builder (for window
    /// extraction).
    #[must_use]
    pub fn new(predictor: &'a CmfPredictor, builder: &'a DatasetBuilder) -> Self {
        Self { predictor, builder }
    }

    /// Scores all 48 racks at `t` and ranks them most-suspicious first.
    #[must_use]
    pub fn rank_at<P: TelemetryProvider>(
        &self,
        provider: &P,
        t: mira_timeseries::SimTime,
    ) -> RackRanking {
        let mut ranked: Vec<(RackId, f64)> = RackId::all()
            .filter_map(|rack| {
                self.builder
                    .window_features(provider, rack, t)
                    .map(|f| (rack, self.predictor.predict(&f)))
            })
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
        RackRanking { ranked }
    }

    /// Evaluates localization at a lead time over up to `max_events`
    /// failures: for each CMF, rank the floor `lead` beforehand and
    /// check where the failing rack landed.
    #[must_use]
    pub fn top_k_accuracy<P: TelemetryProvider>(
        &self,
        provider: &P,
        lead: Duration,
        k: usize,
        max_events: usize,
    ) -> TopKAccuracy {
        let mut hits = 0usize;
        let mut rank_sum = 0usize;
        let mut events = 0usize;
        for &(cmf_time, rack) in self.builder.cmfs().iter().take(max_events) {
            let ranking = self.rank_at(provider, cmf_time - lead);
            let Some(rank) = ranking.rank_of(rack) else {
                continue;
            };
            events += 1;
            rank_sum += rank;
            if rank < k {
                hits += 1;
            }
        }
        TopKAccuracy {
            k,
            hit_rate: if events > 0 {
                convert::f64_from_usize(hits) / convert::f64_from_usize(events)
            } else {
                0.0
            },
            mean_rank: if events > 0 {
                convert::f64_from_usize(rank_sum) / convert::f64_from_usize(events)
            } else {
                0.0
            },
            events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureConfig;
    use crate::pipeline::PredictorConfig;
    use mira_cooling::{CoolantMonitorSample, PrecursorSignature};
    use mira_timeseries::{Date, SimTime};
    use mira_units::{Fahrenheit, Gpm, Kilowatts, RelHumidity};

    struct ToyProvider {
        cmfs: Vec<(SimTime, RackId)>,
        signature: PrecursorSignature,
    }

    impl TelemetryProvider for ToyProvider {
        fn sample(&self, rack: RackId, t: SimTime) -> CoolantMonitorSample {
            let mut h = (t.epoch_seconds() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            h ^= (rack.index() as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
            h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            let noise = (h >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            let mut inlet = 64.0;
            let mut flow = 26.0;
            for &(ct, cr) in &self.cmfs {
                if cr == rack && ct >= t && (ct - t) <= self.signature.horizon() {
                    inlet *= self.signature.inlet_factor(ct - t);
                    flow *= self.signature.flow_factor(ct - t);
                }
            }
            CoolantMonitorSample {
                time: t,
                rack,
                dc_temperature: Fahrenheit::new(80.0 + noise),
                dc_humidity: RelHumidity::new(33.0 + noise),
                flow: Gpm::new(flow + noise * 0.3),
                inlet: Fahrenheit::new(inlet + noise * 0.12),
                outlet: Fahrenheit::new(79.0 + noise * 0.2),
                power: Kilowatts::new(58.0 + noise),
            }
        }
    }

    fn setup() -> (ToyProvider, DatasetBuilder) {
        let start = SimTime::from_date(Date::new(2015, 1, 1));
        let end = SimTime::from_date(Date::new(2017, 6, 1));
        let cmfs: Vec<(SimTime, RackId)> = (0..50)
            .map(|i| {
                (
                    start + Duration::from_days(12 + i * 17) + Duration::from_hours(i % 21),
                    RackId::from_index((i as usize * 13) % 48),
                )
            })
            .collect();
        let provider = ToyProvider {
            cmfs: cmfs.clone(),
            signature: PrecursorSignature::mira(),
        };
        let builder = DatasetBuilder::new(FeatureConfig::mira(), cmfs, (start, end));
        (provider, builder)
    }

    #[test]
    fn localizes_the_failing_rack() {
        let (provider, builder) = setup();
        let config = PredictorConfig {
            epochs: 30,
            train_leads: vec![Duration::from_hours(1), Duration::from_hours(3)],
            ..PredictorConfig::default()
        };
        let (predictor, _) = CmfPredictor::train(&provider, &builder, &config);
        let loc = LocationPredictor::new(&predictor, &builder);

        // Two hours before a failure the sick rack should rank first or
        // nearly first.
        let acc = loc.top_k_accuracy(&provider, Duration::from_hours(2), 3, 25);
        assert!(acc.events >= 20);
        assert!(acc.hit_rate > 0.8, "top-3 hit rate {}", acc.hit_rate);
        assert!(acc.mean_rank < 5.0, "mean rank {}", acc.mean_rank);
    }

    #[test]
    fn ranking_orders_by_probability() {
        let (provider, builder) = setup();
        let config = PredictorConfig {
            epochs: 20,
            train_leads: vec![Duration::from_hours(1)],
            ..PredictorConfig::default()
        };
        let (predictor, _) = CmfPredictor::train(&provider, &builder, &config);
        let loc = LocationPredictor::new(&predictor, &builder);
        let (cmf_time, _) = builder.cmfs()[5];
        let ranking = loc.rank_at(&provider, cmf_time - Duration::from_hours(1));
        assert_eq!(ranking.ranked.len(), 48);
        for pair in ranking.ranked.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
        assert_eq!(ranking.top(3).len(), 3);
    }
}
