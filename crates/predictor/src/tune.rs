//! Bayesian-optimization architecture search.
//!
//! The paper: "Bayesian Optimization, a technique frequently used for
//! hyper-parameter tuning, is used to optimize the architecture of this
//! neural network (number of neurons per layer)" — landing on 12-12-6.
//! [`tune_architecture`] reproduces that loop: candidates are
//! three-hidden-layer width triples, the objective is validation
//! accuracy of a short training run, and the search is GP + expected
//! improvement.

use serde::{Deserialize, Serialize};

use mira_nn::{BayesianOptimizer, Dataset};
use mira_units::convert;

use crate::pipeline::{CmfPredictor, PredictorConfig};

/// The search space and budget for architecture tuning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchitectureSearch {
    /// Candidate widths for each of the three hidden layers.
    pub layer1: Vec<usize>,
    /// Candidates for the second hidden layer.
    pub layer2: Vec<usize>,
    /// Candidates for the third hidden layer.
    pub layer3: Vec<usize>,
    /// Objective evaluations to spend.
    pub budget: usize,
    /// Epochs per evaluation (kept short; this is a search, not a final
    /// fit).
    pub epochs: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for ArchitectureSearch {
    fn default() -> Self {
        Self {
            layer1: vec![6, 12, 18, 24],
            layer2: vec![6, 12, 18],
            layer3: vec![3, 6, 9],
            budget: 10,
            epochs: 15,
            seed: 0,
        }
    }
}

impl ArchitectureSearch {
    /// Enumerates the candidate configurations as f64 vectors for the
    /// GP.
    #[must_use]
    pub fn space(&self) -> Vec<Vec<f64>> {
        let mut out = Vec::new();
        for &a in &self.layer1 {
            for &b in &self.layer2 {
                for &c in &self.layer3 {
                    out.push(vec![
                        convert::f64_from_usize(a),
                        convert::f64_from_usize(b),
                        convert::f64_from_usize(c),
                    ]);
                }
            }
        }
        out
    }
}

/// Runs the architecture search on a dataset, returning the best hidden
/// widths found and the observations made.
#[must_use]
pub fn tune_architecture(
    data: &Dataset,
    search: &ArchitectureSearch,
) -> (Vec<usize>, Vec<(Vec<usize>, f64)>) {
    let mut bo = BayesianOptimizer::new(search.space(), search.seed);
    let epochs = search.epochs;
    let seed = search.seed;
    let best = bo.optimize(
        |cfg| {
            let config = PredictorConfig {
                hidden: cfg
                    .iter()
                    .map(|&w| convert::usize_from_f64_round(w))
                    .collect(),
                epochs,
                seed,
                ..PredictorConfig::default()
            };
            let (_, metrics) = CmfPredictor::train_on(data, &config);
            metrics.accuracy()
        },
        search.budget,
    );
    let observations = bo
        .observations()
        .into_iter()
        .map(|(cfg, score)| {
            (
                cfg.iter()
                    .map(|&w| convert::usize_from_f64_round(w))
                    .collect(),
                score,
            )
        })
        .collect();
    (
        best.iter()
            .map(|&w| convert::usize_from_f64_round(w))
            .collect(),
        observations,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A linearly-separable synthetic dataset: tuning should find *some*
    /// architecture with high accuracy.
    fn separable_dataset(n: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(4);
        let mut data = Dataset::empty();
        for _ in 0..n {
            let label = rng.random::<f64>() > 0.5;
            let shift = if label { 1.0 } else { -1.0 };
            let row: Vec<f64> = (0..6)
                .map(|_| shift * 0.8 + (rng.random::<f64>() - 0.5))
                .collect();
            data.push(row, f64::from(u8::from(label)));
        }
        data
    }

    #[test]
    fn space_enumerates_cartesian_product() {
        let s = ArchitectureSearch::default();
        assert_eq!(s.space().len(), 4 * 3 * 3);
    }

    #[test]
    fn tuning_finds_accurate_architecture() {
        let data = separable_dataset(300);
        let search = ArchitectureSearch {
            layer1: vec![4, 8],
            layer2: vec![4, 8],
            layer3: vec![3],
            budget: 4,
            epochs: 25,
            seed: 2,
        };
        let (best, observations) = tune_architecture(&data, &search);
        assert_eq!(best.len(), 3);
        assert!(search.layer1.contains(&best[0]));
        assert_eq!(observations.len(), 4);
        let best_score = observations
            .iter()
            .map(|(_, s)| *s)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(best_score > 0.85, "best accuracy {best_score}");
    }
}
