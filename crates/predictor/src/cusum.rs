//! Streaming drift detection: EWMA baselines + two-sided CUSUM.
//!
//! Between the static thresholds the paper criticizes and the neural
//! network it proposes sits the classical statistical-process-control
//! answer: track each channel's baseline with an exponentially weighted
//! moving average and accumulate standardized deviations with a CUSUM —
//! raising an alarm when a *sustained drift* (not a level) exceeds a
//! decision interval. This is deployable on the monitor itself (O(1)
//! state per channel per rack) and makes a strong middle baseline for
//! Fig. 13-style evaluation.

use serde::{Deserialize, Serialize};

use mira_cooling::CoolantMonitorSample;
use mira_nn::BinaryMetrics;
use mira_timeseries::Duration;

use crate::dataset::{DatasetBuilder, TelemetryProvider};

/// Two-sided CUSUM over one telemetry channel with an EWMA baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CusumChannel {
    /// EWMA smoothing factor for the baseline (slow: tracks season, not
    /// drift).
    pub baseline_alpha: f64,
    /// Assumed channel noise scale (1 σ) for standardization.
    pub sigma: f64,
    /// Slack `k` in σ units (drifts below this are ignored).
    pub slack: f64,
    /// Decision interval `h` in σ units.
    pub decision: f64,
    baseline: f64,
    hi: f64,
    lo: f64,
    primed: bool,
}

impl CusumChannel {
    /// Creates a channel detector.
    ///
    /// # Panics
    ///
    /// Panics unless `sigma > 0`, `0 < baseline_alpha < 1`, and the
    /// slack/decision parameters are positive.
    #[must_use]
    pub fn new(baseline_alpha: f64, sigma: f64, slack: f64, decision: f64) -> Self {
        assert!(sigma > 0.0, "sigma must be positive");
        assert!(
            baseline_alpha > 0.0 && baseline_alpha < 1.0,
            "alpha must be in (0, 1)"
        );
        assert!(slack > 0.0 && decision > 0.0, "k and h must be positive");
        Self {
            baseline_alpha,
            sigma,
            slack,
            decision,
            baseline: 0.0,
            hi: 0.0,
            lo: 0.0,
            primed: false,
        }
    }

    /// Feeds one reading; returns whether the CUSUM crossed the
    /// decision interval (alarm).
    pub fn push(&mut self, x: f64) -> bool {
        if !self.primed {
            self.baseline = x;
            self.primed = true;
            return false;
        }
        let z = (x - self.baseline) / self.sigma;
        self.hi = (self.hi + z - self.slack).max(0.0);
        self.lo = (self.lo - z - self.slack).max(0.0);
        // Baseline adapts slowly so genuine drifts accumulate before
        // being absorbed.
        self.baseline += self.baseline_alpha * (x - self.baseline);
        self.hi > self.decision || self.lo > self.decision
    }

    /// Current CUSUM magnitudes `(hi, lo)`.
    #[must_use]
    pub fn state(&self) -> (f64, f64) {
        (self.hi, self.lo)
    }

    /// Resets the accumulators (after an alarm was handled).
    pub fn reset(&mut self) {
        self.hi = 0.0;
        self.lo = 0.0;
    }
}

/// A per-rack drift detector over the inlet/outlet/flow channels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CusumDetector {
    /// Inlet-temperature channel.
    pub inlet: CusumChannel,
    /// Outlet-temperature channel.
    pub outlet: CusumChannel,
    /// Flow channel.
    pub flow: CusumChannel,
}

impl CusumDetector {
    /// A Mira-plausible tuning: σ from the sensor-noise scales, slack
    /// 0.5 σ, decision interval 8 σ of accumulated drift.
    #[must_use]
    pub fn mira() -> Self {
        Self {
            inlet: CusumChannel::new(0.01, 0.12, 0.5, 8.0),
            outlet: CusumChannel::new(0.01, 0.25, 0.5, 8.0),
            flow: CusumChannel::new(0.01, 0.30, 0.5, 10.0),
        }
    }

    /// Feeds one coolant-monitor sample; true if any channel alarms.
    pub fn push(&mut self, sample: &CoolantMonitorSample) -> bool {
        let a = self.inlet.push(sample.inlet.value());
        let b = self.outlet.push(sample.outlet.value());
        let c = self.flow.push(sample.flow.value());
        a || b || c
    }

    /// Evaluates the detector like the other baselines: replay the
    /// trailing window ending at each balanced sample point and predict
    /// positive if any sample alarms.
    #[must_use]
    pub fn evaluate_at<P: TelemetryProvider>(
        provider: &P,
        builder: &DatasetBuilder,
        lead: Duration,
    ) -> BinaryMetrics {
        let step = provider.interval();
        let window = builder.features().window;
        let n = (window.as_seconds() / step.as_seconds()).max(2);
        let mut metrics = BinaryMetrics::new();
        for (rack, end, positive) in builder.sample_points(lead) {
            // Warm the baseline on the preceding (healthy) stretch, then
            // watch the window.
            let mut det = Self::mira();
            let warm_start = end - window - window;
            for k in 0..n {
                det.push(&provider.sample(rack, warm_start + step * k));
            }
            det.inlet.reset();
            det.outlet.reset();
            det.flow.reset();
            let start = end - window;
            let predicted = (0..n).any(|k| det.push(&provider.sample(rack, start + step * k)));
            metrics.record(predicted, positive);
        }
        metrics
    }
}

impl Default for CusumDetector {
    fn default() -> Self {
        Self::mira()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_quiet_on_noise() {
        let mut ch = CusumChannel::new(0.02, 0.1, 0.5, 8.0);
        // Deterministic pseudo-noise around 64.
        let mut alarms = 0;
        for k in 0..2000u64 {
            let h = k.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let noise = ((h >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 0.2;
            if ch.push(64.0 + noise) {
                alarms += 1;
                ch.reset();
            }
        }
        assert!(alarms <= 1, "{alarms} false alarms on pure noise");
    }

    #[test]
    fn catches_a_slow_drift() {
        let mut ch = CusumChannel::new(0.01, 0.1, 0.5, 8.0);
        for _ in 0..200 {
            assert!(!ch.push(64.0));
        }
        // A 0.02 F/sample downward drift: far below any plausible static
        // threshold but 0.2 σ per step of sustained signal.
        let mut fired = false;
        let mut x = 64.0;
        for _ in 0..200 {
            x -= 0.02;
            if ch.push(x) {
                fired = true;
                break;
            }
        }
        assert!(fired, "CUSUM must catch a sustained drift");
    }

    #[test]
    fn step_change_fires_fast() {
        let mut ch = CusumChannel::new(0.01, 0.1, 0.5, 8.0);
        for _ in 0..100 {
            ch.push(64.0);
        }
        let mut steps = 0;
        loop {
            steps += 1;
            if ch.push(62.0) {
                break;
            }
            assert!(steps < 20, "step change took too long");
        }
        assert!(steps <= 2, "20 σ step should fire almost immediately");
    }

    #[test]
    fn two_sided_detection() {
        let mut up = CusumChannel::new(0.01, 0.1, 0.5, 8.0);
        let mut down = up;
        for _ in 0..100 {
            up.push(64.0);
            down.push(64.0);
        }
        let mut fired_up = false;
        let mut fired_down = false;
        for k in 0..100 {
            let d = f64::from(k) * 0.03;
            fired_up |= up.push(64.0 + d);
            fired_down |= down.push(64.0 - d);
        }
        assert!(fired_up && fired_down);
    }

    #[test]
    fn reset_clears_state() {
        let mut ch = CusumChannel::new(0.01, 0.1, 0.5, 8.0);
        ch.push(64.0);
        for _ in 0..50 {
            ch.push(63.0);
        }
        assert!(ch.state().1 > 0.0);
        ch.reset();
        assert_eq!(ch.state(), (0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn rejects_bad_sigma() {
        let _ = CusumChannel::new(0.01, 0.0, 0.5, 8.0);
    }
}
