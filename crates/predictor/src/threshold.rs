//! The threshold-detector baseline — Sec. VI-D's strawman, implemented.
//!
//! "Typical data center monitoring infrastructure monitors temperature,
//! pressure and humidity levels ... there are set threshold levels and
//! the system throws off warnings when the corresponding threshold
//! levels are crossed. However ... not only the level of cooling
//! metrics, but more importantly the change in their values are key
//! features for detecting abnormalities."
//!
//! [`ThresholdDetector`] is that typical infrastructure: static warning
//! thresholds on the *current* readings, checked once per sample. It is
//! a genuine, tunable baseline — evaluated on exactly the same balanced
//! sample points as the neural predictor — and it loses exactly where
//! the paper says it must: at long lead times, where the precursor is a
//! sub-percent drift that no safe static threshold can separate from
//! healthy variation.

use serde::{Deserialize, Serialize};

use mira_nn::BinaryMetrics;
use mira_timeseries::Duration;
use mira_units::{convert, Fahrenheit, Gpm};

use crate::dataset::{DatasetBuilder, TelemetryProvider};

/// Static warning thresholds on current coolant readings.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThresholdDetector {
    /// Warn when the inlet runs colder than this (over-chilled loop —
    /// the condensation precursor).
    pub min_inlet: Fahrenheit,
    /// Warn when the inlet runs hotter than this.
    pub max_inlet: Fahrenheit,
    /// Warn when the outlet runs hotter than this.
    pub max_outlet: Fahrenheit,
    /// Warn when flow drops below this.
    pub min_flow: Gpm,
    /// Warn when the condensation margin falls below this.
    pub min_margin: Fahrenheit,
}

impl ThresholdDetector {
    /// A production-plausible tuning: tight enough to catch the visible
    /// (−7 %) inlet sag, loose enough not to fire on seasonal variation
    /// (the winter economizer runs the inlet ≈1.3 °F warm, and control
    /// noise adds ≈±0.5 °F).
    #[must_use]
    pub fn mira() -> Self {
        Self {
            min_inlet: Fahrenheit::new(62.0),
            max_inlet: Fahrenheit::new(68.0),
            max_outlet: Fahrenheit::new(86.0),
            min_flow: Gpm::new(20.0),
            min_margin: Fahrenheit::new(6.0),
        }
    }

    /// Whether a sample trips any warning threshold.
    #[must_use]
    pub fn warns(&self, sample: &mira_cooling::CoolantMonitorSample) -> bool {
        sample.inlet < self.min_inlet
            || sample.inlet > self.max_inlet
            || sample.outlet > self.max_outlet
            || sample.flow < self.min_flow
            || sample.condensation_margin() < self.min_margin
    }

    /// Evaluates the detector at a lead time on the same balanced
    /// points the neural predictor uses: positive if any of the last
    /// `probe_samples` readings before the window end warns.
    #[must_use]
    pub fn evaluate_at<P: TelemetryProvider>(
        &self,
        provider: &P,
        builder: &DatasetBuilder,
        lead: Duration,
        probe_samples: usize,
    ) -> BinaryMetrics {
        let step = provider.interval();
        let mut metrics = BinaryMetrics::new();
        for (rack, end, positive) in builder.sample_points(lead) {
            let predicted = (0..probe_samples.max(1)).any(|k| {
                let sample = provider.sample(rack, end - step * convert::i64_from_usize(k));
                self.warns(&sample)
            });
            metrics.record(predicted, positive);
        }
        metrics
    }
}

impl Default for ThresholdDetector {
    fn default() -> Self {
        Self::mira()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mira_cooling::CoolantMonitorSample;
    use mira_facility::RackId;
    use mira_timeseries::{Date, SimTime};
    use mira_units::{Kilowatts, RelHumidity};

    fn sample(inlet: f64, flow: f64, outlet: f64) -> CoolantMonitorSample {
        CoolantMonitorSample {
            time: SimTime::from_date(Date::new(2016, 5, 1)),
            rack: RackId::new(0, 0),
            dc_temperature: Fahrenheit::new(80.0),
            dc_humidity: RelHumidity::new(33.0),
            flow: Gpm::new(flow),
            inlet: Fahrenheit::new(inlet),
            outlet: Fahrenheit::new(outlet),
            power: Kilowatts::new(58.0),
        }
    }

    #[test]
    fn healthy_readings_stay_quiet() {
        let det = ThresholdDetector::mira();
        assert!(!det.warns(&sample(64.0, 26.0, 79.0)));
        // Winter economizer uplift does not fire it.
        assert!(!det.warns(&sample(65.5, 26.0, 80.5)));
    }

    #[test]
    fn deep_inlet_sag_warns() {
        let det = ThresholdDetector::mira();
        // The -7 % trough: 64 -> 59.5 F.
        assert!(det.warns(&sample(59.5, 26.0, 74.0)));
    }

    #[test]
    fn faint_early_drift_does_not_warn() {
        let det = ThresholdDetector::mira();
        // The sub-1 % drift 5-6 h out: 64 -> 63.5 F. Invisible to a
        // threshold that must tolerate 62-68 F as normal.
        assert!(!det.warns(&sample(63.5, 26.0, 78.5)));
    }

    #[test]
    fn flow_collapse_warns() {
        let det = ThresholdDetector::mira();
        assert!(det.warns(&sample(64.0, 14.0, 79.0)));
    }

    #[test]
    fn hot_outlet_warns() {
        let det = ThresholdDetector::mira();
        assert!(det.warns(&sample(64.0, 26.0, 88.0)));
    }
}
