//! Calendar-keyed streaming aggregation.
//!
//! The paper's temporal analyses are all calendar re-groupings of the same
//! telemetry stream: per-year trends (Fig. 2–3), month-of-year medians
//! (Fig. 4), and day-of-week medians (Fig. 5). [`CalendarBins`] performs
//! all of these in one pass with O(1) memory per bin: a [`Welford`]
//! accumulator for means/extremes plus a [`P2Quantile`] for the median.

use mira_units::convert;
use serde::{Deserialize, Serialize};

use crate::civil::{Month, Weekday};
use crate::stats::{P2Quantile, Welford};
use crate::time::{CivilParts, SimTime};

/// Combined mean/median summary of one calendar bin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinSummary {
    welford: Welford,
    median: P2Quantile,
}

impl Default for BinSummary {
    fn default() -> Self {
        Self::new()
    }
}

impl BinSummary {
    /// Creates an empty bin.
    #[must_use]
    pub fn new() -> Self {
        Self {
            welford: Welford::new(),
            median: P2Quantile::median(),
        }
    }

    fn push(&mut self, x: f64) {
        self.welford.push(x);
        self.median.push(x);
    }

    /// Merges another bin into this one ([`Welford::merge`] exactly,
    /// [`P2Quantile::merge`] approximately).
    pub fn merge(&mut self, other: &BinSummary) {
        self.welford.merge(&other.welford);
        self.median.merge(&other.median);
    }

    /// Number of observations in the bin.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.welford.count()
    }

    /// Mean of the bin.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.welford.mean()
    }

    /// Streaming median estimate of the bin.
    #[must_use]
    pub fn median(&self) -> f64 {
        self.median.value()
    }

    /// Minimum observation.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.welford.min()
    }

    /// Maximum observation.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.welford.max()
    }

    /// Population standard deviation of the bin.
    #[must_use]
    pub fn stddev(&self) -> f64 {
        self.welford.stddev()
    }
}

/// Per-year summary row (Fig. 2/3-style trends).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct YearProfile {
    /// Calendar year.
    pub year: i32,
    /// Mean over the year.
    pub mean: f64,
    /// Median over the year.
    pub median: f64,
    /// Minimum over the year.
    pub min: f64,
    /// Maximum over the year.
    pub max: f64,
    /// Number of samples in the year.
    pub count: u64,
}

/// Month-of-year summary row (Fig. 4-style profiles).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MonthProfile {
    /// Month of year.
    pub month: Month,
    /// Median of the samples falling in this month (all years pooled).
    pub median: f64,
    /// Mean of the samples falling in this month.
    pub mean: f64,
    /// Number of samples.
    pub count: u64,
}

/// Day-of-week summary row (Fig. 5-style profiles).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WeekdayProfile {
    /// Day of week (Monday first).
    pub weekday: Weekday,
    /// Median of the samples falling on this weekday.
    pub median: f64,
    /// Mean of the samples falling on this weekday.
    pub mean: f64,
    /// Number of samples.
    pub count: u64,
}

/// One-pass calendar aggregation of a telemetry channel.
///
/// ```
/// use mira_timeseries::{CalendarBins, Date, SimTime, Duration};
///
/// let mut bins = CalendarBins::new();
/// let mut t = SimTime::from_date(Date::new(2014, 1, 1));
/// for i in 0..1000 {
///     bins.push(t, f64::from(i % 10));
///     t += Duration::from_hours(6);
/// }
/// assert_eq!(bins.overall().count(), 1000);
/// assert!(!bins.yearly().is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalendarBins {
    overall: BinSummary,
    years: Vec<(i32, BinSummary)>,
    months: Vec<BinSummary>,
    weekdays: Vec<BinSummary>,
    hours: Vec<BinSummary>,
}

impl Default for CalendarBins {
    fn default() -> Self {
        Self::new()
    }
}

impl CalendarBins {
    /// Creates an empty aggregation.
    #[must_use]
    // Aggregation constructor: the fixed month/weekday/hour bin vectors
    // are allocated once per recorder at setup, never per step.
    // mira-lint: allow(alloc-in-hot-path)
    pub fn new() -> Self {
        Self {
            overall: BinSummary::new(),
            years: Vec::new(),
            months: (0..12).map(|_| BinSummary::new()).collect(),
            weekdays: (0..7).map(|_| BinSummary::new()).collect(),
            hours: (0..24).map(|_| BinSummary::new()).collect(),
        }
    }

    /// Adds one timestamped observation to every bin it belongs to.
    pub fn push(&mut self, t: SimTime, value: f64) {
        self.push_parts(t.civil_parts(), value);
    }

    /// [`Self::push`] with the civil decomposition already in hand.
    ///
    /// The sweep hot path decomposes each instant once (through a
    /// [`crate::CivilDayCache`]) and feeds the same [`CivilParts`] to
    /// every channel's bins, instead of re-deriving the date per channel
    /// per step. `push(t, v)` is exactly `push_parts(t.civil_parts(), v)`.
    // month/weekday `.index()` and `hour` are bounded by their types'
    // contracts; the bin vectors are built with matching lengths.
    // mira-lint: allow(panic-reachability)
    pub fn push_parts(&mut self, parts: CivilParts, value: f64) {
        self.overall.push(value);
        let year = parts.date.year();
        // Chronological pushes land in the newest (last) year row, so
        // scan from the back; the match target is unique either way.
        match self.years.iter_mut().rev().find(|(y, _)| *y == year) {
            Some((_, bin)) => bin.push(value),
            None => {
                let mut bin = BinSummary::new();
                bin.push(value);
                self.years.push((year, bin));
                self.years.sort_by_key(|(y, _)| *y);
            }
        }
        self.months[parts.date.month().index()].push(value);
        self.weekdays[parts.weekday.index()].push(value);
        self.hours[usize::from(parts.hour)].push(value);
    }

    /// Merges another aggregation into this one, bin by bin.
    ///
    /// Year rows present on either side are kept (merged where both
    /// have them); month/weekday/hour bins combine element-wise. Means,
    /// counts, and extremes merge exactly; medians approximately (see
    /// [`P2Quantile::merge`]).
    pub fn merge(&mut self, other: &CalendarBins) {
        self.overall.merge(&other.overall);
        for (year, bin) in &other.years {
            match self.years.iter_mut().find(|(y, _)| y == year) {
                Some((_, mine)) => mine.merge(bin),
                None => {
                    let at = self.years.partition_point(|(y, _)| y < year);
                    self.years.insert(at, (*year, bin.clone()));
                }
            }
        }
        for (mine, theirs) in self.months.iter_mut().zip(&other.months) {
            mine.merge(theirs);
        }
        for (mine, theirs) in self.weekdays.iter_mut().zip(&other.weekdays) {
            mine.merge(theirs);
        }
        for (mine, theirs) in self.hours.iter_mut().zip(&other.hours) {
            mine.merge(theirs);
        }
    }

    /// Summary over all observations.
    #[must_use]
    pub fn overall(&self) -> &BinSummary {
        &self.overall
    }

    /// Per-year rows, in year order.
    #[must_use]
    pub fn yearly(&self) -> Vec<YearProfile> {
        self.years
            .iter()
            .map(|(year, bin)| YearProfile {
                year: *year,
                mean: bin.mean(),
                median: bin.median(),
                min: bin.min(),
                max: bin.max(),
                count: bin.count(),
            })
            .collect()
    }

    /// Twelve month-of-year rows, January first (empty months included).
    #[must_use]
    pub fn monthly(&self) -> Vec<MonthProfile> {
        Month::ALL
            .into_iter()
            .map(|m| {
                let bin = &self.months[m.index()];
                MonthProfile {
                    month: m,
                    median: bin.median(),
                    mean: bin.mean(),
                    count: bin.count(),
                }
            })
            .collect()
    }

    /// Seven day-of-week rows, Monday first.
    #[must_use]
    pub fn by_weekday(&self) -> Vec<WeekdayProfile> {
        Weekday::ALL
            .into_iter()
            .map(|w| {
                let bin = &self.weekdays[w.index()];
                WeekdayProfile {
                    weekday: w,
                    median: bin.median(),
                    mean: bin.mean(),
                    count: bin.count(),
                }
            })
            .collect()
    }

    /// Twenty-four hour-of-day bins (diurnal profile).
    #[must_use]
    pub fn by_hour(&self) -> &[BinSummary] {
        &self.hours
    }

    /// Relative change of each month's median from January's, the
    /// "less than 1.5 % change from January" statistic of Fig. 4.
    ///
    /// Returns `None` when January has no samples or a zero median.
    #[must_use]
    // months always holds twelve bins; indices are literals or
    // Month::index(). mira-lint: allow(panic-reachability)
    pub fn monthly_change_from_january(&self) -> Option<Vec<f64>> {
        let jan = self.months[0].median();
        // Exact-zero divide guard. mira-lint: allow(nan-unsafe-compare)
        if self.months[0].count() == 0 || jan == 0.0 {
            return None;
        }
        Some(
            Month::ALL
                .into_iter()
                .map(|m| (self.months[m.index()].median() - jan) / jan)
                .collect(),
        )
    }

    /// Relative change of the pooled non-Monday median from Monday's, the
    /// Fig. 5 "increases by ≈X % on days other than Mondays" statistic.
    ///
    /// Returns `None` when either side is empty or Monday's median is 0.
    #[must_use]
    pub fn non_monday_uplift(&self) -> Option<f64> {
        let monday = &self.weekdays[Weekday::Monday.index()];
        // Exact-zero divide guard. mira-lint: allow(nan-unsafe-compare)
        if monday.count() == 0 || monday.median() == 0.0 {
            return None;
        }
        // Pool the other six days by averaging their medians weighted by
        // sample count.
        let mut num = 0.0;
        let mut den = 0.0;
        for w in Weekday::ALL.into_iter().skip(1) {
            let bin = &self.weekdays[w.index()];
            num += bin.median() * convert::f64_from_u64(bin.count());
            den += convert::f64_from_u64(bin.count());
        }
        // Exact-zero divide guard. mira-lint: allow(nan-unsafe-compare)
        if den == 0.0 {
            return None;
        }
        Some((num / den - monday.median()) / monday.median())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::civil::Date;
    use crate::time::Duration;

    fn feed_constant_with_monday_dip(bump: f64) -> CalendarBins {
        let mut bins = CalendarBins::new();
        let mut t = SimTime::from_date(Date::new(2015, 1, 1));
        for _ in 0..(365 * 24) {
            let v = if t.date().weekday() == Weekday::Monday {
                100.0
            } else {
                100.0 + bump
            };
            bins.push(t, v);
            t += Duration::from_hours(1);
        }
        bins
    }

    #[test]
    fn yearly_rows_split_by_year() {
        let mut bins = CalendarBins::new();
        let mut t = SimTime::from_date(Date::new(2014, 12, 30));
        for i in 0..96 {
            bins.push(t, f64::from(i));
            t += Duration::from_hours(1);
        }
        let years = bins.yearly();
        assert_eq!(years.len(), 2);
        assert_eq!(years[0].year, 2014);
        assert_eq!(years[1].year, 2015);
        assert_eq!(years[0].count + years[1].count, 96);
    }

    #[test]
    fn monthly_covers_all_twelve() {
        let bins = feed_constant_with_monday_dip(0.0);
        let months = bins.monthly();
        assert_eq!(months.len(), 12);
        assert!(months.iter().all(|m| m.count > 0));
        assert!(months.iter().all(|m| (m.median - 100.0).abs() < 1e-9));
    }

    #[test]
    fn non_monday_uplift_detects_dip() {
        let bins = feed_constant_with_monday_dip(6.0);
        let uplift = bins.non_monday_uplift().expect("uplift");
        assert!((uplift - 0.06).abs() < 1e-9, "uplift = {uplift}");
    }

    #[test]
    fn monthly_change_from_january_zero_for_flat_signal() {
        let bins = feed_constant_with_monday_dip(0.0);
        let changes = bins.monthly_change_from_january().expect("changes");
        assert!(changes.iter().all(|c| c.abs() < 1e-9));
    }

    #[test]
    fn hour_bins_capture_diurnal_pattern() {
        let mut bins = CalendarBins::new();
        let mut t = SimTime::from_date(Date::new(2015, 6, 1));
        for _ in 0..(30 * 24) {
            let hour = t.to_datetime().hour();
            bins.push(t, if hour >= 12 { 10.0 } else { 0.0 });
            t += Duration::from_hours(1);
        }
        assert_eq!(bins.by_hour()[0].mean(), 0.0);
        assert_eq!(bins.by_hour()[23].mean(), 10.0);
    }

    #[test]
    fn empty_bins_are_safe() {
        let bins = CalendarBins::new();
        assert!(bins.yearly().is_empty());
        assert!(bins.monthly_change_from_january().is_none());
        assert!(bins.non_monday_uplift().is_none());
        assert_eq!(bins.overall().count(), 0);
    }
}
