//! Fixed-capacity rolling windows over recent telemetry.
//!
//! The CMF predictor's features are *changes over the trailing six hours*
//! of each coolant-monitor channel (Sec. VI-B of the paper). With 300 s
//! samples that is a 72-slot ring buffer per channel per rack —
//! [`RollingWindow`] is that buffer, with the delta/mean/extraction
//! helpers the feature pipeline needs.

use mira_units::convert;
use serde::{Deserialize, Serialize};

/// A fixed-capacity FIFO window over the most recent readings.
///
/// ```
/// use mira_timeseries::RollingWindow;
///
/// let mut w = RollingWindow::new(3);
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     w.push(x);
/// }
/// assert_eq!(w.to_vec(), vec![2.0, 3.0, 4.0]);
/// assert_eq!(w.delta(), Some(2.0)); // newest − oldest
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RollingWindow {
    buf: Vec<f64>,
    capacity: usize,
    head: usize,
    len: usize,
}

impl RollingWindow {
    /// Creates a window holding at most `capacity` readings.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        Self {
            buf: vec![0.0; capacity],
            capacity,
            head: 0,
            len: 0,
        }
    }

    /// Appends a reading, evicting the oldest if full.
    // head is always < capacity == buf.len() (capacity > 0 asserted in
    // `new`). mira-lint: allow(panic-reachability)
    pub fn push(&mut self, x: f64) {
        self.buf[self.head] = x;
        self.head = (self.head + 1) % self.capacity;
        self.len = (self.len + 1).min(self.capacity);
    }

    /// Number of readings currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the window holds no readings.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the window has reached capacity.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.len == self.capacity
    }

    /// Maximum number of readings the window can hold.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The oldest reading currently held.
    #[must_use]
    // idx is reduced mod capacity == buf.len().
    // mira-lint: allow(panic-reachability)
    pub fn oldest(&self) -> Option<f64> {
        if self.len == 0 {
            return None;
        }
        let idx = (self.head + self.capacity - self.len) % self.capacity;
        Some(self.buf[idx])
    }

    /// The most recent reading.
    #[must_use]
    // idx is reduced mod capacity == buf.len().
    // mira-lint: allow(panic-reachability)
    pub fn newest(&self) -> Option<f64> {
        if self.len == 0 {
            return None;
        }
        let idx = (self.head + self.capacity - 1) % self.capacity;
        Some(self.buf[idx])
    }

    /// The reading `k` steps back from the newest (`k = 0` is the newest).
    #[must_use]
    // idx is reduced mod capacity == buf.len().
    // mira-lint: allow(panic-reachability)
    pub fn back(&self, k: usize) -> Option<f64> {
        if k >= self.len {
            return None;
        }
        let idx = (self.head + self.capacity - 1 - k) % self.capacity;
        Some(self.buf[idx])
    }

    /// `newest − oldest`, the change over the window.
    #[must_use]
    pub fn delta(&self) -> Option<f64> {
        Some(self.newest()? - self.oldest()?)
    }

    /// Relative change over the window, `(newest − oldest) / oldest`.
    ///
    /// Returns `None` when empty or when the oldest reading is zero.
    #[must_use]
    pub fn relative_delta(&self) -> Option<f64> {
        let oldest = self.oldest()?;
        // Exact-zero divide guard. mira-lint: allow(nan-unsafe-compare)
        if oldest == 0.0 {
            return None;
        }
        Some((self.newest()? - oldest) / oldest)
    }

    /// Mean of the readings currently held (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        self.iter().sum::<f64>() / convert::f64_from_usize(self.len)
    }

    /// Iterates oldest → newest.
    // idx is reduced mod capacity == buf.len().
    // mira-lint: allow(panic-reachability)
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        (0..self.len).map(move |i| {
            let idx = (self.head + self.capacity - self.len + i) % self.capacity;
            self.buf[idx]
        })
    }

    /// Copies the window oldest → newest into a `Vec`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<f64> {
        self.iter().collect()
    }

    /// Clears all readings, keeping the capacity.
    pub fn clear(&mut self) {
        self.len = 0;
        self.head = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fills_then_evicts_fifo() {
        let mut w = RollingWindow::new(3);
        assert!(w.is_empty());
        w.push(1.0);
        w.push(2.0);
        assert!(!w.is_full());
        w.push(3.0);
        assert!(w.is_full());
        w.push(4.0);
        assert_eq!(w.to_vec(), vec![2.0, 3.0, 4.0]);
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn oldest_newest_back() {
        let mut w = RollingWindow::new(4);
        for x in [10.0, 20.0, 30.0] {
            w.push(x);
        }
        assert_eq!(w.oldest(), Some(10.0));
        assert_eq!(w.newest(), Some(30.0));
        assert_eq!(w.back(0), Some(30.0));
        assert_eq!(w.back(2), Some(10.0));
        assert_eq!(w.back(3), None);
    }

    #[test]
    fn delta_and_relative_delta() {
        let mut w = RollingWindow::new(10);
        w.push(64.0);
        w.push(62.0);
        w.push(59.5);
        assert_eq!(w.delta(), Some(-4.5));
        let rel = w.relative_delta().unwrap();
        assert!((rel + 0.0703).abs() < 1e-3);
    }

    #[test]
    fn relative_delta_zero_oldest_is_none() {
        let mut w = RollingWindow::new(2);
        w.push(0.0);
        w.push(5.0);
        assert_eq!(w.relative_delta(), None);
    }

    #[test]
    fn empty_window_is_safe() {
        let w = RollingWindow::new(5);
        assert_eq!(w.oldest(), None);
        assert_eq!(w.newest(), None);
        assert_eq!(w.delta(), None);
        assert_eq!(w.mean(), 0.0);
        assert!(w.to_vec().is_empty());
    }

    #[test]
    fn clear_resets() {
        let mut w = RollingWindow::new(2);
        w.push(1.0);
        w.push(2.0);
        w.clear();
        assert!(w.is_empty());
        w.push(7.0);
        assert_eq!(w.to_vec(), vec![7.0]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = RollingWindow::new(0);
    }

    proptest! {
        #[test]
        fn window_matches_tail_of_stream(
            xs in proptest::collection::vec(-1e6f64..1e6, 1..200),
            cap in 1usize..32,
        ) {
            let mut w = RollingWindow::new(cap);
            for &x in &xs {
                w.push(x);
            }
            let tail: Vec<f64> = xs.iter().rev().take(cap).rev().copied().collect();
            prop_assert_eq!(w.to_vec(), tail);
        }

        #[test]
        fn mean_matches_naive(
            xs in proptest::collection::vec(-100.0f64..100.0, 1..64),
            cap in 1usize..16,
        ) {
            let mut w = RollingWindow::new(cap);
            for &x in &xs {
                w.push(x);
            }
            let tail: Vec<f64> = xs.iter().rev().take(cap).rev().copied().collect();
            let naive = tail.iter().sum::<f64>() / tail.len() as f64;
            prop_assert!((w.mean() - naive).abs() < 1e-9);
        }
    }
}
