//! Civil time, time-series containers, and streaming statistics.
//!
//! Everything in the Mira study is a function of *when*: year-over-year
//! trends, month-of-year medians, day-of-week effects (Monday
//! maintenance), and lead-times before failures. This crate provides the
//! time substrate the rest of the workspace builds on:
//!
//! - [`civil`] — a from-scratch proleptic-Gregorian calendar
//!   ([`Date`], [`DateTime`], [`Weekday`], [`Month`]) with exact
//!   epoch-second conversions, so the simulator can reason about
//!   "Monday 9 AM" and "December through March" without a dependency.
//! - [`time`] — [`SimTime`] (seconds since the Unix epoch) and
//!   [`Duration`], the simulator's clock vocabulary.
//! - [`series`] — [`TimeSeries`], an append-only timestamped `f64`
//!   container with slicing, resampling and summary statistics.
//! - [`stats`] — [`Welford`] online moments, percentiles, linear
//!   regression ([`LinearFit`]), Pearson and Spearman correlation, and the
//!   streaming [`P2Quantile`] estimator used for calendar-bin medians.
//! - [`bins`] — [`CalendarBins`], per-year / per-month / per-weekday /
//!   per-hour accumulators that power the paper's Figs. 2, 4 and 5.
//! - [`rolling`] — [`RollingWindow`], the fixed-capacity telemetry ring
//!   buffer behind CMF lead-up capture.
//!
//! # Example
//!
//! ```
//! use mira_timeseries::{Date, DateTime, SimTime, Weekday};
//!
//! let start = DateTime::new(Date::new(2014, 1, 1), 0, 0, 0);
//! assert_eq!(start.date().weekday(), Weekday::Wednesday);
//! let t = SimTime::from_datetime(start);
//! assert_eq!(t.to_datetime(), start);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bins;
pub mod civil;
pub mod rolling;
pub mod series;
pub mod stats;
pub mod time;

pub use bins::{CalendarBins, MonthProfile, WeekdayProfile, YearProfile};
pub use civil::{Date, DateTime, Month, Weekday};
pub use rolling::RollingWindow;
pub use series::TimeSeries;
pub use stats::{
    autocorrelation, linear_fit, mean, median, pearson, percentile, spearman,
    spearman_permutation_pvalue, stddev, LinearFit, P2Quantile, Welford, WelfordRows,
};
pub use time::{CivilDayCache, CivilParts, Duration, SimTime, YearCursor};
