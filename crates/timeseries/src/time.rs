//! Simulation clock vocabulary: instants and durations.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use mira_units::convert;
use serde::{Deserialize, Serialize};

use crate::civil::{Date, DateTime, Weekday};

/// An instant on the facility clock, stored as whole seconds since the
/// Unix epoch.
///
/// The coolant monitor samples every 300 s, so second resolution is ample.
///
/// ```
/// use mira_timeseries::{Date, DateTime, Duration, SimTime};
/// let t = SimTime::from_datetime(DateTime::midnight(Date::new(2014, 1, 1)));
/// let later = t + Duration::from_hours(6);
/// assert_eq!((later - t).as_hours(), 6.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(i64);

/// A span of time in whole seconds (may be negative for lead-times).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Duration(i64);

impl SimTime {
    /// Creates an instant from raw epoch seconds.
    #[must_use]
    pub const fn from_epoch_seconds(secs: i64) -> Self {
        Self(secs)
    }

    /// Creates an instant from a civil date-time.
    #[must_use]
    pub fn from_datetime(dt: DateTime) -> Self {
        Self(dt.seconds_since_epoch())
    }

    /// Midnight at the start of `date`.
    #[must_use]
    pub fn from_date(date: Date) -> Self {
        Self::from_datetime(DateTime::midnight(date))
    }

    /// Raw epoch seconds.
    #[must_use]
    pub const fn epoch_seconds(self) -> i64 {
        self.0
    }

    /// The civil date-time of this instant.
    #[must_use]
    pub fn to_datetime(self) -> DateTime {
        DateTime::from_seconds_since_epoch(self.0)
    }

    /// The civil date of this instant.
    #[must_use]
    pub fn date(self) -> Date {
        self.to_datetime().date()
    }

    /// Seconds elapsed since `earlier` (negative if `self` is earlier).
    #[must_use]
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration(self.0 - earlier.0)
    }

    /// Fraction of the year elapsed at this instant, in `[0, 1)`.
    ///
    /// Drives the seasonal components of the weather model.
    #[must_use]
    pub fn year_fraction(self) -> f64 {
        self.year_fraction_with(&mut YearCursor::default())
    }

    /// [`Self::year_fraction`] with a memo of the current civil year's
    /// epoch-second bounds.
    ///
    /// The cached bounds are a pure function of the year containing
    /// `self`, and the cursor is consulted only when `self` falls inside
    /// the cached year, so the result is bit-identical to
    /// `year_fraction` from any prior cursor state.
    #[must_use]
    pub fn year_fraction_with(self, cursor: &mut YearCursor) -> f64 {
        if !cursor.primed || self.0 < cursor.start || self.0 >= cursor.end {
            let date = self.to_datetime().date();
            let year_start = SimTime::from_date(Date::new(date.year(), 1, 1));
            let year_end = SimTime::from_date(Date::new(date.year() + 1, 1, 1));
            *cursor = YearCursor {
                start: year_start.0,
                end: year_end.0,
                primed: true,
            };
        }
        let span = convert::f64_from_i64(cursor.end - cursor.start);
        (convert::f64_from_i64(self.0 - cursor.start) / span).clamp(0.0, 1.0 - f64::EPSILON)
    }

    /// The civil-calendar facts of this instant that the aggregation hot
    /// path bins on, decomposed once instead of once per consumer.
    #[must_use]
    pub fn civil_parts(self) -> CivilParts {
        let dt = self.to_datetime();
        let date = dt.date();
        CivilParts {
            date,
            weekday: date.weekday(),
            hour: dt.hour(),
        }
    }
}

/// Memo for [`SimTime::year_fraction_with`]: the epoch-second bounds of
/// the most recently resolved civil year.
#[derive(Debug, Clone, Copy, Default)]
pub struct YearCursor {
    start: i64,
    end: i64,
    primed: bool,
}

/// Civil-calendar decomposition of one instant: the facts calendar
/// binning needs ([`Date`], weekday, hour), derived once per instant.
///
/// Produced by [`SimTime::civil_parts`] (cold) or
/// [`CivilDayCache::resolve`] (day-level memo); both yield identical
/// values for the same instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CivilParts {
    /// The civil date.
    pub date: Date,
    /// Weekday of `date`.
    pub weekday: Weekday,
    /// Hour of day, 0–23.
    pub hour: u8,
}

/// Day-level memo for civil decomposition: caches the `Date` and weekday
/// of the most recently resolved day, so consecutive instants within one
/// civil day skip the days-to-date conversion entirely.
///
/// The cached pair is a pure function of the day index, so
/// [`CivilDayCache::resolve`] equals [`SimTime::civil_parts`] bit-for-bit
/// from any prior cache state.
#[derive(Debug, Clone, Copy, Default)]
pub struct CivilDayCache {
    cached: Option<(i64, Date, Weekday)>,
}

impl CivilDayCache {
    /// Decomposes `t`, reusing the cached date when the civil day is
    /// unchanged.
    pub fn resolve(&mut self, t: SimTime) -> CivilParts {
        let secs = t.epoch_seconds();
        let day = secs.div_euclid(86_400);
        let (date, weekday) = match self.cached {
            Some((d, date, weekday)) if d == day => (date, weekday),
            _ => {
                let date = Date::from_days_since_epoch(day);
                let weekday = date.weekday();
                self.cached = Some((day, date, weekday));
                (date, weekday)
            }
        };
        let sod = secs.rem_euclid(86_400);
        // sod / 3600 is in [0, 23]; the fallback is unreachable.
        let hour = u8::try_from(sod / 3600).unwrap_or(0);
        CivilParts {
            date,
            weekday,
            hour,
        }
    }
}

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Creates a duration from whole seconds.
    #[must_use]
    pub const fn from_seconds(secs: i64) -> Self {
        Self(secs)
    }

    /// Creates a duration from whole minutes.
    #[must_use]
    pub const fn from_minutes(mins: i64) -> Self {
        Self(mins * 60)
    }

    /// Creates a duration from whole hours.
    #[must_use]
    pub const fn from_hours(hours: i64) -> Self {
        Self(hours * 3600)
    }

    /// Creates a duration from whole days.
    #[must_use]
    pub const fn from_days(days: i64) -> Self {
        Self(days * 86_400)
    }

    /// The duration as whole seconds.
    #[must_use]
    pub const fn as_seconds(self) -> i64 {
        self.0
    }

    /// The duration as fractional minutes.
    #[must_use]
    pub fn as_minutes(self) -> f64 {
        convert::f64_from_i64(self.0) / 60.0
    }

    /// The duration as fractional hours.
    #[must_use]
    pub fn as_hours(self) -> f64 {
        convert::f64_from_i64(self.0) / 3600.0
    }

    /// The duration as fractional days.
    #[must_use]
    pub fn as_days(self) -> f64 {
        convert::f64_from_i64(self.0) / 86_400.0
    }

    /// Absolute value.
    #[must_use]
    pub fn abs(self) -> Self {
        Self(self.0.abs())
    }

    /// Whether the duration is negative.
    #[must_use]
    pub fn is_negative(self) -> bool {
        self.0 < 0
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl Sub<Duration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: Duration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl SubAssign<Duration> for SimTime {
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl Sub for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl Mul<i64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: i64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Div<i64> for Duration {
    type Output = Duration;
    fn div(self, rhs: i64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_datetime())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.0.abs();
        let sign = if self.0 < 0 { "-" } else { "" };
        let (d, rem) = (total / 86_400, total % 86_400);
        let (h, rem) = (rem / 3600, rem % 3600);
        let (m, s) = (rem / 60, rem % 60);
        if d > 0 {
            write!(f, "{sign}{d}d {h:02}:{m:02}:{s:02}")
        } else {
            write!(f, "{sign}{h:02}:{m:02}:{s:02}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_and_accessors() {
        let t = SimTime::from_date(Date::new(2014, 1, 1));
        assert_eq!(t.date(), Date::new(2014, 1, 1));
        assert_eq!(t.to_datetime().hour(), 0);
    }

    #[test]
    fn arithmetic_round_trip() {
        let t = SimTime::from_date(Date::new(2016, 7, 1));
        let dt = Duration::from_minutes(5);
        assert_eq!((t + dt) - t, dt);
        assert_eq!((t - dt) + dt, t);
    }

    #[test]
    fn duration_conversions() {
        assert_eq!(Duration::from_hours(6).as_minutes(), 360.0);
        assert_eq!(Duration::from_days(2).as_hours(), 48.0);
        assert_eq!(Duration::from_minutes(30).as_seconds(), 1800);
        assert!(Duration::from_seconds(-60).is_negative());
        assert_eq!(Duration::from_seconds(-60).abs().as_seconds(), 60);
    }

    #[test]
    fn year_fraction_boundaries() {
        let start = SimTime::from_date(Date::new(2015, 1, 1));
        assert_eq!(start.year_fraction(), 0.0);
        let mid = SimTime::from_date(Date::new(2015, 7, 2));
        assert!((mid.year_fraction() - 0.5).abs() < 0.01);
        let end = SimTime::from_date(Date::new(2015, 12, 31)) + Duration::from_hours(23);
        assert!(end.year_fraction() < 1.0);
    }

    #[test]
    fn display_duration() {
        assert_eq!(Duration::from_hours(30).to_string(), "1d 06:00:00");
        assert_eq!(Duration::from_minutes(-90).to_string(), "-01:30:00");
        assert_eq!(Duration::from_seconds(61).to_string(), "00:01:01");
    }

    #[test]
    fn civil_parts_match_datetime() {
        let t = SimTime::from_date(Date::new(2016, 7, 1)) + Duration::from_hours(13);
        let parts = t.civil_parts();
        assert_eq!(parts.date, Date::new(2016, 7, 1));
        assert_eq!(parts.weekday, Weekday::Friday);
        assert_eq!(parts.hour, 13);
    }

    proptest! {
        #[test]
        fn day_cache_matches_cold_decomposition(base in -2_000_000_000i64..2_000_000_000, steps in 1usize..200) {
            // One shared cache across a monotone walk with a coarse step
            // exercises both the hit and the day-crossing path.
            let mut cache = CivilDayCache::default();
            let mut t = SimTime::from_epoch_seconds(base);
            for _ in 0..steps {
                prop_assert_eq!(cache.resolve(t), t.civil_parts());
                t += Duration::from_minutes(300);
            }
            // A backwards jump must invalidate, not replay, the cache.
            let back = t - Duration::from_days(400);
            prop_assert_eq!(cache.resolve(back), back.civil_parts());
        }

        #[test]
        fn year_cursor_matches_cold_year_fraction(base in -2_000_000_000i64..2_000_000_000, steps in 1usize..200) {
            let mut cursor = YearCursor::default();
            let mut t = SimTime::from_epoch_seconds(base);
            for _ in 0..steps {
                let cached = t.year_fraction_with(&mut cursor);
                prop_assert_eq!(cached.to_bits(), t.year_fraction().to_bits());
                t += Duration::from_hours(501);
            }
        }

        #[test]
        fn since_is_inverse_of_add(base in -1_000_000_000i64..1_000_000_000, delta in -1_000_000i64..1_000_000) {
            let t = SimTime::from_epoch_seconds(base);
            let d = Duration::from_seconds(delta);
            prop_assert_eq!((t + d).since(t), d);
        }

        #[test]
        fn year_fraction_in_range(secs in 1_380_000_000i64..1_600_000_000) {
            let f = SimTime::from_epoch_seconds(secs).year_fraction();
            prop_assert!((0.0..1.0).contains(&f));
        }
    }
}
