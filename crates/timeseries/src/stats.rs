//! Statistics used throughout the study: online moments, percentiles,
//! linear trends, and rank correlation.
//!
//! Six years of 300-second telemetry across 48 racks is too much to buffer,
//! so the aggregations are streaming: [`Welford`] for mean/variance,
//! [`P2Quantile`] for medians without storage. The batch helpers
//! ([`median`], [`percentile`], [`pearson`], [`spearman`], [`linear_fit`])
//! operate on the (much smaller) derived series.

use serde::{Deserialize, Serialize};

use mira_units::convert;

/// Online mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable for long streams; merging two accumulators is
/// supported so per-rack statistics can be combined into system totals.
///
/// ```
/// use mira_timeseries::Welford;
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     w.push(x);
/// }
/// assert_eq!(w.mean(), 5.0);
/// assert_eq!(w.population_variance(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / convert::f64_from_u64(self.count);
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (Chan's parallel update).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = convert::f64_from_u64(self.count);
        let n2 = convert::f64_from_u64(other.count);
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no observations have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (÷ n).
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / convert::f64_from_u64(self.count)
        }
    }

    /// Sample variance (÷ n−1; 0 with fewer than two observations).
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / convert::f64_from_u64(self.count - 1)
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn stddev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Smallest observation (`+∞` when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−∞` when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Relative spread `(max − min) / min`, the "up to X % difference
    /// across racks" statistic of Figs. 6, 7 and 9. Returns 0 when empty
    /// or when `min` is not positive.
    #[must_use]
    pub fn relative_spread(&self) -> f64 {
        if self.count == 0 || self.min <= 0.0 {
            0.0
        } else {
            (self.max - self.min) / self.min
        }
    }
}

/// Structure-of-arrays staging for `W` independent [`Welford`]
/// accumulators fed one lane-aligned row at a time.
///
/// Each lane's update sequence is exactly [`Welford::push`] — same
/// expressions, same evaluation order, with the count carried as an
/// exact-integer `f64` (every `+1.0` below 2⁵³ is lossless) — so the
/// stored-back accumulators are bit-identical to pushing lane by lane.
/// The payoff is layout: the five state arrays are contiguous, so the
/// per-row loop autovectorizes across lanes instead of hopping between
/// interleaved accumulator structs, and the state stays register/L1
/// resident for the whole block.
///
/// ```
/// use mira_timeseries::{Welford, WelfordRows};
/// let mut a = [Welford::new(), Welford::new()];
/// let mut b = a;
/// let mut rows = WelfordRows::<2>::load(a.iter());
/// for row in [[1.0, 10.0], [3.0, 20.0]] {
///     rows.push_row(&row);
///     b[0].push(row[0]);
///     b[1].push(row[1]);
/// }
/// rows.store(a.iter_mut());
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Clone)]
pub struct WelfordRows<const W: usize> {
    count: [f64; W],
    mean: [f64; W],
    m2: [f64; W],
    min: [f64; W],
    max: [f64; W],
}

impl<const W: usize> WelfordRows<W> {
    /// Stages exactly `W` accumulators into lane arrays.
    ///
    /// # Panics
    ///
    /// Panics unless the iterator yields exactly `W` accumulators.
    #[must_use]
    // Documented contract on a fixed-width staging buffer; every lane
    // write is at the asserted `l < W`. mira-lint: allow(panic-reachability)
    pub fn load<'a>(accs: impl IntoIterator<Item = &'a Welford>) -> Self {
        let mut rows = Self {
            count: [0.0; W],
            mean: [0.0; W],
            m2: [0.0; W],
            min: [0.0; W],
            max: [0.0; W],
        };
        let mut lanes = 0usize;
        for (l, acc) in accs.into_iter().enumerate() {
            assert!(l < W, "more than {W} accumulators");
            rows.count[l] = convert::f64_from_u64(acc.count);
            rows.mean[l] = acc.mean;
            rows.m2[l] = acc.m2;
            rows.min[l] = acc.min;
            rows.max[l] = acc.max;
            lanes = l + 1;
        }
        assert_eq!(lanes, W, "fewer than {W} accumulators");
        rows
    }

    /// Folds `row[l]` into lane `l`'s accumulator, for every lane.
    // All indexing is `l in 0..W` over `[f64; W]` lane arrays.
    // mira-lint: allow(panic-reachability)
    pub fn push_row(&mut self, row: &[f64; W]) {
        for (l, &x) in row.iter().enumerate() {
            self.count[l] += 1.0;
            let delta = x - self.mean[l];
            self.mean[l] += delta / self.count[l];
            let delta2 = x - self.mean[l];
            self.m2[l] += delta * delta2;
            self.min[l] = self.min[l].min(x);
            self.max[l] = self.max[l].max(x);
        }
    }

    /// Writes the staged lanes back into exactly `W` accumulators.
    ///
    /// # Panics
    ///
    /// Panics unless the iterator yields exactly `W` accumulators.
    // Documented contract on a fixed-width staging buffer.
    // mira-lint: allow(panic-reachability)
    pub fn store<'a>(&self, accs: impl IntoIterator<Item = &'a mut Welford>) {
        let mut lanes = 0usize;
        for (l, acc) in accs.into_iter().enumerate() {
            assert!(l < W, "more than {W} accumulators");
            acc.count = convert::u64_from_f64_exact(self.count[l]);
            acc.mean = self.mean[l];
            acc.m2 = self.m2[l];
            acc.min = self.min[l];
            acc.max = self.max[l];
            lanes = l + 1;
        }
        assert_eq!(lanes, W, "fewer than {W} accumulators");
    }
}

impl Extend<f64> for Welford {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Welford {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut w = Welford::new();
        w.extend(iter);
        w
    }
}

/// Streaming quantile estimator (Jain & Chlamtac's P² algorithm).
///
/// Estimates a single quantile with O(1) memory — the workhorse behind
/// per-calendar-bin medians. Exact for the first five observations, then
/// maintains five markers adjusted with piecewise-parabolic interpolation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights.
    q: [f64; 5],
    /// Marker positions (1-based counts).
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Increments for desired positions.
    dn: [f64; 5],
    count: u64,
    initial: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for quantile `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p < 1`.
    #[must_use]
    // Estimator constructor: the fixed five-slot warm-up buffer is
    // allocated once per recorder at setup, never per observation.
    // mira-lint: allow(alloc-in-hot-path)
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "quantile must be in (0, 1), got {p}");
        Self {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
            initial: Vec::with_capacity(5),
        }
    }

    /// A median estimator (`p = 0.5`).
    #[must_use]
    pub fn median() -> Self {
        Self::new(0.5)
    }

    /// Number of observations so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Adds one observation.
    // Marker arrays are fixed [f64; 5]; every index is a literal or a
    // loop variable in 0..5. mira-lint: allow(panic-reachability)
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if self.count <= 5 {
            self.initial.push(x);
            self.initial.sort_by(f64::total_cmp);
            if self.count == 5 {
                self.q.copy_from_slice(&self.initial);
            }
            return;
        }

        // Find cell k such that q[k] <= x < q[k+1], updating extremes.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else {
            // The markers are sorted with q[0] <= x < q[4], so the
            // first cell with x < q[i+1] is exactly the number of
            // interior markers at or below x — the same k a first-match
            // scan finds, without its data-dependent branch (which
            // mispredicts on nearly every push: the landing cell is
            // close to uniform).
            usize::from(x >= self.q[1]) + usize::from(x >= self.q[2]) + usize::from(x >= self.q[3])
        };

        // Marker positions above the landing cell shift one to the
        // right. `i > k` contributes +1.0 or +0.0; the counts are
        // strictly positive, so adding 0.0 is the identity and the
        // fixed-trip loop stays branch-free.
        for i in 1..5 {
            self.n[i] += f64::from(i > k);
        }
        for i in 0..5 {
            self.np[i] += self.dn[i];
        }

        // Adjust the three interior markers.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0)
            {
                let d = d.signum();
                let qp = self.parabolic(i, d);
                self.q[i] = if self.q[i - 1] < qp && qp < self.q[i + 1] {
                    qp
                } else {
                    self.linear(i, d)
                };
                self.n[i] += d;
            }
        }
    }

    /// Merges another estimator for the *same* quantile into this one.
    ///
    /// P² is not exactly mergeable: each side keeps only five markers.
    /// While either side is still in its exact (≤ 5 observations)
    /// start-up phase the merge replays the buffered values and stays
    /// exact. Beyond that the interior markers are combined by
    /// count-weighted interpolation and the extremes by min/max, which
    /// keeps the estimate inside the observed range and is a close
    /// approximation when the two sides sample similar distributions
    /// (the calendar-sharded sweep case). The operation is
    /// deterministic: merging the same states always yields the same
    /// state.
    ///
    /// # Panics
    ///
    /// Panics if the two estimators target different quantiles.
    // Marker arrays are fixed [f64; 5]; every index is a literal or a
    // loop variable in 0..5. mira-lint: allow(panic-reachability)
    pub fn merge(&mut self, other: &P2Quantile) {
        assert!(
            self.p.total_cmp(&other.p).is_eq(),
            "cannot merge estimators for different quantiles"
        );
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        if other.count <= 5 {
            // The right side still buffers raw values: replay them.
            for &x in &other.initial {
                self.push(x);
            }
            return;
        }
        if self.count <= 5 {
            // Only the left side buffers raw values: adopt the larger
            // state, then replay our buffer into it.
            let mine = std::mem::take(&mut self.initial);
            *self = other.clone();
            for x in mine {
                self.push(x);
            }
            return;
        }

        // Both sides are past start-up: five markers each. Extremes
        // combine exactly; interior markers by count-weighted blend.
        let wa = convert::f64_from_u64(self.count);
        let wb = convert::f64_from_u64(other.count);
        let total = wa + wb;
        let mut q = [0.0; 5];
        q[0] = self.q[0].min(other.q[0]);
        q[4] = self.q[4].max(other.q[4]);
        for ((slot, &a), &b) in q[1..4].iter_mut().zip(&self.q[1..4]).zip(&other.q[1..4]) {
            *slot = (a * wa + b * wb) / total;
        }
        // Restore the monotone-marker invariant the adjustment step
        // relies on.
        for i in 1..5 {
            if q[i] < q[i - 1] {
                q[i] = q[i - 1];
            }
        }

        self.count += other.count;
        self.q = q;
        // Reset actual and desired positions to the closed-form desired
        // positions for the combined count, as if the markers had landed
        // exactly where the algorithm wants them.
        let nf = convert::f64_from_u64(self.count);
        for i in 0..5 {
            self.np[i] = 1.0 + (nf - 1.0) * self.dn[i];
        }
        self.n[0] = 1.0;
        self.n[4] = nf;
        for i in 1..4 {
            self.n[i] = self.np[i].round();
        }
        // Positions must stay strictly increasing (both counts were > 5,
        // so there is room).
        for i in 1..4 {
            if self.n[i] <= self.n[i - 1] {
                self.n[i] = self.n[i - 1] + 1.0;
            }
        }
        for i in (1..4).rev() {
            if self.n[i] >= self.n[i + 1] {
                self.n[i] = self.n[i + 1] - 1.0;
            }
        }
        self.initial.clear();
    }

    // Called with interior marker index i in 1..4 only; i±1 stay in
    // the fixed [f64; 5] arrays. mira-lint: allow(panic-reachability)
    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let q = &self.q;
        let n = &self.n;
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    // Called with interior marker index i in 1..4 only; i±1 stay in
    // the fixed [f64; 5] arrays. mira-lint: allow(panic-reachability)
    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// Current estimate of the quantile (exact below six observations;
    /// 0 when empty).
    #[must_use]
    // q[2] is a literal index into the fixed [f64; 5] marker array.
    // mira-lint: allow(panic-reachability)
    pub fn value(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if self.count <= 5 {
            // `initial` is kept sorted by `push`, so the exact quantile
            // interpolates in place — no copy, no allocation.
            return percentile_sorted(&self.initial, self.p * 100.0);
        }
        self.q[2]
    }
}

/// Result of an ordinary-least-squares line fit `y = slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Slope of the fitted line, in y-units per x-unit.
    pub slope: f64,
    /// Intercept of the fitted line at `x = 0`.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]`.
    pub r_squared: f64,
}

impl LinearFit {
    /// Evaluates the fitted line at `x`.
    #[must_use]
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Ordinary-least-squares fit of `y` against `x`.
///
/// Returns `None` when fewer than two points are given or when `x` has no
/// variance. This is the red trend line of the paper's Fig. 2.
#[must_use]
pub fn linear_fit(x: &[f64], y: &[f64]) -> Option<LinearFit> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = convert::f64_from_usize(x.len());
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let sxx: f64 = x.iter().map(|&xi| (xi - mx).powi(2)).sum();
    // Exact-zero divide guard. mira-lint: allow(nan-unsafe-compare)
    if sxx == 0.0 {
        return None;
    }
    let sxy: f64 = x
        .iter()
        .zip(y)
        .map(|(&xi, &yi)| (xi - mx) * (yi - my))
        .sum();
    let syy: f64 = y.iter().map(|&yi| (yi - my).powi(2)).sum();
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    // Exact-zero divide guard. mira-lint: allow(nan-unsafe-compare)
    let r_squared = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Some(LinearFit {
        slope,
        intercept,
        r_squared,
    })
}

/// Arithmetic mean of a slice (0 when empty).
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / convert::f64_from_usize(xs.len())
    }
}

/// Population standard deviation of a slice (0 when empty).
#[must_use]
pub fn stddev(xs: &[f64]) -> f64 {
    let w: Welford = xs.iter().copied().collect();
    w.stddev()
}

/// The `p`-th percentile (0–100) of a slice, by linear interpolation
/// between closest ranks. Returns 0 for an empty slice.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]` or any value is NaN.
#[must_use]
// rank <= len - 1, so floor/ceil indices stay in bounds.
// mira-lint: allow(panic-reachability)
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    percentile_sorted(&sorted, p)
}

/// [`percentile`] over a slice the caller has already sorted — the
/// allocation-free core, used directly by hot-path estimators whose
/// buffers are kept sorted (e.g. [`P2Quantile`]'s start-up buffer).
#[must_use]
// rank <= len - 1, so floor/ceil indices stay in bounds.
// mira-lint: allow(panic-reachability)
fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = p / 100.0 * convert::f64_from_usize(sorted.len() - 1);
    let lo = convert::usize_from_f64_floor(rank);
    let hi = convert::usize_from_f64_ceil(rank);
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - convert::f64_from_usize(lo);
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// The median of a slice.
#[must_use]
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// Pearson product-moment correlation coefficient of two equal-length
/// slices, in `[-1, 1]`. Returns `None` if lengths differ, fewer than two
/// points, or either side is constant.
#[must_use]
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let mx = mean(x);
    let my = mean(y);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&xi, &yi) in x.iter().zip(y) {
        sxy += (xi - mx) * (yi - my);
        sxx += (xi - mx).powi(2);
        syy += (yi - my).powi(2);
    }
    // Exact-zero divide guards. mira-lint: allow(nan-unsafe-compare)
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Spearman rank correlation (Pearson over mid-ranks, ties averaged).
///
/// This is the correlation the paper cites for power-versus-utilization
/// (0.45) and the CMF-versus-marker correlations of Sec. VI-A.
#[must_use]
pub fn spearman(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let rx = midranks(x);
    let ry = midranks(y);
    pearson(&rx, &ry)
}

/// Lag-`k` autocorrelation of a series (Pearson between the series and
/// itself shifted by `k`). Returns `None` when fewer than `k + 2`
/// points are available or the overlap is constant.
///
/// Used to characterize telemetry memory: weather noise decorrelates
/// over days, sensor noise immediately — which is what determines how
/// much a six-hour feature window can average away.
#[must_use]
// The len < lag + 2 early return bounds both slice ranges.
// mira-lint: allow(panic-reachability)
pub fn autocorrelation(xs: &[f64], lag: usize) -> Option<f64> {
    if lag == 0 {
        return if xs.len() >= 2 { Some(1.0) } else { None };
    }
    if xs.len() < lag + 2 {
        return None;
    }
    pearson(&xs[..xs.len() - lag], &xs[lag..])
}

/// Two-sided permutation p-value for a Spearman correlation.
///
/// Shuffles `y` `rounds` times (deterministically, from `seed`) and
/// counts how often the shuffled |ρ| reaches the observed |ρ|. Small
/// p-values mean the observed correlation is unlikely under
/// independence — the right tool for the paper's "essentially
/// uncorrelated" claims about Fig. 11, where |ρ| ≈ 0.06–0.21 over only
/// 48 racks.
///
/// Returns `None` when the correlation itself is undefined.
#[must_use]
pub fn spearman_permutation_pvalue(x: &[f64], y: &[f64], rounds: u32, seed: u64) -> Option<f64> {
    let observed = spearman(x, y)?.abs();
    let mut shuffled: Vec<f64> = y.to_vec();
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    let mut hits = 0u32;
    for _ in 0..rounds {
        for i in (1..shuffled.len()).rev() {
            let j = convert::usize_from_u64(next() % (convert::u64_from_usize(i) + 1));
            shuffled.swap(i, j);
        }
        if let Some(r) = spearman(x, &shuffled) {
            if r.abs() >= observed {
                hits += 1;
            }
        }
    }
    // Add-one smoothing keeps the estimate conservative and non-zero.
    Some(f64::from(hits + 1) / f64::from(rounds + 1))
}

/// Assigns 1-based mid-ranks, averaging ties.
// Indexing goes through a permutation of 0..len and j < len checks.
// mira-lint: allow(panic-reachability)
fn midranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let mut ranks = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // Average of 1-based ranks i+1 ..= j+1.
        let avg = convert::f64_from_usize(i + j) / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [1.0, 2.5, 3.5, 9.0, -4.0, 0.5];
        let w: Welford = xs.iter().copied().collect();
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((w.mean() - m).abs() < 1e-12);
        assert!((w.population_variance() - var).abs() < 1e-12);
        assert_eq!(w.min(), -4.0);
        assert_eq!(w.max(), 9.0);
        assert_eq!(w.count(), 6);
    }

    #[test]
    fn welford_empty_is_safe() {
        let w = Welford::new();
        assert!(w.is_empty());
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.stddev(), 0.0);
        assert_eq!(w.relative_spread(), 0.0);
    }

    #[test]
    fn welford_merge_equals_concat() {
        let a: Welford = (0..50).map(f64::from).collect();
        let b: Welford = (50..120).map(f64::from).collect();
        let mut merged = a;
        merged.merge(&b);
        let full: Welford = (0..120).map(f64::from).collect();
        assert_eq!(merged.count(), full.count());
        assert!((merged.mean() - full.mean()).abs() < 1e-9);
        assert!((merged.population_variance() - full.population_variance()).abs() < 1e-9);
    }

    #[test]
    fn relative_spread_matches_definition() {
        let w: Welford = [100.0, 105.0, 111.0].iter().copied().collect();
        assert!((w.relative_spread() - 0.11).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert_eq!(median(&xs), 2.5);
        assert_eq!(percentile(&xs, 25.0), 1.75);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_rejects_bad_p() {
        let _ = percentile(&[1.0], 101.0);
    }

    #[test]
    fn linear_fit_recovers_exact_line() {
        let x: Vec<f64> = (0..10).map(f64::from).collect();
        let y: Vec<f64> = x.iter().map(|&xi| 3.0 * xi - 2.0).collect();
        let fit = linear_fit(&x, &y).expect("fit");
        assert!((fit.slope - 3.0).abs() < 1e-12);
        assert!((fit.intercept + 2.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.predict(20.0) - 58.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_degenerate_inputs() {
        assert!(linear_fit(&[1.0], &[2.0]).is_none());
        assert!(linear_fit(&[1.0, 1.0], &[2.0, 3.0]).is_none());
        assert!(linear_fit(&[1.0, 2.0], &[2.0]).is_none());
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let z = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &z).unwrap() + 1.0).abs() < 1e-12);
        assert!(pearson(&x, &[1.0, 1.0, 1.0, 1.0]).is_none());
    }

    #[test]
    fn spearman_is_rank_based() {
        // Monotone but nonlinear: Spearman 1, Pearson < 1.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [1.0, 8.0, 27.0, 64.0, 125.0];
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        assert!(pearson(&x, &y).unwrap() < 1.0);
    }

    #[test]
    fn spearman_handles_ties() {
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [1.0, 2.0, 2.0, 3.0];
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn autocorrelation_of_smooth_vs_alternating() {
        // A slow ramp is highly autocorrelated at small lags.
        let ramp: Vec<f64> = (0..100).map(f64::from).collect();
        assert!(autocorrelation(&ramp, 1).unwrap() > 0.99);
        assert_eq!(autocorrelation(&ramp, 0), Some(1.0));
        // An alternating series anticorrelates at lag 1, correlates at 2.
        let alt: Vec<f64> = (0..100).map(|i| f64::from(i % 2)).collect();
        assert!(autocorrelation(&alt, 1).unwrap() < -0.9);
        assert!(autocorrelation(&alt, 2).unwrap() > 0.9);
        // Degenerate inputs.
        assert!(autocorrelation(&[1.0, 2.0], 5).is_none());
        assert!(autocorrelation(&[3.0], 0).is_none());
    }

    #[test]
    fn permutation_pvalue_separates_signal_from_noise() {
        // Strong monotone relation: tiny p-value.
        let x: Vec<f64> = (0..40).map(f64::from).collect();
        let y: Vec<f64> = x.iter().map(|v| v * 2.0 + 1.0).collect();
        let p = spearman_permutation_pvalue(&x, &y, 200, 1).unwrap();
        assert!(p < 0.02, "p = {p}");

        // Hash-scrambled y: no relation, large p-value.
        let noise: Vec<f64> = (0..40u64)
            .map(|i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) as f64)
            .collect();
        let p = spearman_permutation_pvalue(&x, &noise, 200, 1).unwrap();
        assert!(p > 0.05, "p = {p}");
    }

    #[test]
    fn permutation_pvalue_is_deterministic() {
        let x: Vec<f64> = (0..20).map(f64::from).collect();
        let y: Vec<f64> = x.iter().map(|v| (v * 7.0) % 13.0).collect();
        let a = spearman_permutation_pvalue(&x, &y, 100, 9);
        let b = spearman_permutation_pvalue(&x, &y, 100, 9);
        assert_eq!(a, b);
        assert!(spearman_permutation_pvalue(&x, &[1.0; 20], 10, 0).is_none());
    }

    #[test]
    fn midranks_average_ties() {
        assert_eq!(
            midranks(&[10.0, 20.0, 20.0, 30.0]),
            vec![1.0, 2.5, 2.5, 4.0]
        );
    }

    #[test]
    fn p2_exact_for_small_samples() {
        let mut q = P2Quantile::median();
        for x in [5.0, 1.0, 3.0] {
            q.push(x);
        }
        assert_eq!(q.value(), 3.0);
        assert_eq!(q.count(), 3);
    }

    #[test]
    fn p2_median_converges_on_uniform() {
        let mut q = P2Quantile::median();
        // Deterministic low-discrepancy-ish stream over [0, 1).
        let mut x = 0.5f64;
        for _ in 0..20_000 {
            x = (x + 0.618_033_988_749_895) % 1.0;
            q.push(x);
        }
        assert!((q.value() - 0.5).abs() < 0.02, "median = {}", q.value());
    }

    #[test]
    fn p2_p90_converges() {
        let mut q = P2Quantile::new(0.9);
        let mut x = 0.5f64;
        for _ in 0..20_000 {
            x = (x + 0.618_033_988_749_895) % 1.0;
            q.push(x);
        }
        assert!((q.value() - 0.9).abs() < 0.03, "p90 = {}", q.value());
    }

    #[test]
    #[should_panic(expected = "quantile must be in (0, 1)")]
    fn p2_rejects_bad_quantile() {
        let _ = P2Quantile::new(1.0);
    }

    proptest! {
        #[test]
        fn welford_mean_bounded_by_minmax(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let w: Welford = xs.iter().copied().collect();
            prop_assert!(w.min() <= w.mean() + 1e-9);
            prop_assert!(w.mean() <= w.max() + 1e-9);
        }

        #[test]
        fn pearson_in_unit_interval(
            xs in proptest::collection::vec(-1e3f64..1e3, 3..50),
            ys in proptest::collection::vec(-1e3f64..1e3, 3..50),
        ) {
            let n = xs.len().min(ys.len());
            if let Some(r) = pearson(&xs[..n], &ys[..n]) {
                prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
            }
        }

        #[test]
        fn p2_tracks_exact_median(xs in proptest::collection::vec(0.0f64..100.0, 100..400)) {
            let mut q = P2Quantile::median();
            for &x in &xs {
                q.push(x);
            }
            let exact = median(&xs);
            let spread = percentile(&xs, 90.0) - percentile(&xs, 10.0) + 1.0;
            prop_assert!((q.value() - exact).abs() <= spread * 0.35 + 1e-9,
                "p2 {} vs exact {}", q.value(), exact);
        }

        #[test]
        fn percentile_monotone_in_p(xs in proptest::collection::vec(-1e3f64..1e3, 2..100), a in 0.0f64..100.0, b in 0.0f64..100.0) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(percentile(&xs, lo) <= percentile(&xs, hi) + 1e-9);
        }
    }
}
