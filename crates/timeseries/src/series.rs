//! An append-only timestamped series of `f64` readings.

use serde::{Deserialize, Serialize};

use crate::stats::{linear_fit, LinearFit, Welford};
use crate::time::{Duration, SimTime};

/// A time series of `f64` readings with strictly increasing timestamps.
///
/// This is the in-memory shape of one telemetry channel (e.g. one rack's
/// inlet coolant temperature) after recording or resampling.
///
/// ```
/// use mira_timeseries::{Duration, SimTime, TimeSeries};
///
/// let t0 = SimTime::from_epoch_seconds(0);
/// let mut s = TimeSeries::new();
/// for i in 0..10 {
///     s.push(t0 + Duration::from_minutes(5 * i), f64::from(i as i32));
/// }
/// assert_eq!(s.len(), 10);
/// assert_eq!(s.mean(), 4.5);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    times: Vec<SimTime>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty series with reserved capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            times: Vec::with_capacity(cap),
            values: Vec::with_capacity(cap),
        }
    }

    /// Appends a reading.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not after the last timestamp.
    pub fn push(&mut self, t: SimTime, value: f64) {
        if let Some(&last) = self.times.last() {
            assert!(t > last, "timestamps must be strictly increasing");
        }
        self.times.push(t);
        self.values.push(value);
    }

    /// Number of readings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the series is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The timestamps, in order.
    #[must_use]
    pub fn times(&self) -> &[SimTime] {
        &self.times
    }

    /// The readings, in timestamp order.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterates over `(timestamp, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }

    /// The first reading, if any.
    #[must_use]
    pub fn first(&self) -> Option<(SimTime, f64)> {
        Some((*self.times.first()?, *self.values.first()?))
    }

    /// The last reading, if any.
    #[must_use]
    pub fn last(&self) -> Option<(SimTime, f64)> {
        Some((*self.times.last()?, *self.values.last()?))
    }

    /// Readings with timestamps in `[from, to)`, as a new series.
    #[must_use]
    pub fn slice(&self, from: SimTime, to: SimTime) -> TimeSeries {
        let start = self.times.partition_point(|&t| t < from);
        // An inverted window (`to < from`) yields an empty series
        // rather than an inverted range.
        let end = self.times.partition_point(|&t| t < to).max(start);
        TimeSeries {
            times: self.times.get(start..end).unwrap_or(&[]).to_vec(),
            values: self.values.get(start..end).unwrap_or(&[]).to_vec(),
        }
    }

    /// The reading at or immediately before `t`, if any (sample-and-hold).
    #[must_use]
    pub fn at_or_before(&self, t: SimTime) -> Option<(SimTime, f64)> {
        let idx = self.times.partition_point(|&ts| ts <= t);
        let i = idx.checked_sub(1)?;
        Some((*self.times.get(i)?, *self.values.get(i)?))
    }

    /// Mean of all readings (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.summary().mean()
    }

    /// Population standard deviation of all readings.
    #[must_use]
    pub fn stddev(&self) -> f64 {
        self.summary().stddev()
    }

    /// Summary statistics over all readings.
    #[must_use]
    // The collect folds into a Welford accumulator — constant space, no
    // heap allocation; as a tail expression its target sits in the
    // return type, outside the dataflow walk's statement-level view.
    // mira-lint: allow(alloc-in-hot-path)
    pub fn summary(&self) -> Welford {
        self.values.iter().copied().collect()
    }

    /// OLS trend of value against time-in-days since the first reading.
    ///
    /// Returns `None` with fewer than two readings. The slope is in
    /// value-units per day — the paper's Fig. 2 trend lines.
    #[must_use]
    pub fn trend_per_day(&self) -> Option<LinearFit> {
        let t0 = self.times.first()?;
        let x: Vec<f64> = self.times.iter().map(|&t| (t - *t0).as_days()).collect();
        linear_fit(&x, &self.values)
    }

    /// Downsamples by averaging readings into consecutive buckets of
    /// width `bucket`, timestamped at each bucket's start.
    ///
    /// Empty buckets are skipped, so the result may be irregular.
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is not positive.
    #[must_use]
    pub fn resample_mean(&self, bucket: Duration) -> TimeSeries {
        assert!(bucket.as_seconds() > 0, "bucket must be positive");
        let mut out = TimeSeries::new();
        let Some(&start) = self.times.first() else {
            return out;
        };
        let width = bucket.as_seconds();
        let origin = start.epoch_seconds();
        let mut bucket_idx = 0i64;
        let mut acc = Welford::new();
        for (t, v) in self.iter() {
            let idx = (t.epoch_seconds() - origin).div_euclid(width);
            if idx != bucket_idx {
                if !acc.is_empty() {
                    out.push(
                        SimTime::from_epoch_seconds(origin + bucket_idx * width),
                        acc.mean(),
                    );
                }
                acc = Welford::new();
                bucket_idx = idx;
            }
            acc.push(v);
        }
        if !acc.is_empty() {
            out.push(
                SimTime::from_epoch_seconds(origin + bucket_idx * width),
                acc.mean(),
            );
        }
        out
    }
}

impl Extend<(SimTime, f64)> for TimeSeries {
    fn extend<T: IntoIterator<Item = (SimTime, f64)>>(&mut self, iter: T) {
        for (t, v) in iter {
            self.push(t, v);
        }
    }
}

impl FromIterator<(SimTime, f64)> for TimeSeries {
    fn from_iter<T: IntoIterator<Item = (SimTime, f64)>>(iter: T) -> Self {
        let mut s = TimeSeries::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ramp(n: i64) -> TimeSeries {
        (0..n)
            .map(|i| (SimTime::from_epoch_seconds(i * 300), i as f64))
            .collect()
    }

    #[test]
    fn push_and_accessors() {
        let s = ramp(5);
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
        assert_eq!(s.first().unwrap().1, 0.0);
        assert_eq!(s.last().unwrap().1, 4.0);
        assert_eq!(s.values(), &[0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_out_of_order() {
        let mut s = ramp(2);
        s.push(SimTime::from_epoch_seconds(0), 9.0);
    }

    #[test]
    fn slice_is_half_open() {
        let s = ramp(10);
        let sl = s.slice(
            SimTime::from_epoch_seconds(300),
            SimTime::from_epoch_seconds(900),
        );
        assert_eq!(sl.values(), &[1.0, 2.0]);
    }

    #[test]
    fn at_or_before_sample_and_hold() {
        let s = ramp(3);
        assert_eq!(
            s.at_or_before(SimTime::from_epoch_seconds(450)).unwrap().1,
            1.0
        );
        assert_eq!(
            s.at_or_before(SimTime::from_epoch_seconds(300)).unwrap().1,
            1.0
        );
        assert!(s.at_or_before(SimTime::from_epoch_seconds(-1)).is_none());
    }

    #[test]
    fn trend_recovers_ramp() {
        let s = ramp(100);
        let fit = s.trend_per_day().expect("fit");
        // 1 unit per 300 s = 288 units per day.
        assert!((fit.slope - 288.0).abs() < 1e-6);
        assert!((fit.r_squared - 1.0).abs() < 1e-9);
    }

    #[test]
    fn resample_mean_averages_buckets() {
        let s = ramp(6);
        let r = s.resample_mean(Duration::from_seconds(600));
        assert_eq!(r.len(), 3);
        assert_eq!(r.values(), &[0.5, 2.5, 4.5]);
        assert_eq!(r.times()[1].epoch_seconds(), 600);
    }

    #[test]
    fn resample_empty_is_empty() {
        let s = TimeSeries::new();
        assert!(s.resample_mean(Duration::from_hours(1)).is_empty());
    }

    #[test]
    #[should_panic(expected = "bucket must be positive")]
    fn resample_rejects_zero_bucket() {
        let _ = ramp(2).resample_mean(Duration::ZERO);
    }

    proptest! {
        #[test]
        fn resample_preserves_global_mean_for_full_buckets(n in 2usize..200) {
            // Bucket width divides the sample count exactly.
            let s = ramp(n as i64 * 4);
            let r = s.resample_mean(Duration::from_seconds(1200));
            prop_assert!((r.mean() - s.mean()).abs() < 1e-9);
        }

        #[test]
        fn slice_never_exceeds_bounds(n in 0i64..100, a in 0i64..30_000, b in 0i64..30_000) {
            let s = ramp(n);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let sl = s.slice(
                SimTime::from_epoch_seconds(lo),
                SimTime::from_epoch_seconds(hi),
            );
            for (t, _) in sl.iter() {
                prop_assert!(t.epoch_seconds() >= lo && t.epoch_seconds() < hi);
            }
        }
    }
}
