//! A from-scratch proleptic-Gregorian calendar.
//!
//! The simulator needs exact civil-time arithmetic over 2014–2019 —
//! leap years (2016!), day-of-week (Monday maintenance), and month
//! boundaries (allocation years, free-cooling season). The conversions
//! between dates and day counts use the classic days-from-civil /
//! civil-from-days algorithms (Howard Hinnant), valid over the whole
//! proleptic Gregorian calendar.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A month of the civil year.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Month {
    January = 1,
    February = 2,
    March = 3,
    April = 4,
    May = 5,
    June = 6,
    July = 7,
    August = 8,
    September = 9,
    October = 10,
    November = 11,
    December = 12,
}

impl Month {
    /// All twelve months, January first.
    pub const ALL: [Month; 12] = [
        Month::January,
        Month::February,
        Month::March,
        Month::April,
        Month::May,
        Month::June,
        Month::July,
        Month::August,
        Month::September,
        Month::October,
        Month::November,
        Month::December,
    ];

    /// Builds a month from its 1-based number.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not in `1..=12`.
    #[must_use]
    pub fn from_number(n: u8) -> Self {
        Self::ALL
            .get(usize::from(n.wrapping_sub(1)))
            .copied()
            // Documented contract panic. mira-lint: allow(no-unwrap-in-lib, panic-reachability)
            .unwrap_or_else(|| panic!("month number out of range: {n}"))
    }

    /// The 1-based month number (January = 1).
    #[must_use]
    pub fn number(self) -> u8 {
        self as u8
    }

    /// The month's zero-based index (January = 0), handy for array bins.
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self.number()) - 1
    }

    /// Whether this month falls in the Chicago free-cooling season
    /// (December through March), when the waterside economizer can carry
    /// part or all of the chilled-water load.
    #[must_use]
    pub fn is_free_cooling_season(self) -> bool {
        matches!(
            self,
            Month::December | Month::January | Month::February | Month::March
        )
    }

    /// Whether this month is in the second half of the calendar year,
    /// where INCITE projects race their allocation deadline and Mira's
    /// utilization peaks.
    #[must_use]
    pub fn is_second_half(self) -> bool {
        self.number() >= 7
    }

    /// Number of days in this month for the given year.
    #[must_use]
    pub fn days(self, year: i32) -> u8 {
        match self {
            Month::January
            | Month::March
            | Month::May
            | Month::July
            | Month::August
            | Month::October
            | Month::December => 31,
            Month::April | Month::June | Month::September | Month::November => 30,
            Month::February => {
                if is_leap_year(year) {
                    29
                } else {
                    28
                }
            }
        }
    }
}

impl fmt::Display for Month {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Month::January => "January",
            Month::February => "February",
            Month::March => "March",
            Month::April => "April",
            Month::May => "May",
            Month::June => "June",
            Month::July => "July",
            Month::August => "August",
            Month::September => "September",
            Month::October => "October",
            Month::November => "November",
            Month::December => "December",
        };
        f.write_str(name)
    }
}

/// A day of the week.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Weekday {
    Monday = 0,
    Tuesday = 1,
    Wednesday = 2,
    Thursday = 3,
    Friday = 4,
    Saturday = 5,
    Sunday = 6,
}

impl Weekday {
    /// All seven weekdays, Monday first (the paper's Fig. 5 ordering).
    pub const ALL: [Weekday; 7] = [
        Weekday::Monday,
        Weekday::Tuesday,
        Weekday::Wednesday,
        Weekday::Thursday,
        Weekday::Friday,
        Weekday::Saturday,
        Weekday::Sunday,
    ];

    /// Zero-based index with Monday = 0.
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self as u8)
    }

    /// Builds a weekday from its Monday-based index.
    ///
    /// # Panics
    ///
    /// Panics if `i > 6`.
    #[must_use]
    pub fn from_index(i: usize) -> Self {
        Self::ALL
            .get(i)
            .copied()
            // Documented contract panic. mira-lint: allow(no-unwrap-in-lib, panic-reachability)
            .unwrap_or_else(|| panic!("weekday index out of range: {i}"))
    }
}

impl fmt::Display for Weekday {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Weekday::Monday => "Monday",
            Weekday::Tuesday => "Tuesday",
            Weekday::Wednesday => "Wednesday",
            Weekday::Thursday => "Thursday",
            Weekday::Friday => "Friday",
            Weekday::Saturday => "Saturday",
            Weekday::Sunday => "Sunday",
        };
        f.write_str(name)
    }
}

/// Whether `year` is a Gregorian leap year.
#[must_use]
pub fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// A civil date (proleptic Gregorian).
///
/// ```
/// use mira_timeseries::{Date, Weekday};
/// // Theta joined Mira's cooling loop in July 2016.
/// let theta = Date::new(2016, 7, 1);
/// assert_eq!(theta.weekday(), Weekday::Friday);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Date {
    year: i32,
    month: Month,
    day: u8,
}

impl Date {
    /// Creates a date from year, 1-based month number, and day of month.
    ///
    /// # Panics
    ///
    /// Panics if the month or day is out of range for that year.
    #[must_use]
    pub fn new(year: i32, month: u8, day: u8) -> Self {
        let month = Month::from_number(month);
        assert!(
            day >= 1 && day <= month.days(year),
            "day {day} out of range for {month} {year}"
        );
        Self { year, month, day }
    }

    /// The calendar year.
    #[must_use]
    pub fn year(self) -> i32 {
        self.year
    }

    /// The month.
    #[must_use]
    pub fn month(self) -> Month {
        self.month
    }

    /// The day of month (1-based).
    #[must_use]
    pub fn day(self) -> u8 {
        self.day
    }

    /// Days since 1970-01-01 (may be negative before the epoch).
    ///
    /// Implements Hinnant's `days_from_civil`.
    #[must_use]
    pub fn days_since_epoch(self) -> i64 {
        let y = i64::from(self.year) - i64::from(self.month.number() <= 2);
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400; // [0, 399]
        let m = i64::from(self.month.number());
        let d = i64::from(self.day);
        let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
        era * 146_097 + doe - 719_468
    }

    /// Builds a date from days since 1970-01-01.
    ///
    /// Implements Hinnant's `civil_from_days`.
    #[must_use]
    pub fn from_days_since_epoch(days: i64) -> Self {
        let z = days + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097; // [0, 146096]
        let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365; // [0, 399]
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
        let mp = (5 * doy + 2) / 153; // [0, 11]
        let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
        let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
                                                       // Only a year outside i32 (far beyond any telemetry horizon) can
                                                       // fail here. mira-lint: allow(no-unwrap-in-lib, panic-reachability)
        let year = i32::try_from(y + i64::from(m <= 2)).expect("year out of i32 range");
        // `mp` bounds put `m` in [1, 12] and `d` in [1, 31]; `Date::new`
        // re-validates both, so the fallbacks are unreachable.
        Self::new(
            year,
            u8::try_from(m).unwrap_or(0),
            u8::try_from(d).unwrap_or(0),
        )
    }

    /// The weekday of this date (1970-01-01 was a Thursday).
    #[must_use]
    pub fn weekday(self) -> Weekday {
        let days = self.days_since_epoch();
        // Days-since-epoch 0 = Thursday = Monday-index 3.
        // rem_euclid(7) is non-negative and below 7, so the conversion
        // is lossless and the fallback is unreachable.
        let idx = (days + 3).rem_euclid(7);
        Weekday::from_index(usize::try_from(idx).unwrap_or(0))
    }

    /// The date `n` days after this one (`n` may be negative).
    #[must_use]
    pub fn plus_days(self, n: i64) -> Self {
        Self::from_days_since_epoch(self.days_since_epoch() + n)
    }

    /// Zero-based day of year (Jan 1 = 0).
    #[must_use]
    pub fn day_of_year(self) -> u16 {
        let jan1 = Date::new(self.year, 1, 1);
        // A date is 0..=365 days after its own January 1, so the
        // difference always fits u16.
        u16::try_from(self.days_since_epoch() - jan1.days_since_epoch()).unwrap_or(0)
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:04}-{:02}-{:02}",
            self.year,
            self.month.number(),
            self.day
        )
    }
}

/// A civil date and time-of-day (no timezone; the facility clock).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DateTime {
    date: Date,
    hour: u8,
    minute: u8,
    second: u8,
}

impl DateTime {
    /// Creates a date-time.
    ///
    /// # Panics
    ///
    /// Panics if `hour > 23`, `minute > 59`, or `second > 59`.
    #[must_use]
    pub fn new(date: Date, hour: u8, minute: u8, second: u8) -> Self {
        assert!(hour <= 23, "hour out of range: {hour}");
        assert!(minute <= 59, "minute out of range: {minute}");
        assert!(second <= 59, "second out of range: {second}");
        Self {
            date,
            hour,
            minute,
            second,
        }
    }

    /// Midnight at the start of `date`.
    #[must_use]
    pub fn midnight(date: Date) -> Self {
        Self::new(date, 0, 0, 0)
    }

    /// The civil date.
    #[must_use]
    pub fn date(self) -> Date {
        self.date
    }

    /// Hour of day (0–23).
    #[must_use]
    pub fn hour(self) -> u8 {
        self.hour
    }

    /// Minute of hour (0–59).
    #[must_use]
    pub fn minute(self) -> u8 {
        self.minute
    }

    /// Second of minute (0–59).
    #[must_use]
    pub fn second(self) -> u8 {
        self.second
    }

    /// Seconds since 1970-01-01T00:00:00.
    #[must_use]
    pub fn seconds_since_epoch(self) -> i64 {
        self.date.days_since_epoch() * 86_400
            + i64::from(self.hour) * 3600
            + i64::from(self.minute) * 60
            + i64::from(self.second)
    }

    /// Builds a date-time from seconds since the epoch.
    #[must_use]
    pub fn from_seconds_since_epoch(secs: i64) -> Self {
        let days = secs.div_euclid(86_400);
        let sod = secs.rem_euclid(86_400);
        let date = Date::from_days_since_epoch(days);
        // sod = rem_euclid(86_400) lies in [0, 86_399], so every field is
        // in range; `Self::new` re-checks them.
        let hour = u8::try_from(sod / 3600).unwrap_or(0);
        let minute = u8::try_from((sod % 3600) / 60).unwrap_or(0);
        let second = u8::try_from(sod % 60).unwrap_or(0);
        Self::new(date, hour, minute, second)
    }

    /// Fractional hour of day in `[0, 24)`, used by diurnal models.
    #[must_use]
    pub fn hour_of_day(self) -> f64 {
        f64::from(self.hour) + f64::from(self.minute) / 60.0 + f64::from(self.second) / 3600.0
    }
}

impl fmt::Display for DateTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {:02}:{:02}:{:02}",
            self.date, self.hour, self.minute, self.second
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(Date::new(1970, 1, 1).days_since_epoch(), 0);
        assert_eq!(Date::new(1970, 1, 1).weekday(), Weekday::Thursday);
    }

    #[test]
    fn known_dates() {
        // Mira production start and end.
        assert_eq!(Date::new(2014, 1, 1).weekday(), Weekday::Wednesday);
        assert_eq!(Date::new(2019, 12, 31).weekday(), Weekday::Tuesday);
        // 2016 was a leap year.
        assert!(is_leap_year(2016));
        assert!(!is_leap_year(2100));
        assert!(is_leap_year(2000));
        assert_eq!(Month::February.days(2016), 29);
        assert_eq!(Month::February.days(2015), 28);
    }

    #[test]
    fn six_year_span_length() {
        let days =
            Date::new(2020, 1, 1).days_since_epoch() - Date::new(2014, 1, 1).days_since_epoch();
        // 2014..2019 inclusive: 4*365 + 2*366 (2016, plus... wait 2016 only).
        // 2014,2015,2017,2018,2019 are 365; 2016 is 366.
        assert_eq!(days, 5 * 365 + 366);
    }

    #[test]
    fn day_of_year_boundaries() {
        assert_eq!(Date::new(2016, 1, 1).day_of_year(), 0);
        assert_eq!(Date::new(2016, 12, 31).day_of_year(), 365);
        assert_eq!(Date::new(2015, 12, 31).day_of_year(), 364);
    }

    #[test]
    fn plus_days_crosses_boundaries() {
        assert_eq!(Date::new(2016, 2, 28).plus_days(1), Date::new(2016, 2, 29));
        assert_eq!(Date::new(2015, 12, 31).plus_days(1), Date::new(2016, 1, 1));
        assert_eq!(Date::new(2016, 1, 1).plus_days(-1), Date::new(2015, 12, 31));
    }

    #[test]
    fn free_cooling_season_months() {
        let season: Vec<Month> = Month::ALL
            .into_iter()
            .filter(|m| m.is_free_cooling_season())
            .collect();
        assert_eq!(
            season,
            vec![
                Month::January,
                Month::February,
                Month::March,
                Month::December
            ]
        );
    }

    #[test]
    fn datetime_round_trip_known() {
        let dt = DateTime::new(Date::new(2016, 7, 4), 9, 30, 15);
        let secs = dt.seconds_since_epoch();
        assert_eq!(DateTime::from_seconds_since_epoch(secs), dt);
    }

    #[test]
    fn hour_of_day_fractional() {
        let dt = DateTime::new(Date::new(2014, 1, 1), 12, 30, 0);
        assert!((dt.hour_of_day() - 12.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "day 30 out of range")]
    fn invalid_february_rejected() {
        let _ = Date::new(2015, 2, 30);
    }

    #[test]
    #[should_panic(expected = "month number out of range")]
    fn invalid_month_rejected() {
        let _ = Date::new(2015, 13, 1);
    }

    #[test]
    #[should_panic(expected = "hour out of range")]
    fn invalid_hour_rejected() {
        let _ = DateTime::new(Date::new(2015, 1, 1), 24, 0, 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Date::new(2016, 7, 1).to_string(), "2016-07-01");
        assert_eq!(
            DateTime::new(Date::new(2016, 7, 1), 9, 5, 0).to_string(),
            "2016-07-01 09:05:00"
        );
        assert_eq!(Month::July.to_string(), "July");
        assert_eq!(Weekday::Monday.to_string(), "Monday");
    }

    #[test]
    fn weekday_sequence_is_cyclic() {
        let mut d = Date::new(2014, 1, 6); // a Monday
        assert_eq!(d.weekday(), Weekday::Monday);
        for expected in [
            Weekday::Tuesday,
            Weekday::Wednesday,
            Weekday::Thursday,
            Weekday::Friday,
            Weekday::Saturday,
            Weekday::Sunday,
            Weekday::Monday,
        ] {
            d = d.plus_days(1);
            assert_eq!(d.weekday(), expected);
        }
    }

    proptest! {
        #[test]
        fn date_round_trip(days in -1_000_000i64..1_000_000) {
            let d = Date::from_days_since_epoch(days);
            prop_assert_eq!(d.days_since_epoch(), days);
        }

        #[test]
        fn datetime_round_trip(secs in -50_000_000_000i64..50_000_000_000) {
            let dt = DateTime::from_seconds_since_epoch(secs);
            prop_assert_eq!(dt.seconds_since_epoch(), secs);
        }

        #[test]
        fn plus_days_is_additive(days in -100_000i64..100_000, a in -500i64..500, b in -500i64..500) {
            let d = Date::from_days_since_epoch(days);
            prop_assert_eq!(d.plus_days(a).plus_days(b), d.plus_days(a + b));
        }

        #[test]
        fn weekday_advances_by_one(days in -100_000i64..100_000) {
            let d = Date::from_days_since_epoch(days);
            let next = d.plus_days(1);
            prop_assert_eq!(
                (d.weekday().index() + 1) % 7,
                next.weekday().index()
            );
        }
    }
}
