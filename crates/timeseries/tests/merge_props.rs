//! Merge laws for the streaming aggregates: partitioned folds must
//! agree with a single stream, and merging must be associative.
//!
//! Counts, minima, and maxima are integer- or order-exact, so they are
//! compared exactly. Means and variances go through floating-point
//! folds whose rounding depends on association, so they are compared to
//! tight tolerances instead.

use proptest::prelude::*;

use mira_timeseries::{P2Quantile, Welford};

fn fold(values: &[f64]) -> Welford {
    let mut w = Welford::new();
    for &v in values {
        w.push(v);
    }
    w
}

/// Bounded, NaN-free samples: rounding-error bounds below assume a
/// bounded domain.
fn samples(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1.0e3..1.0e3f64, 0..max_len)
}

fn close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Splitting a stream at any point and merging the two partial
    /// accumulators agrees with folding the whole stream.
    #[test]
    fn welford_merge_agrees_with_single_stream(
        values in samples(200),
        cut_frac in 0.0..1.0f64,
    ) {
        let cut = ((values.len() as f64) * cut_frac) as usize;
        let (left, right) = values.split_at(cut.min(values.len()));

        let whole = fold(&values);
        let mut merged = fold(left);
        merged.merge(&fold(right));

        prop_assert_eq!(merged.count(), whole.count());
        if !values.is_empty() {
            prop_assert_eq!(merged.min(), whole.min());
            prop_assert_eq!(merged.max(), whole.max());
            prop_assert!(
                close(merged.mean(), whole.mean(), 1e-12),
                "mean {} vs {}", merged.mean(), whole.mean()
            );
            prop_assert!(
                close(merged.stddev(), whole.stddev(), 1e-9),
                "stddev {} vs {}", merged.stddev(), whole.stddev()
            );
        }
    }

    /// (a ⊔ b) ⊔ c agrees with a ⊔ (b ⊔ c) on a three-way partition.
    #[test]
    fn welford_merge_is_associative(
        a in samples(80),
        b in samples(80),
        c in samples(80),
    ) {
        let (wa, wb, wc) = (fold(&a), fold(&b), fold(&c));

        let mut left = wa;
        left.merge(&wb);
        left.merge(&wc);

        let mut right_tail = wb;
        right_tail.merge(&wc);
        let mut right = wa;
        right.merge(&right_tail);

        prop_assert_eq!(left.count(), right.count());
        if left.count() > 0 {
            prop_assert_eq!(left.min(), right.min());
            prop_assert_eq!(left.max(), right.max());
            prop_assert!(
                close(left.mean(), right.mean(), 1e-12),
                "mean {} vs {}", left.mean(), right.mean()
            );
            prop_assert!(
                close(left.stddev(), right.stddev(), 1e-9),
                "stddev {} vs {}", left.stddev(), right.stddev()
            );
        }
    }

    /// Merging empty accumulators from either side is the identity.
    #[test]
    fn welford_empty_is_identity(values in samples(100)) {
        let whole = fold(&values);

        let mut left = Welford::new();
        left.merge(&whole);
        prop_assert_eq!(&left, &whole);

        let mut right = whole;
        right.merge(&Welford::new());
        prop_assert_eq!(&right, &whole);
    }

    /// The P² merge is deterministic, count-exact, and keeps its
    /// estimate inside the pooled sample range. (P² itself is an
    /// approximation, so no exactness claim is made on the value.)
    #[test]
    fn p2_merge_is_deterministic_and_bounded(
        a in samples(120),
        b in samples(120),
        p in 0.1..0.9f64,
    ) {
        let fold_p2 = |values: &[f64]| {
            let mut q = P2Quantile::new(p);
            for &v in values {
                q.push(v);
            }
            q
        };

        let mut merged = fold_p2(&a);
        merged.merge(&fold_p2(&b));
        let mut again = fold_p2(&a);
        again.merge(&fold_p2(&b));
        prop_assert_eq!(&merged, &again, "merge must be deterministic");

        let total = a.len() + b.len();
        prop_assert_eq!(merged.count(), total as u64);
        if total > 0 {
            let lo = a.iter().chain(&b).copied().fold(f64::INFINITY, f64::min);
            let hi = a.iter().chain(&b).copied().fold(f64::NEG_INFINITY, f64::max);
            let v = merged.value();
            prop_assert!(
                (lo..=hi).contains(&v),
                "estimate {v} outside pooled range [{lo}, {hi}]"
            );
        }
    }

    /// When the right side is still in P²'s exact start-up phase (≤ 5
    /// samples), merging replays its buffered samples — which the
    /// start-up phase keeps sorted — so the result equals pushing those
    /// sorted samples into the left estimator directly.
    #[test]
    fn p2_merge_replays_small_sides_exactly(
        a in samples(120),
        b in samples(5),
        p in 0.1..0.9f64,
    ) {
        let fold_p2 = |values: &[f64]| {
            let mut q = P2Quantile::new(p);
            for &v in values {
                q.push(v);
            }
            q
        };

        let mut merged = fold_p2(&a);
        merged.merge(&fold_p2(&b));

        let mut sorted_b = b.clone();
        sorted_b.sort_by(f64::total_cmp);
        let mut single = fold_p2(&a);
        for &v in &sorted_b {
            single.push(v);
        }
        prop_assert_eq!(merged.value(), single.value());
        prop_assert_eq!(merged.count(), single.count());
    }
}
