//! Command-line interface logic for the `mira-ops` binary.
//!
//! Hand-rolled argument parsing (the workspace carries no CLI
//! dependency): a small [`args::ArgMap`] splitting `--key value` flags,
//! date parsing, and one function per subcommand in [`commands`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod archive_cmd;
pub mod args;
pub mod commands;

pub use args::{parse_date, parse_datetime, ArgMap, CliError};
