//! Minimal `--key value` argument parsing and date handling.

use std::collections::BTreeMap;
use std::fmt;

use mira_timeseries::{Date, DateTime, SimTime};

/// A user-facing CLI error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

/// Convenience constructor.
pub fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Parsed `--key value` flags plus positional arguments.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ArgMap {
    flags: BTreeMap<String, String>,
    positional: Vec<String>,
    switches: Vec<String>,
}

impl ArgMap {
    /// Parses raw arguments (after the subcommand).
    ///
    /// `--key value` populates flags; `--key` followed by another flag
    /// or nothing is a boolean switch; everything else is positional.
    ///
    /// # Errors
    ///
    /// Never fails today, but returns `Result` so future validation can.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, CliError> {
        let mut out = ArgMap::default();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                match iter.next_if(|next| !next.starts_with("--")) {
                    Some(value) => {
                        out.flags.insert(key.to_string(), value);
                    }
                    None => out.switches.push(key.to_string()),
                }
            } else {
                out.positional.push(arg);
            }
        }
        Ok(out)
    }

    /// The value of `--key`, if given.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// Whether a boolean `--switch` was given.
    #[must_use]
    pub fn switch(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }

    /// Positional arguments.
    #[must_use]
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// A required flag, with a helpful error.
    pub fn require(&self, key: &str) -> Result<&str, CliError> {
        self.get(key).ok_or_else(|| err(format!("missing --{key}")))
    }

    /// A flag parsed to a type, with a default.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| err(format!("invalid value for --{key}: {v}"))),
        }
    }
}

/// Parses `YYYY-MM-DD`.
///
/// # Errors
///
/// Returns a [`CliError`] describing the malformed component.
pub fn parse_date(s: &str) -> Result<Date, CliError> {
    let parts: Vec<&str> = s.trim().split('-').collect();
    if parts.len() != 3 {
        return Err(err(format!("expected YYYY-MM-DD, got {s}")));
    }
    let year: i32 = parts[0].parse().map_err(|_| err("bad year"))?;
    let month: u8 = parts[1].parse().map_err(|_| err("bad month"))?;
    let day: u8 = parts[2].parse().map_err(|_| err("bad day"))?;
    if !(1..=12).contains(&month) {
        return Err(err(format!("month out of range: {month}")));
    }
    let m = mira_timeseries::Month::from_number(month);
    if day < 1 || day > m.days(year) {
        return Err(err(format!("day out of range: {day}")));
    }
    Ok(Date::new(year, month, day))
}

/// Parses `YYYY-MM-DD` or `YYYY-MM-DD HH:MM[:SS]` (also accepts a `T`
/// separator) into a [`SimTime`].
///
/// # Errors
///
/// Returns a [`CliError`] on malformed input.
pub fn parse_datetime(s: &str) -> Result<SimTime, CliError> {
    let s = s.trim();
    let (date_part, time_part) = match s.split_once([' ', 'T']) {
        Some((d, t)) => (d, Some(t)),
        None => (s, None),
    };
    let date = parse_date(date_part)?;
    let Some(time) = time_part else {
        return Ok(SimTime::from_date(date));
    };
    let parts: Vec<&str> = time.split(':').collect();
    if parts.len() < 2 || parts.len() > 3 {
        return Err(err(format!("expected HH:MM[:SS], got {time}")));
    }
    let hour: u8 = parts[0].parse().map_err(|_| err("bad hour"))?;
    let minute: u8 = parts[1].parse().map_err(|_| err("bad minute"))?;
    let second: u8 = if parts.len() == 3 {
        parts[2].parse().map_err(|_| err("bad second"))?
    } else {
        0
    };
    if hour > 23 || minute > 59 || second > 59 {
        return Err(err(format!("time out of range: {time}")));
    }
    Ok(SimTime::from_datetime(DateTime::new(
        date, hour, minute, second,
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> ArgMap {
        ArgMap::parse(args.iter().map(ToString::to_string)).unwrap()
    }

    #[test]
    fn flags_switches_positional() {
        // Positionals come before flags; `--key value` binds greedily,
        // so a trailing or flag-adjacent `--switch` is boolean.
        let a = parse(&["extra", "--seed", "7", "--fast", "--out", "x.csv"]);
        assert_eq!(a.get("seed"), Some("7"));
        assert_eq!(a.get("out"), Some("x.csv"));
        assert!(a.switch("fast"));
        assert!(!a.switch("slow"));
        assert_eq!(a.positional(), &["extra".to_string()]);
    }

    #[test]
    fn value_binding_is_greedy() {
        // `--fast extra` binds "extra" as the value of --fast.
        let a = parse(&["--fast", "extra"]);
        assert_eq!(a.get("fast"), Some("extra"));
        assert!(!a.switch("fast"));
        assert!(a.positional().is_empty());
    }

    #[test]
    fn adjacent_switches() {
        let a = parse(&["--fast", "--verbose"]);
        assert!(a.switch("fast") && a.switch("verbose"));
    }

    #[test]
    fn require_and_parsed() {
        let a = parse(&["--seed", "42"]);
        assert_eq!(a.require("seed").unwrap(), "42");
        assert!(a.require("missing").is_err());
        assert_eq!(a.get_parsed("seed", 0u64).unwrap(), 42);
        assert_eq!(a.get_parsed("other", 9u64).unwrap(), 9);
        let bad = parse(&["--seed", "xyz"]);
        assert!(bad.get_parsed("seed", 0u64).is_err());
    }

    #[test]
    fn date_parsing() {
        let d = parse_date("2016-07-01").unwrap();
        assert_eq!(d, Date::new(2016, 7, 1));
        assert!(parse_date("2016-13-01").is_err());
        assert!(parse_date("2015-02-29").is_err());
        assert!(parse_date("nope").is_err());
    }

    #[test]
    fn datetime_parsing() {
        let t = parse_datetime("2016-07-01 09:30").unwrap();
        assert_eq!(t.to_datetime().hour(), 9);
        assert_eq!(t.to_datetime().minute(), 30);
        let t2 = parse_datetime("2016-07-01T09:30:15").unwrap();
        assert_eq!(t2.to_datetime().second(), 15);
        let midnight = parse_datetime("2016-07-01").unwrap();
        assert_eq!(midnight.to_datetime().hour(), 0);
        assert!(parse_datetime("2016-07-01 25:00").is_err());
        assert!(parse_datetime("2016-07-01 09").is_err());
    }

    #[test]
    fn error_display() {
        assert_eq!(err("boom").to_string(), "boom");
    }
}
