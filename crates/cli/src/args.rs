//! Minimal `--key value` argument parsing and date handling.

use std::collections::BTreeMap;
use std::fmt;

use mira_timeseries::{Date, DateTime, SimTime};

/// A user-facing CLI error, carrying enough structure to derive the
/// process exit code from the cause instead of string matching.
#[derive(Debug)]
pub enum CliError {
    /// The user asked for something malformed (bad flag, bad date,
    /// unknown command). The message is the full user-facing text.
    Usage(String),
    /// A `mira-core` operation failed; the cause chain is preserved.
    Core(mira_core::Error),
    /// An I/O operation outside mira-core failed (writing output,
    /// creating a file).
    Io {
        /// What the CLI was doing, e.g. `cannot create out.csv`.
        context: String,
        /// The underlying failure.
        source: std::io::Error,
    },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => f.write_str(msg),
            CliError::Core(e) => e.fmt(f),
            CliError::Io { context, source } => write!(f, "{context}: {source}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Usage(_) => None,
            CliError::Core(e) => Some(e),
            CliError::Io { source, .. } => Some(source),
        }
    }
}

impl From<mira_core::Error> for CliError {
    fn from(e: mira_core::Error) -> Self {
        CliError::Core(e)
    }
}

impl From<mira_core::StoreError> for CliError {
    fn from(e: mira_core::StoreError) -> Self {
        CliError::Core(mira_core::Error::Store(e))
    }
}

impl CliError {
    /// The process exit code for this error, derived from the error
    /// structure: `2` usage, `3` sweep, `4` store parse, `5` store
    /// I/O, `6` CLI-side I/O, `7` store corruption, `1` anything else.
    ///
    /// Codes 3–5 and 7 delegate to [`mira_core::Error::exit_code`] so
    /// batch invocations and `serve` error replies stay in lockstep.
    #[must_use]
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Core(e) => e.exit_code(),
            CliError::Io { .. } => 6,
        }
    }
}

/// Convenience constructor for usage errors.
pub fn err(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

/// Output rendering shared by every subcommand that offers a choice:
/// `report --metrics`, `export --format`, and the `serve` shutdown
/// banner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputFormat {
    /// Machine-readable JSON (NDJSON where the output is row-oriented).
    Json,
    /// Human-readable text (CSV where the output is row-oriented).
    Text,
}

impl std::str::FromStr for OutputFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "json" => Ok(OutputFormat::Json),
            "text" => Ok(OutputFormat::Text),
            other => Err(format!("must be json or text, got {other}")),
        }
    }
}

impl fmt::Display for OutputFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OutputFormat::Json => "json",
            OutputFormat::Text => "text",
        })
    }
}

impl OutputFormat {
    /// Reads an optional `--<key> json|text` flag.
    ///
    /// # Errors
    ///
    /// A usage error naming the flag when the value is neither `json`
    /// nor `text`.
    pub fn from_flag(args: &ArgMap, key: &str) -> Result<Option<OutputFormat>, CliError> {
        match args.get(key) {
            None => Ok(None),
            Some(v) => v.parse().map(Some).map_err(|e| err(format!("--{key} {e}"))),
        }
    }
}

/// Parsed `--key value` flags plus positional arguments.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ArgMap {
    flags: BTreeMap<String, String>,
    positional: Vec<String>,
    switches: Vec<String>,
}

impl ArgMap {
    /// Parses raw arguments (after the subcommand).
    ///
    /// `--key value` populates flags; `--key` followed by another flag
    /// or nothing is a boolean switch; everything else is positional.
    ///
    /// # Errors
    ///
    /// Never fails today, but returns `Result` so future validation can.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, CliError> {
        let mut out = ArgMap::default();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                match iter.next_if(|next| !next.starts_with("--")) {
                    Some(value) => {
                        out.flags.insert(key.to_string(), value);
                    }
                    None => out.switches.push(key.to_string()),
                }
            } else {
                out.positional.push(arg);
            }
        }
        Ok(out)
    }

    /// The value of `--key`, if given.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// Whether a boolean `--switch` was given.
    #[must_use]
    pub fn switch(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }

    /// Positional arguments.
    #[must_use]
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// A required flag, with a helpful error.
    pub fn require(&self, key: &str) -> Result<&str, CliError> {
        self.get(key).ok_or_else(|| err(format!("missing --{key}")))
    }

    /// A flag parsed to a type, with a default.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| err(format!("invalid value for --{key}: {v}"))),
        }
    }
}

/// Parses `YYYY-MM-DD`.
///
/// # Errors
///
/// Returns a [`CliError`] describing the malformed component.
pub fn parse_date(s: &str) -> Result<Date, CliError> {
    let parts: Vec<&str> = s.trim().split('-').collect();
    if parts.len() != 3 {
        return Err(err(format!("expected YYYY-MM-DD, got {s}")));
    }
    let year: i32 = parts[0].parse().map_err(|_| err("bad year"))?;
    let month: u8 = parts[1].parse().map_err(|_| err("bad month"))?;
    let day: u8 = parts[2].parse().map_err(|_| err("bad day"))?;
    if !(1..=12).contains(&month) {
        return Err(err(format!("month out of range: {month}")));
    }
    let m = mira_timeseries::Month::from_number(month);
    if day < 1 || day > m.days(year) {
        return Err(err(format!("day out of range: {day}")));
    }
    Ok(Date::new(year, month, day))
}

/// Parses `YYYY-MM-DD` or `YYYY-MM-DD HH:MM[:SS]` (also accepts a `T`
/// separator) into a [`SimTime`].
///
/// # Errors
///
/// Returns a [`CliError`] on malformed input.
pub fn parse_datetime(s: &str) -> Result<SimTime, CliError> {
    let s = s.trim();
    let (date_part, time_part) = match s.split_once([' ', 'T']) {
        Some((d, t)) => (d, Some(t)),
        None => (s, None),
    };
    let date = parse_date(date_part)?;
    let Some(time) = time_part else {
        return Ok(SimTime::from_date(date));
    };
    let parts: Vec<&str> = time.split(':').collect();
    if parts.len() < 2 || parts.len() > 3 {
        return Err(err(format!("expected HH:MM[:SS], got {time}")));
    }
    let hour: u8 = parts[0].parse().map_err(|_| err("bad hour"))?;
    let minute: u8 = parts[1].parse().map_err(|_| err("bad minute"))?;
    let second: u8 = if parts.len() == 3 {
        parts[2].parse().map_err(|_| err("bad second"))?
    } else {
        0
    };
    if hour > 23 || minute > 59 || second > 59 {
        return Err(err(format!("time out of range: {time}")));
    }
    Ok(SimTime::from_datetime(DateTime::new(
        date, hour, minute, second,
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> ArgMap {
        ArgMap::parse(args.iter().map(ToString::to_string)).unwrap()
    }

    #[test]
    fn flags_switches_positional() {
        // Positionals come before flags; `--key value` binds greedily,
        // so a trailing or flag-adjacent `--switch` is boolean.
        let a = parse(&["extra", "--seed", "7", "--fast", "--out", "x.csv"]);
        assert_eq!(a.get("seed"), Some("7"));
        assert_eq!(a.get("out"), Some("x.csv"));
        assert!(a.switch("fast"));
        assert!(!a.switch("slow"));
        assert_eq!(a.positional(), &["extra".to_string()]);
    }

    #[test]
    fn value_binding_is_greedy() {
        // `--fast extra` binds "extra" as the value of --fast.
        let a = parse(&["--fast", "extra"]);
        assert_eq!(a.get("fast"), Some("extra"));
        assert!(!a.switch("fast"));
        assert!(a.positional().is_empty());
    }

    #[test]
    fn adjacent_switches() {
        let a = parse(&["--fast", "--verbose"]);
        assert!(a.switch("fast") && a.switch("verbose"));
    }

    #[test]
    fn require_and_parsed() {
        let a = parse(&["--seed", "42"]);
        assert_eq!(a.require("seed").unwrap(), "42");
        assert!(a.require("missing").is_err());
        assert_eq!(a.get_parsed("seed", 0u64).unwrap(), 42);
        assert_eq!(a.get_parsed("other", 9u64).unwrap(), 9);
        let bad = parse(&["--seed", "xyz"]);
        assert!(bad.get_parsed("seed", 0u64).is_err());
    }

    #[test]
    fn date_parsing() {
        let d = parse_date("2016-07-01").unwrap();
        assert_eq!(d, Date::new(2016, 7, 1));
        assert!(parse_date("2016-13-01").is_err());
        assert!(parse_date("2015-02-29").is_err());
        assert!(parse_date("nope").is_err());
    }

    #[test]
    fn datetime_parsing() {
        let t = parse_datetime("2016-07-01 09:30").unwrap();
        assert_eq!(t.to_datetime().hour(), 9);
        assert_eq!(t.to_datetime().minute(), 30);
        let t2 = parse_datetime("2016-07-01T09:30:15").unwrap();
        assert_eq!(t2.to_datetime().second(), 15);
        let midnight = parse_datetime("2016-07-01").unwrap();
        assert_eq!(midnight.to_datetime().hour(), 0);
        assert!(parse_datetime("2016-07-01 25:00").is_err());
        assert!(parse_datetime("2016-07-01 09").is_err());
    }

    #[test]
    fn output_format_round_trips_and_rejects() {
        assert_eq!("json".parse(), Ok(OutputFormat::Json));
        assert_eq!("text".parse(), Ok(OutputFormat::Text));
        assert_eq!(OutputFormat::Json.to_string(), "json");
        assert!("csv".parse::<OutputFormat>().is_err());

        let a = parse(&["--format", "json"]);
        assert_eq!(
            OutputFormat::from_flag(&a, "format").unwrap(),
            Some(OutputFormat::Json)
        );
        assert_eq!(OutputFormat::from_flag(&a, "metrics").unwrap(), None);
        let bad = parse(&["--format", "xml"]);
        let e = OutputFormat::from_flag(&bad, "format").unwrap_err();
        assert!(e.to_string().contains("--format must be json or text"));
        assert_eq!(e.exit_code(), 2);
    }

    #[test]
    fn error_display() {
        assert_eq!(err("boom").to_string(), "boom");
        let e = CliError::Io {
            context: "cannot create x.csv".to_string(),
            source: std::io::Error::new(std::io::ErrorKind::PermissionDenied, "denied"),
        };
        assert!(e.to_string().starts_with("cannot create x.csv: "));
    }

    #[test]
    fn exit_codes_follow_the_cause() {
        use mira_core::StoreError;
        use std::error::Error as _;

        assert_eq!(err("bad flag").exit_code(), 2);
        let sweep = CliError::from(mira_core::Error::Sweep(mira_core::SweepError::EmptySpan));
        assert_eq!(sweep.exit_code(), 3);
        assert!(sweep.source().is_some(), "cause chain preserved");
        let parse = CliError::from(mira_core::Error::Store(StoreError::Parse {
            line: 1,
            message: "bad".to_string(),
        }));
        assert_eq!(parse.exit_code(), 4);
        let store_io = CliError::from(mira_core::Error::Store(StoreError::Io(
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        )));
        assert_eq!(store_io.exit_code(), 5);
        let cli_io = CliError::Io {
            context: "output error".to_string(),
            source: std::io::Error::new(std::io::ErrorKind::BrokenPipe, "pipe"),
        };
        assert_eq!(cli_io.exit_code(), 6);
        let corrupt = CliError::from(mira_core::Error::Store(StoreError::corrupt(8, "bad magic")));
        assert_eq!(corrupt.exit_code(), 7);
    }
}
