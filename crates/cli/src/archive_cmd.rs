//! The `mira-ops archive` subcommands (`pack`, `unpack`, `stat`,
//! `scan`) and the shared row emitter every telemetry export surface
//! renders through.
//!
//! Before this module each row-oriented command hand-rolled its own
//! format branch; now CSV-with-header vs NDJSON is decided in exactly
//! one place ([`RowEmitter`]), so `export`, `archive scan`, and
//! `archive unpack` cannot drift apart byte-wise.

use std::io::{self, Write};
use std::path::Path;

use mira_core::archive::write_ras_csv;
use mira_store::{
    open_archive, Archive, Channel, ColumnarArchive, CsvArchive, Projection, ScanStats,
    TelemetryRecord, TELEMETRY_HEADER,
};
use mira_timeseries::SimTime;

use crate::args::{err, parse_datetime, ArgMap, CliError, OutputFormat};
use crate::commands::{create_err, io_err};

/// Usage text for the `archive` command family.
pub const ARCHIVE_USAGE: &str = "\
USAGE: mira-ops archive <action> [flags]

ACTIONS:
  pack    --in telemetry.csv --out archive.mstore [--group-rows N]
                                   pack a CSV archive (and its .ras
                                   sidecar) into the columnar store
  unpack  --in archive.mstore --out telemetry.csv
                                   expand a columnar store back to CSV
                                   (RAS events land in <out>.ras)
  stat    --in archive.mstore      row/group counts, zone-map ranges,
                                   and compression ratio vs CSV
  scan    --in archive.mstore --from <t> --to <t> [--channels a,b]
          [--format json|text] [--out file] [--stats]
                                   dump a time span; only row groups
                                   intersecting the span are read and
                                   only projected channels decoded
";

/// Streams telemetry rows in one [`OutputFormat`]: text is CSV with
/// the shared header, json is NDJSON with no header. The single
/// rendering path behind `export`, `archive scan`, and `archive
/// unpack`.
#[derive(Debug)]
pub struct RowEmitter<W: Write> {
    w: W,
    format: OutputFormat,
    rows: usize,
    header_written: bool,
}

impl<W: Write> RowEmitter<W> {
    /// A fresh emitter; nothing is written until the first row (or
    /// [`RowEmitter::finish`], which still emits the CSV header for
    /// empty text output).
    pub fn new(w: W, format: OutputFormat) -> Self {
        RowEmitter {
            w,
            format,
            rows: 0,
            header_written: false,
        }
    }

    fn header_if_needed(&mut self) -> io::Result<()> {
        if self.format == OutputFormat::Text && !self.header_written {
            self.header_written = true;
            writeln!(self.w, "{TELEMETRY_HEADER}")?;
        }
        Ok(())
    }

    /// Writes one row in the chosen format.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn row(&mut self, rec: &TelemetryRecord) -> io::Result<()> {
        self.header_if_needed()?;
        match self.format {
            OutputFormat::Text => writeln!(self.w, "{}", rec.csv_row())?,
            OutputFormat::Json => writeln!(self.w, "{}", rec.ndjson_row())?,
        }
        self.rows += 1;
        Ok(())
    }

    /// Flushes and returns the writer along with the row count.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn finish(mut self) -> io::Result<(W, usize)> {
        self.header_if_needed()?;
        self.w.flush()?;
        Ok((self.w, self.rows))
    }
}

/// Scans `[from, to)` from an archive into an emitter, surfacing
/// writer errors that the `FnMut` sink signature cannot return.
///
/// # Errors
///
/// Store errors from the scan, I/O errors from the writer.
pub fn scan_into_emitter<W: Write>(
    ar: &mut dyn Archive,
    from: SimTime,
    to: SimTime,
    projection: Projection,
    emitter: &mut RowEmitter<W>,
) -> Result<ScanStats, CliError> {
    let mut write_err: Option<io::Error> = None;
    let stats = ar.scan_span(from, to, projection, &mut |rec| {
        if write_err.is_none() {
            if let Err(e) = emitter.row(rec) {
                write_err = Some(e);
            }
        }
    })?;
    match write_err {
        Some(e) => Err(io_err(e)),
        None => Ok(stats),
    }
}

/// The full archivable span (every representable timestamp).
fn full_span() -> (SimTime, SimTime) {
    (
        SimTime::from_epoch_seconds(i64::MIN),
        SimTime::from_epoch_seconds(i64::MAX),
    )
}

/// Parses `--channels a,b,c` into a projection (default: all).
fn projection_flag(args: &ArgMap) -> Result<Projection, CliError> {
    let Some(list) = args.get("channels") else {
        return Ok(Projection::all());
    };
    let mut picked = Vec::new();
    for tag in list.split(',').map(str::trim).filter(|t| !t.is_empty()) {
        let ch = Channel::ALL
            .iter()
            .copied()
            .find(|c| c.tag() == tag)
            .ok_or_else(|| err(format!("--channels: unknown channel {tag}")))?;
        picked.push(ch);
    }
    Ok(Projection::only(&picked))
}

/// Dispatches `mira-ops archive <action>`.
///
/// # Errors
///
/// Usage errors for unknown actions or missing flags, store errors
/// (exit codes 4/5/7) from the backends.
pub fn archive_cmd(args: &ArgMap, out: &mut dyn Write) -> Result<(), CliError> {
    match args.positional().first().map(String::as_str) {
        Some("pack") => pack(args, out),
        Some("unpack") => unpack(args, out),
        Some("stat") => stat(args, out),
        Some("scan") => scan(args, out),
        Some(other) => Err(err(format!(
            "unknown archive action: {other}\n\n{ARCHIVE_USAGE}"
        ))),
        None => Err(err(format!("archive needs an action\n\n{ARCHIVE_USAGE}"))),
    }
}

/// `mira-ops archive pack --in telemetry.csv --out archive.mstore`
fn pack(args: &ArgMap, out: &mut dyn Write) -> Result<(), CliError> {
    let input = args.require("in")?;
    let output = args.require("out")?;
    let group_rows: usize = args.get_parsed("group-rows", 0usize)?;

    let mut csv = CsvArchive::open(Path::new(input))?;
    let mut store = ColumnarArchive::create(Path::new(output))?;
    if group_rows > 0 {
        store = store.with_group_rows(group_rows);
    }
    let (from, to) = full_span();
    let mut batch: Vec<TelemetryRecord> = Vec::with_capacity(1024);
    let mut copy_err: Option<CliError> = None;
    {
        let store = &mut store;
        let batch = &mut batch;
        let copy_err = &mut copy_err;
        csv.scan_span(from, to, Projection::all(), &mut |rec| {
            if copy_err.is_some() {
                return;
            }
            batch.push(*rec);
            if batch.len() >= 1024 {
                if let Err(e) = store.append_telemetry(batch) {
                    *copy_err = Some(e.into());
                }
                batch.clear();
            }
        })?;
    }
    if let Some(e) = copy_err {
        return Err(e);
    }
    store.append_telemetry(&batch)?;
    let events = csv.ras_events()?;
    store.append_ras(&events)?;
    store.flush()?;
    let st = store.stat()?;
    writeln!(
        out,
        "packed {} rows + {} RAS events into {} groups ({} bytes, {:.2}x vs csv)",
        st.rows,
        st.ras_events,
        st.groups,
        st.file_bytes,
        st.compression_ratio()
    )
    .map_err(io_err)?;
    Ok(())
}

/// `mira-ops archive unpack --in archive.mstore --out telemetry.csv`
fn unpack(args: &ArgMap, out: &mut dyn Write) -> Result<(), CliError> {
    let input = args.require("in")?;
    let output = args.require("out")?;

    let mut ar = open_archive(Path::new(input))?;
    let file = std::fs::File::create(output).map_err(|e| create_err(output, e))?;
    let mut emitter = RowEmitter::new(io::BufWriter::new(file), OutputFormat::Text);
    let (from, to) = full_span();
    scan_into_emitter(ar.as_mut(), from, to, Projection::all(), &mut emitter)?;
    let (_, rows) = emitter.finish().map_err(io_err)?;

    let events = ar.ras_events()?;
    let ras_path = format!("{output}.ras");
    let ras_file = std::fs::File::create(&ras_path).map_err(|e| create_err(&ras_path, e))?;
    write_ras_csv(io::BufWriter::new(ras_file), events.iter())?;
    writeln!(
        out,
        "unpacked {rows} rows to {output}, {} RAS events to {ras_path}",
        events.len()
    )
    .map_err(io_err)?;
    Ok(())
}

/// `mira-ops archive stat --in archive.mstore`
fn stat(args: &ArgMap, out: &mut dyn Write) -> Result<(), CliError> {
    let input = args.require("in")?;
    let mut ar = open_archive(Path::new(input))?;
    let st = ar.stat()?;
    writeln!(out, "archive {input}:").map_err(io_err)?;
    writeln!(out, "  rows       : {} in {} groups", st.rows, st.groups).map_err(io_err)?;
    writeln!(out, "  ras events : {}", st.ras_events).map_err(io_err)?;
    match st.time_range {
        Some((lo, hi)) => writeln!(out, "  span       : {lo} .. {hi}").map_err(io_err)?,
        None => writeln!(out, "  span       : (empty)").map_err(io_err)?,
    }
    writeln!(
        out,
        "  size       : {} bytes ({} csv-equivalent, {:.2}x)",
        st.file_bytes,
        st.csv_bytes,
        st.compression_ratio()
    )
    .map_err(io_err)?;
    if let Some(zones) = st.zones {
        writeln!(out, "  zone maps  :").map_err(io_err)?;
        for (ch, (lo, hi)) in Channel::VALUES.iter().zip(zones.iter()) {
            writeln!(
                out,
                "    {:<10} : {} .. {}",
                ch.tag(),
                mira_store::format_milli(*lo),
                mira_store::format_milli(*hi)
            )
            .map_err(io_err)?;
        }
    }
    Ok(())
}

/// `mira-ops archive scan --in archive.mstore --from t --to t ...`
fn scan(args: &ArgMap, out: &mut dyn Write) -> Result<(), CliError> {
    let input = args.require("in")?;
    let from = parse_datetime(args.require("from")?)?;
    let to = parse_datetime(args.require("to")?)?;
    if from >= to {
        return Err(err("--from must precede --to"));
    }
    let format = OutputFormat::from_flag(args, "format")?.unwrap_or(OutputFormat::Text);
    let projection = projection_flag(args)?;

    let mut ar = open_archive(Path::new(input))?;
    let sink: Box<dyn Write> = match args.get("out") {
        Some(path) => Box::new(io::BufWriter::new(
            std::fs::File::create(path).map_err(|e| create_err(path, e))?,
        )),
        None => Box::new(&mut *out),
    };
    let mut emitter = RowEmitter::new(sink, format);
    let stats = scan_into_emitter(ar.as_mut(), from, to, projection, &mut emitter)?;
    let (sink, rows) = emitter.finish().map_err(io_err)?;
    drop(sink);
    if args.get("out").is_some() {
        writeln!(out, "wrote {rows} telemetry rows").map_err(io_err)?;
    }
    if args.switch("stats") {
        writeln!(
            out,
            "scan: {} rows from {}/{} groups, {} blocks decoded, {} bytes read",
            stats.rows_scanned,
            stats.groups_scanned,
            stats.groups_total,
            stats.blocks_decoded,
            stats.bytes_read
        )
        .map_err(io_err)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::run;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mira-archive-cmd-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    fn run_cmd(command: &str, args: &[&str]) -> Result<String, CliError> {
        let map = ArgMap::parse(args.iter().map(ToString::to_string))?;
        let mut out = Vec::new();
        run(command, &map, &mut out)?;
        Ok(String::from_utf8(out).expect("utf8"))
    }

    fn export_csv(dir: &Path) -> String {
        let csv = dir.join("tele.csv").display().to_string();
        run_cmd(
            "export",
            &[
                "--from",
                "2015-03-01",
                "--to",
                "2015-03-01 04:00",
                "--step-min",
                "60",
                "--out",
                &csv,
            ],
        )
        .unwrap();
        csv
    }

    #[test]
    fn pack_stat_scan_unpack_round_trip() {
        let dir = scratch("roundtrip");
        let csv = export_csv(&dir);
        let store = dir.join("a.mstore").display().to_string();

        let packed = run_cmd(
            "archive",
            &["pack", "--in", &csv, "--out", &store, "--group-rows", "96"],
        )
        .unwrap();
        assert!(packed.contains("packed 192 rows"), "{packed}");

        let stat = run_cmd("archive", &["stat", "--in", &store]).unwrap();
        assert!(stat.contains("rows       : 192 in 2 groups"), "{stat}");
        assert!(stat.contains("zone maps"), "{stat}");

        // Scan a sub-span: only one of the two groups intersects.
        let scanned = run_cmd(
            "archive",
            &[
                "scan",
                "--in",
                &store,
                "--from",
                "2015-03-01",
                "--to",
                "2015-03-01 02:00",
                "--stats",
            ],
        )
        .unwrap();
        assert!(
            scanned.contains("scan: 96 rows from 1/2 groups"),
            "{scanned}"
        );

        let back = dir.join("back.csv").display().to_string();
        run_cmd("archive", &["unpack", "--in", &store, "--out", &back]).unwrap();
        assert_eq!(
            std::fs::read_to_string(&csv).unwrap(),
            std::fs::read_to_string(&back).unwrap(),
            "unpack must be byte-identical to the packed CSV"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn export_from_store_matches_simulation_bytes() {
        let dir = scratch("export-parity");
        let csv = export_csv(&dir);
        let store = dir.join("a.mstore").display().to_string();
        run_cmd("archive", &["pack", "--in", &csv, "--out", &store]).unwrap();

        let span = ["--from", "2015-03-01 01:00", "--to", "2015-03-01 03:00"];
        for format in ["text", "json"] {
            let mut sim_args = vec!["--step-min", "60", "--format", format];
            sim_args.extend_from_slice(&span);
            let simulated = run_cmd("export", &sim_args).unwrap();
            let mut store_args = vec!["--store", &store, "--format", format];
            store_args.extend_from_slice(&span);
            let stored = run_cmd("export", &store_args).unwrap();
            assert_eq!(simulated, stored, "{format} export must be byte-identical");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_action_and_channel_are_usage_errors() {
        let e = run_cmd("archive", &["frob"]).unwrap_err();
        assert_eq!(e.exit_code(), 2);
        assert!(e.to_string().contains("unknown archive action"));

        let map = ArgMap::parse(["--channels", "nope"].iter().map(ToString::to_string)).unwrap();
        let e = projection_flag(&map).unwrap_err();
        assert_eq!(e.exit_code(), 2);
    }

    #[test]
    fn corrupt_store_maps_to_exit_code_7() {
        let dir = scratch("corrupt");
        let bad = dir.join("bad.mstore");
        std::fs::write(&bad, b"MSTORE1\nnot really a store").unwrap();
        let e = run_cmd("archive", &["stat", "--in", &bad.display().to_string()]).unwrap_err();
        assert_eq!(e.exit_code(), 7, "{e}");
        assert!(e.to_string().contains("store corrupt"), "{e}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn emitter_writes_header_for_empty_text_output() {
        let emitter = RowEmitter::new(Vec::new(), OutputFormat::Text);
        let (buf, rows) = emitter.finish().unwrap();
        assert_eq!(rows, 0);
        assert_eq!(
            String::from_utf8(buf).unwrap(),
            format!("{TELEMETRY_HEADER}\n")
        );

        let emitter = RowEmitter::new(Vec::new(), OutputFormat::Json);
        let (buf, _) = emitter.finish().unwrap();
        assert!(buf.is_empty(), "json output has no header");
    }
}
