//! The `mira-ops` subcommands.

use std::fs::File;
use std::io::{BufRead, BufWriter, Write};

use mira_core::{
    analysis, archive, CmfPredictor, DatasetBuilder, Duration, FeatureConfig, FullSpan, ObsMode,
    PredictorConfig, RackId, SimConfig, Simulation, TelemetryProvider,
};
use mira_serve::{serve_stdio, serve_tcp, ServeState};

use mira_units::convert;

use crate::archive_cmd::{archive_cmd, scan_into_emitter, RowEmitter};
use crate::args::{err, parse_datetime, ArgMap, CliError, OutputFormat};

/// Top-level usage text.
pub const USAGE: &str = "\
mira-ops — liquid-cooled large-scale system simulator (HPCA'21 reproduction)

USAGE: mira-ops <command> [flags]

COMMANDS:
  failures                         CMF timeline and per-rack distribution
  sample   --rack \"(1, 8)\" --time \"2016-07-04 12:00\" [--store FILE]
                                   one coolant-monitor record, simulated
                                   or looked up in a telemetry archive
  export   --from 2015-01-01 --to 2015-01-08 [--step-min 5] [--out telemetry.csv]
           [--format json|text] [--store FILE]
                                   telemetry sweep as CSV (text, the default)
                                   or newline-delimited JSON; with --store,
                                   the span is scanned from the archive
                                   (reading only intersecting blocks)
                                   instead of re-simulated
  archive  <pack|unpack|stat|scan> columnar telemetry archive tools
                                   (`mira-ops archive` for details)
  ras      [--out ras.csv] [--raw] counted (or raw) RAS events as CSV
  predict  [--lead-hours 3] [--events 150] [--epochs 30]
                                   train the CMF predictor, print metrics
  report   [--fast] [--threads N] [--metrics json|text] [--store FILE]
                                   regenerate every figure (paper vs measured);
                                   --metrics appends the observability report
                                   (deterministic snapshot + wall timings);
                                   --store appends the archive's shape and
                                   compression summary
  serve    [--step-min 5] [--tcp HOST:PORT] [--format json|text] [--store FILE]
                                   long-running analytics service: ingest
                                   telemetry incrementally and answer
                                   newline-delimited JSON queries (status,
                                   metrics, figure, report, predict, ingest,
                                   replay, shutdown) on stdio and optionally
                                   TCP; --store attaches a telemetry archive
                                   so replay queries answer from disk;
                                   --format picks the shutdown banner style

GLOBAL FLAGS:
  --seed <u64>                     world seed (default 2014)

  --threads 0 (the default) picks automatically: the MIRA_SWEEP_THREADS
  environment variable if set, otherwise all available cores. Any
  thread count produces bit-identical results.
";

fn simulation(args: &ArgMap) -> Result<Simulation, CliError> {
    let seed = args.get_parsed("seed", 2014u64)?;
    Ok(Simulation::new(SimConfig::with_seed(seed)))
}

/// `mira-ops failures`
pub fn failures(args: &ArgMap, out: &mut dyn Write) -> Result<(), CliError> {
    let sim = simulation(args)?;
    let fig10 = analysis::fig10_cmf_timeline(&sim);
    writeln!(out, "coolant monitor failures by year:").map_err(io_err)?;
    for (year, count) in &fig10.by_year {
        writeln!(
            out,
            "  {year}: {count:>3}  {}",
            "#".repeat(convert::usize_from_u32(*count) / 4)
        )
        .map_err(io_err)?;
    }
    writeln!(
        out,
        "total {} | 2016 share {:.0}% | longest quiet gap {:.0} days",
        fig10.total,
        fig10.share_2016 * 100.0,
        fig10.longest_gap_days
    )
    .map_err(io_err)?;

    let counts = sim.ras_log().cmf_by_rack();
    writeln!(out, "\nper-rack counts (rows 0-2, columns 0-F):").map_err(io_err)?;
    for row in 0..3u8 {
        let cells: Vec<String> = (0..16u8)
            .map(|c| format!("{:>2}", counts[RackId::new(row, c).index()]))
            .collect();
        writeln!(out, "  row {row}: {}", cells.join(" ")).map_err(io_err)?;
    }
    Ok(())
}

/// `mira-ops sample --rack "(1, 8)" --time "2016-07-04 12:00" [--store FILE]`
///
/// Both sources render through the archived record form (3-decimal
/// quantization), so a sample served from a packed store is
/// byte-identical to the simulated one.
pub fn sample(args: &ArgMap, out: &mut dyn Write) -> Result<(), CliError> {
    let rack = RackId::parse(args.require("rack")?).map_err(|e| err(format!("bad --rack: {e}")))?;
    let t = parse_datetime(args.require("time")?)?;
    let rec = match args.get("store") {
        Some(path) => {
            let mut ar = mira_store::open_archive(std::path::Path::new(path))?;
            let mut found: Option<mira_core::TelemetryRecord> = None;
            ar.scan_span(
                t,
                t + Duration::from_seconds(1),
                mira_core::Projection::all(),
                &mut |r| {
                    if r.rack == rack && found.is_none() {
                        found = Some(*r);
                    }
                },
            )?;
            found.ok_or_else(|| err(format!("store has no sample for rack {rack} at {t}")))?
        }
        None => {
            let sim = simulation(args)?;
            mira_core::TelemetryRecord::from_sample(&TelemetryProvider::sample(
                sim.telemetry(),
                rack,
                t,
            ))
        }
    };
    let s = rec.to_sample();
    writeln!(out, "coolant monitor sample, rack {rack} at {t}:").map_err(io_err)?;
    writeln!(out, "  dc temperature : {}", s.dc_temperature).map_err(io_err)?;
    writeln!(out, "  dc humidity    : {}", s.dc_humidity).map_err(io_err)?;
    writeln!(out, "  coolant flow   : {}", s.flow).map_err(io_err)?;
    writeln!(out, "  inlet coolant  : {}", s.inlet).map_err(io_err)?;
    writeln!(out, "  outlet coolant : {}", s.outlet).map_err(io_err)?;
    writeln!(out, "  power          : {}", s.power).map_err(io_err)?;
    writeln!(out, "  condensation margin: {}", s.condensation_margin()).map_err(io_err)?;
    Ok(())
}

/// `mira-ops export --from ... --to ... [--step-min 5] [--out file]
/// [--format json|text] [--store FILE]`
///
/// Without `--store` the span is simulated; with it, the rows are
/// scanned from a telemetry archive (columnar or CSV), reading only
/// the row groups that intersect the span. Both paths render through
/// the same [`RowEmitter`], so their output is byte-identical.
pub fn export(args: &ArgMap, out: &mut dyn Write) -> Result<(), CliError> {
    let from = parse_datetime(args.require("from")?)?;
    let to = parse_datetime(args.require("to")?)?;
    if from >= to {
        return Err(err("--from must precede --to"));
    }
    let step_min: i64 = args.get_parsed("step-min", 5i64)?;
    if step_min <= 0 {
        return Err(err("--step-min must be positive"));
    }
    let step = Duration::from_minutes(step_min);
    let format = OutputFormat::from_flag(args, "format")?.unwrap_or(OutputFormat::Text);

    let sink: Box<dyn Write> = match args.get("out") {
        Some(path) => Box::new(BufWriter::new(
            File::create(path).map_err(|e| create_err(path, e))?,
        )),
        None => Box::new(&mut *out),
    };
    let mut emitter = RowEmitter::new(sink, format);
    match args.get("store") {
        Some(path) => {
            let mut ar = mira_store::open_archive(std::path::Path::new(path))?;
            scan_into_emitter(
                ar.as_mut(),
                from,
                to,
                mira_core::Projection::all(),
                &mut emitter,
            )?;
        }
        None => {
            let sim = simulation(args)?;
            archive::sweep_records(sim.telemetry(), from, to, step, |rec| emitter.row(rec))
                .map_err(io_err)?;
        }
    }
    let (sink, rows) = emitter.finish().map_err(io_err)?;
    drop(sink);
    if args.get("out").is_some() {
        writeln!(out, "wrote {rows} telemetry rows").map_err(io_err)?;
    }
    Ok(())
}

/// `mira-ops ras [--out file] [--raw]`
pub fn ras(args: &ArgMap, out: &mut dyn Write) -> Result<(), CliError> {
    let sim = simulation(args)?;
    let events: Vec<_> = if args.switch("raw") {
        sim.ras_log().raw().to_vec()
    } else {
        sim.ras_log().counted().to_vec()
    };
    let rows = match args.get("out") {
        Some(path) => {
            let file = File::create(path).map_err(|e| create_err(path, e))?;
            archive::write_ras_csv(BufWriter::new(file), events.iter())?
        }
        None => archive::write_ras_csv(&mut *out, events.iter())?,
    };
    if args.get("out").is_some() {
        writeln!(out, "wrote {rows} RAS events").map_err(io_err)?;
    }
    Ok(())
}

/// `mira-ops predict [--lead-hours 3] [--events 150] [--epochs 30]`
pub fn predict(args: &ArgMap, out: &mut dyn Write) -> Result<(), CliError> {
    let sim = simulation(args)?;
    let events: usize = args.get_parsed("events", 150usize)?;
    let epochs: usize = args.get_parsed("epochs", 30usize)?;
    let lead_hours: i64 = args.get_parsed("lead-hours", 3i64)?;

    let mut cmfs = sim.cmf_ground_truth();
    cmfs.truncate(events.max(10));
    writeln!(
        out,
        "training on {} failures, {epochs} epochs...",
        cmfs.len()
    )
    .map_err(io_err)?;
    let builder = DatasetBuilder::new(FeatureConfig::mira(), cmfs, sim.config().span());
    let config = PredictorConfig {
        epochs,
        ..PredictorConfig::default()
    };
    let (predictor, test) = CmfPredictor::train(sim.telemetry(), &builder, &config);
    writeln!(out, "held-out test: {test}").map_err(io_err)?;
    let metrics =
        predictor.evaluate_at(sim.telemetry(), &builder, Duration::from_hours(lead_hours));
    writeln!(out, "at {lead_hours} h lead: {metrics}").map_err(io_err)?;
    Ok(())
}

/// `mira-ops report [--fast] [--threads N] [--metrics json|text]`
pub fn report(args: &ArgMap, out: &mut dyn Write) -> Result<(), CliError> {
    let sim = simulation(args)?;
    let step = if args.switch("fast") {
        Duration::from_hours(6)
    } else {
        Duration::from_hours(1)
    };
    let threads: usize = args.get_parsed("threads", 0usize)?;
    let metrics = OutputFormat::from_flag(args, "metrics")?;
    writeln!(out, "sweeping six years at {} h steps...", step.as_hours()).map_err(io_err)?;
    let mode = if metrics.is_some() {
        ObsMode::On
    } else {
        ObsMode::Off
    };
    let observed = sim.summarize_observed(FullSpan, step, threads, mode)?;
    let summary = observed.summary;

    let fig2 = analysis::fig2_yearly_trends(&summary);
    writeln!(
        out,
        "[Fig 2] power {:.2} -> {:.2} MW | utilization {:.1} -> {:.1} %",
        fig2.power_by_year[0].mean,
        fig2.power_by_year[5].mean,
        fig2.utilization_by_year[0].mean,
        fig2.utilization_by_year[5].mean
    )
    .map_err(io_err)?;
    let fig3 = analysis::fig3_coolant_trends(&summary);
    writeln!(
        out,
        "[Fig 3] flow {:.0} -> {:.0} GPM | sigmas {:.1} GPM / {:.2} F / {:.2} F",
        fig3.flow_before_theta,
        fig3.flow_after_theta,
        fig3.flow_stddev,
        fig3.inlet_stddev,
        fig3.outlet_stddev
    )
    .map_err(io_err)?;
    let fig6 = analysis::fig6_rack_power_util(&summary);
    writeln!(
        out,
        "[Fig 6] leaders {} / {} | spread {:.1}% | corr {:.2}",
        fig6.power_leader,
        fig6.utilization_leader,
        fig6.power_spread * 100.0,
        fig6.power_utilization_correlation
    )
    .map_err(io_err)?;
    let fig10 = analysis::fig10_cmf_timeline(&sim);
    writeln!(
        out,
        "[Fig 10] {} CMFs | 2016 share {:.0}% | gap {:.0} d",
        fig10.total,
        fig10.share_2016 * 100.0,
        fig10.longest_gap_days
    )
    .map_err(io_err)?;
    writeln!(out, "(run the reproduce_all example for the full report)").map_err(io_err)?;
    if let Some(path) = args.get("store") {
        let mut ar = mira_store::open_archive(std::path::Path::new(path))?;
        let st = ar.stat()?;
        match st.time_range {
            Some((lo, hi)) => writeln!(
                out,
                "[Archive] {} rows in {} groups | {} RAS events | {:.2}x vs csv | {lo} .. {hi}",
                st.rows,
                st.groups,
                st.ras_events,
                st.compression_ratio()
            )
            .map_err(io_err)?,
            None => writeln!(out, "[Archive] empty ({} bytes)", st.file_bytes).map_err(io_err)?,
        }
    }
    match metrics {
        Some(OutputFormat::Json) => {
            writeln!(out, "{}", observed.report.to_json()).map_err(io_err)?;
        }
        Some(OutputFormat::Text) => {
            write!(out, "{}", observed.report.to_text()).map_err(io_err)?;
        }
        None => {}
    }
    Ok(())
}

/// `mira-ops serve [--step-min 5] [--tcp HOST:PORT] [--format json|text]`
pub fn serve(args: &ArgMap, out: &mut dyn Write) -> Result<(), CliError> {
    let stdin = std::io::stdin();
    serve_with_input(args, stdin.lock(), out)
}

/// [`serve`] with an injectable request stream, so scripted sessions
/// (tests, the CI smoke gate) can drive it without a real stdin.
pub fn serve_with_input<R: BufRead>(
    args: &ArgMap,
    input: R,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let sim = simulation(args)?;
    let step_min: i64 = args.get_parsed("step-min", 5i64)?;
    if step_min <= 0 {
        return Err(err("--step-min must be positive"));
    }
    let banner = OutputFormat::from_flag(args, "format")?.unwrap_or(OutputFormat::Text);
    let mut state = ServeState::new(sim, Duration::from_minutes(step_min))?;
    if let Some(path) = args.get("store") {
        state = state.with_store(mira_store::open_archive(std::path::Path::new(path))?);
    }

    std::thread::scope(|scope| -> Result<(), CliError> {
        let tcp_worker = match args.get("tcp") {
            Some(addr) => {
                let listener = std::net::TcpListener::bind(addr).map_err(|e| CliError::Io {
                    context: format!("cannot bind {addr}"),
                    source: e,
                })?;
                let state = &state;
                Some(scope.spawn(move || serve_tcp(state, &listener)))
            }
            None => None,
        };
        // The stdio loop runs on this thread; EOF or a shutdown request
        // flips the shared flag and the TCP acceptor drains out.
        serve_stdio(&state, input, &mut *out).map_err(io_err)?;
        if let Some(worker) = tcp_worker {
            worker
                .join()
                .map_err(|_| err("tcp worker panicked"))?
                .map_err(io_err)?;
        }
        Ok(())
    })?;

    // The shutdown banner: deterministic totals (a scripted session
    // replays byte-identically), formatted per --format.
    let queries = state.queries_served();
    let steps = state.ingested_steps();
    match banner {
        OutputFormat::Json => writeln!(
            out,
            "{{\"served\":true,\"queries_served\":{queries},\"steps_ingested\":{steps}}}"
        )
        .map_err(io_err)?,
        OutputFormat::Text => writeln!(
            out,
            "serve: answered {queries} queries, ingested {steps} steps"
        )
        .map_err(io_err)?,
    }
    Ok(())
}

/// Dispatches a subcommand.
pub fn run(command: &str, args: &ArgMap, out: &mut dyn Write) -> Result<(), CliError> {
    match command {
        "failures" => failures(args, out),
        "sample" => sample(args, out),
        "export" => export(args, out),
        "archive" => archive_cmd(args, out),
        "ras" => ras(args, out),
        "predict" => predict(args, out),
        "report" => report(args, out),
        "serve" => serve(args, out),
        other => Err(err(format!("unknown command: {other}\n\n{USAGE}"))),
    }
}

pub(crate) fn io_err(e: std::io::Error) -> CliError {
    CliError::Io {
        context: "output error".to_string(),
        source: e,
    }
}

pub(crate) fn create_err(path: &str, e: std::io::Error) -> CliError {
    CliError::Io {
        context: format!("cannot create {path}"),
        source: e,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_cmd(command: &str, args: &[&str]) -> Result<String, CliError> {
        let map = ArgMap::parse(args.iter().map(ToString::to_string))?;
        let mut out = Vec::new();
        run(command, &map, &mut out)?;
        Ok(String::from_utf8(out).expect("utf8"))
    }

    #[test]
    fn failures_prints_361() {
        let text = run_cmd("failures", &[]).unwrap();
        assert!(text.contains("total 361"));
        assert!(text.contains("row 0:"));
    }

    #[test]
    fn sample_prints_channels() {
        let text = run_cmd(
            "sample",
            &["--rack", "(1, 8)", "--time", "2016-07-04 12:00"],
        )
        .unwrap();
        assert!(text.contains("inlet coolant"));
        assert!(text.contains("GPM"));
    }

    #[test]
    fn sample_requires_rack() {
        let e = run_cmd("sample", &["--time", "2016-07-04"]).unwrap_err();
        assert!(e.to_string().contains("--rack"));
    }

    #[test]
    fn export_streams_csv_to_stdout() {
        let text = run_cmd(
            "export",
            &[
                "--from",
                "2015-03-01",
                "--to",
                "2015-03-01 01:00",
                "--step-min",
                "30",
            ],
        )
        .unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], archive::TELEMETRY_HEADER);
        assert_eq!(lines.len(), 1 + 2 * 48);
    }

    #[test]
    fn export_validates_span() {
        let e = run_cmd("export", &["--from", "2015-03-02", "--to", "2015-03-01"]).unwrap_err();
        assert!(e.to_string().contains("precede"));
    }

    #[test]
    fn ras_emits_header() {
        let text = run_cmd("ras", &[]).unwrap();
        assert!(text.starts_with(archive::RAS_HEADER));
        assert!(text.lines().count() > 361);
    }

    #[test]
    fn unknown_command_shows_usage() {
        let e = run_cmd("frobnicate", &[]).unwrap_err();
        assert!(e.to_string().contains("USAGE"));
    }

    #[test]
    fn report_rejects_unknown_metrics_format() {
        // Validated before the (expensive) sweep starts.
        let e = run_cmd("report", &["--metrics", "xml"]).unwrap_err();
        assert!(e.to_string().contains("json or text"));
        assert_eq!(e.exit_code(), 2);
    }

    #[test]
    fn export_format_json_emits_ndjson() {
        let text = run_cmd(
            "export",
            &[
                "--from",
                "2015-03-01",
                "--to",
                "2015-03-01 01:00",
                "--step-min",
                "30",
                "--format",
                "json",
            ],
        )
        .unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // Same row count as the CSV export, but no header line and
        // every line is a standalone JSON object.
        assert_eq!(lines.len(), 2 * 48);
        for line in &lines {
            let row = mira_serve::Json::parse(line).expect("valid json row");
            assert!(row.get("time").is_some());
            assert!(row.get("power_kw").is_some());
        }
    }

    #[test]
    fn export_rejects_unknown_format() {
        let e = run_cmd(
            "export",
            &[
                "--from",
                "2015-03-01",
                "--to",
                "2015-03-02",
                "--format",
                "csv",
            ],
        )
        .unwrap_err();
        assert!(e.to_string().contains("json or text"));
        assert_eq!(e.exit_code(), 2);
    }

    fn run_serve(extra: &[&str], script: &str) -> Result<String, CliError> {
        let mut argv = vec!["--step-min", "360"];
        argv.extend_from_slice(extra);
        let map = ArgMap::parse(argv.iter().map(ToString::to_string))?;
        let mut out = Vec::new();
        serve_with_input(&map, script.as_bytes(), &mut out)?;
        Ok(String::from_utf8(out).expect("utf8"))
    }

    #[test]
    fn serve_scripted_session_replies_and_banners() {
        let script = "{\"cmd\":\"ingest\",\"steps\":8,\"id\":1}\n\
                      {\"cmd\":\"status\",\"id\":2}\n\
                      {\"cmd\":\"shutdown\",\"id\":3}\n";
        let text = run_serve(&[], script).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "{text}");
        assert!(lines[0].contains("\"ok\":true") && lines[0].contains("\"ingested\":8"));
        assert!(lines[1].contains("\"steps_ingested\":8"));
        assert!(lines[2].contains("\"shutting_down\":true"));
        assert_eq!(lines[3], "serve: answered 3 queries, ingested 8 steps");
    }

    #[test]
    fn serve_json_banner_and_determinism() {
        let script = "{\"cmd\":\"ingest\",\"steps\":4}\n{\"cmd\":\"metrics\"}\n";
        let first = run_serve(&["--format", "json"], script).unwrap();
        let second = run_serve(&["--format", "json"], script).unwrap();
        // EOF (no explicit shutdown) also lands the banner, and the
        // whole scripted transcript is byte-identical across runs.
        assert_eq!(first, second);
        assert!(first
            .lines()
            .last()
            .is_some_and(|l| l == "{\"served\":true,\"queries_served\":2,\"steps_ingested\":4}"));
    }

    #[test]
    fn serve_replay_answers_from_an_attached_store() {
        let dir = std::env::temp_dir().join(format!("mira-serve-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let csv = dir.join("tele.csv").display().to_string();
        run_cmd(
            "export",
            &[
                "--from",
                "2015-03-01",
                "--to",
                "2015-03-01 02:00",
                "--step-min",
                "60",
                "--out",
                &csv,
            ],
        )
        .unwrap();
        let store = dir.join("tele.mstore").display().to_string();
        run_cmd("archive", &["pack", "--in", &csv, "--out", &store]).unwrap();

        let script = "{\"cmd\":\"replay\",\"limit\":2,\"id\":1}\n";
        let text = run_serve(&["--store", &store], script).unwrap();
        let first = text.lines().next().unwrap_or_default();
        assert!(first.contains("\"ok\":true"), "{first}");
        assert!(first.contains("\"returned\":2"), "{first}");
        assert!(first.contains("\"rows_scanned\":96"), "{first}");
        assert!(first.contains("\"power_kw\":"), "{first}");

        // Without --store the same query is a usage error.
        let text = run_serve(&[], script).unwrap();
        let first = text.lines().next().unwrap_or_default();
        assert!(first.contains("no archive attached"), "{first}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_rejects_nonpositive_step() {
        let map = ArgMap::parse(["--step-min", "0"].iter().map(ToString::to_string)).unwrap();
        let mut out = Vec::new();
        let e = serve_with_input(&map, &b""[..], &mut out).unwrap_err();
        assert!(e.to_string().contains("positive"));
        assert_eq!(e.exit_code(), 2);
    }
}
