//! The `mira-ops` binary.

use std::process::ExitCode;

use mira_ops_cli::{ArgMap, CliError};

fn main() -> ExitCode {
    match real_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

fn real_main() -> Result<(), CliError> {
    let mut argv = std::env::args().skip(1);
    let Some(command) = argv.next() else {
        println!("{}", mira_ops_cli::commands::USAGE);
        return Ok(());
    };
    if command == "--help" || command == "help" || command == "-h" {
        println!("{}", mira_ops_cli::commands::USAGE);
        return Ok(());
    }
    let args = ArgMap::parse(argv)?;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    mira_ops_cli::commands::run(&command, &args, &mut out)
}
