//! Per-rack usage structure: who runs what, where.
//!
//! Fig. 6 of the paper: row 0 (the `prod-long` queue) has the highest
//! utilization *and* power; rack `(0, A)` leads utilization while
//! `(0, D)` leads power; columns 2, 6, A and B host users who habitually
//! target specific racks; rack `(2, D)` has the lowest utilization yet
//! sits 7 % above the power minimum — because power tracks the CPU
//! intensity of the jobs on a rack, not just how many nodes are busy.
//! Across racks the paper measured only a 0.45 power–utilization
//! correlation.

use serde::{Deserialize, Serialize};

use mira_facility::RackId;
use mira_timeseries::SimTime;
use mira_units::convert;
use mira_weather::{FractalBank, ValueNoise};

/// Per-rack cursor bank for [`RackUsageProfile::placement_wobble_with`].
///
/// Each rack's wobble samples a distinct phase of the shared placement
/// noise, so each rack owns its own cursor lane of a [`FractalBank`]
/// (one contiguous buffer rather than 48 heap vectors); cached lattice
/// values are pure functions of `(seed, cell)` and the cursor path is
/// bit-identical to [`RackUsageProfile::placement_wobble`].
#[derive(Debug, Clone)]
pub struct WobbleCursor {
    bank: FractalBank,
}

/// Static per-rack usage profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RackFactors {
    /// Multiplier on system utilization for this rack.
    pub utilization_factor: f64,
    /// Multiplier on system CPU intensity for this rack (the job-mix
    /// effect that decorrelates power from utilization).
    pub intensity_factor: f64,
}

/// The spatial usage profile of the machine.
///
/// ```
/// use mira_facility::RackId;
/// use mira_workload::RackUsageProfile;
///
/// let profile = RackUsageProfile::mira(3);
/// let row0 = profile.factors(RackId::new(0, 5)).utilization_factor;
/// let row2 = profile.factors(RackId::new(2, 5)).utilization_factor;
/// assert!(row0 > row2, "prod-long keeps row 0 busier");
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RackUsageProfile {
    factors: Vec<RackFactors>,
    /// Per-rack temporal wobble in which jobs land where.
    placement_noise: ValueNoise,
}

/// Hotspot columns where users habitually submit to specific racks
/// (columns 2, 6, A, B in the paper).
pub const HOTSPOT_COLUMNS: [u8; 4] = [2, 6, 10, 11];

impl RackUsageProfile {
    /// Builds the Mira profile.
    #[must_use]
    pub fn mira(seed: u64) -> Self {
        let factors = RackId::all()
            .map(|rack| {
                // Row effect: prod-long on row 0 never underutilizes its
                // allocation.
                let mut util = match rack.row() {
                    0 => 1.025,
                    1 => 0.985,
                    _ => 0.975,
                };
                if HOTSPOT_COLUMNS.contains(&rack.column()) {
                    util += 0.022;
                }
                // Named anchors from Fig. 6.
                if rack == RackId::new(0, 10) {
                    util += 0.030; // (0, A): utilization leader
                }
                if rack == RackId::new(2, 13) {
                    util -= 0.075; // (2, D): utilization floor
                }
                // Small fixed per-rack scatter (user affinity).
                let h = (rack.index() as u64 + 3).wrapping_mul(0x8CB9_2BA7_2F3D_8DD7);
                let u = convert::f64_from_u64((h >> 20) & 0xFFFF) / 65_535.0 - 0.5;
                util += u * 0.012;

                // Intensity: hash-distributed job mix, wide enough to pull
                // the power-utilization correlation down to ≈0.45. Row 0's
                // long capability jobs run a touch denser.
                let h2 = (rack.index() as u64 + 11).wrapping_mul(0xB529_7A4D_382E_5E23);
                let v = convert::f64_from_u64((h2 >> 18) & 0xFFFF) / 65_535.0; // [0, 1]
                let mut intensity = 0.90 + 0.22 * v;
                if rack.row() == 0 {
                    intensity += 0.015;
                }
                if rack == RackId::new(0, 13) {
                    intensity = 1.155; // (0, D): power leader via dense jobs
                }
                if rack == RackId::new(2, 13) {
                    intensity = 1.102; // (2, D): few nodes, hot jobs
                }

                RackFactors {
                    utilization_factor: util,
                    intensity_factor: intensity,
                }
            })
            .collect();
        Self {
            factors,
            placement_noise: ValueNoise::new(seed ^ 0x9ACE_0000, 2.0 * 86_400.0),
        }
    }

    /// The static factors for a rack.
    #[must_use]
    pub fn factors(&self, rack: RackId) -> RackFactors {
        self.factors[rack.index()]
    }

    /// The static factors for every rack, in rack-index order.
    pub(crate) fn factors_slice(&self) -> &[RackFactors] {
        &self.factors
    }

    /// Temporal placement wobble for a rack at `t`, a multiplier near 1:
    /// which jobs happen to sit on the rack right now.
    #[must_use]
    pub fn placement_wobble(&self, rack: RackId, t: SimTime) -> f64 {
        let phase = convert::f64_from_i64(t.epoch_seconds())
            + convert::f64_from_usize(rack.index()) * 4.321e6;
        1.0 + self.placement_noise.fractal(phase, 2) * 0.045
    }

    /// Builds the per-rack cursor bank for
    /// [`Self::placement_wobble_with`].
    #[must_use]
    pub fn wobble_cursor(&self) -> WobbleCursor {
        WobbleCursor {
            bank: self.placement_noise.fractal_bank(2, self.factors.len()),
        }
    }

    /// [`Self::placement_wobble`] through the rack's noise cursor;
    /// bit-identical to the cold path.
    #[must_use]
    // Dimensionless multiplier, same contract as `placement_wobble`. mira-lint: allow(raw-f64-in-public-api)
    pub fn placement_wobble_with(
        &self,
        rack: RackId,
        t: SimTime,
        cursor: &mut WobbleCursor,
    ) -> f64 {
        let phase = convert::f64_from_i64(t.epoch_seconds())
            + convert::f64_from_usize(rack.index()) * 4.321e6;
        1.0 + self
            .placement_noise
            .fractal_with_lane(phase, &mut cursor.bank, rack.index())
            * 0.045
    }

    /// [`Self::placement_wobble`] for every rack at once: lane `l` of
    /// `out` receives rack `l`'s wobble at `t`, bit-identical to the
    /// scalar path (the per-rack phase offset `l * 4.321e6` is exactly
    /// the stride the scalar path adds).
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the profile's rack count.
    // Dimensionless multipliers, same contract as `placement_wobble`.
    // mira-lint: allow(raw-f64-in-public-api)
    pub fn placement_wobble_lanes_into(
        &self,
        t: SimTime,
        cursor: &mut WobbleCursor,
        out: &mut [f64],
    ) {
        let base = convert::f64_from_i64(t.epoch_seconds());
        cursor.bank.fractal_lanes_into(base, 4.321e6, out);
        for v in out.iter_mut() {
            *v = 1.0 + *v * 0.045;
        }
    }

    /// The rack with the highest utilization factor.
    #[must_use]
    pub fn utilization_leader(&self) -> RackId {
        RackId::all()
            .max_by(|a, b| {
                self.factors(*a)
                    .utilization_factor
                    .total_cmp(&self.factors(*b).utilization_factor)
            })
            // RackId::all() always yields 48 racks.
            .unwrap_or_else(|| RackId::from_index(0))
    }

    /// The rack with the highest expected power (`util × intensity`).
    #[must_use]
    pub fn power_leader(&self) -> RackId {
        RackId::all()
            .max_by(|a, b| {
                let fa = self.factors(*a);
                let fb = self.factors(*b);
                (fa.utilization_factor * fa.intensity_factor)
                    .total_cmp(&(fb.utilization_factor * fb.intensity_factor))
            })
            // RackId::all() always yields 48 racks.
            .unwrap_or_else(|| RackId::from_index(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mira_timeseries::{Date, Duration};

    #[test]
    fn anchors_match_fig6() {
        let p = RackUsageProfile::mira(1);
        assert_eq!(
            p.utilization_leader(),
            RackId::new(0, 10),
            "(0, A) leads util"
        );
        assert_eq!(p.power_leader(), RackId::new(0, 13), "(0, D) leads power");
        // (2, D) is the utilization floor.
        let floor = RackId::all()
            .min_by(|a, b| {
                p.factors(*a)
                    .utilization_factor
                    .total_cmp(&p.factors(*b).utilization_factor)
            })
            .unwrap();
        assert_eq!(floor, RackId::new(2, 13));
    }

    #[test]
    fn row0_is_busiest_on_average() {
        let p = RackUsageProfile::mira(1);
        let row_mean = |row: u8| {
            (0..16)
                .map(|c| p.factors(RackId::new(row, c)).utilization_factor)
                .sum::<f64>()
                / 16.0
        };
        assert!(row_mean(0) > row_mean(1));
        assert!(row_mean(0) > row_mean(2));
    }

    #[test]
    fn hotspot_columns_get_boost() {
        let p = RackUsageProfile::mira(1);
        let hot = p.factors(RackId::new(1, 2)).utilization_factor;
        let cold = p.factors(RackId::new(1, 3)).utilization_factor;
        assert!(hot > cold);
    }

    #[test]
    fn two_d_power_sits_above_floor_despite_low_util() {
        let p = RackUsageProfile::mira(1);
        let two_d = p.factors(RackId::new(2, 13));
        let x_two_d = two_d.utilization_factor * two_d.intensity_factor;
        let min_x = RackId::all()
            .map(|r| {
                let f = p.factors(r);
                f.utilization_factor * f.intensity_factor
            })
            .fold(f64::INFINITY, f64::min);
        let uplift = (x_two_d - min_x) / min_x;
        assert!(
            (0.02..0.15).contains(&uplift),
            "(2, D) power uplift over floor: {uplift}"
        );
    }

    #[test]
    fn wobble_is_small_and_time_varying() {
        let p = RackUsageProfile::mira(1);
        let r = RackId::new(1, 1);
        let t0 = SimTime::from_date(Date::new(2016, 4, 1));
        let w0 = p.placement_wobble(r, t0);
        let w1 = p.placement_wobble(r, t0 + Duration::from_days(3));
        assert!((0.9..1.1).contains(&w0));
        assert_ne!(w0, w1);
    }

    #[test]
    fn factors_are_positive_and_bounded() {
        let p = RackUsageProfile::mira(1);
        for r in RackId::all() {
            let f = p.factors(r);
            assert!((0.85..1.15).contains(&f.utilization_factor), "{r}");
            assert!((0.85..1.20).contains(&f.intensity_factor), "{r}");
        }
    }
}
