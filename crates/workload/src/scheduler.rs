//! A job-level FCFS + EASY-backfill scheduler over the rack grid.
//!
//! The paper observes that "state-of-the-art back-filling job scheduling
//! strategies may not be able to fill all such holes" when the system
//! drains for a large capability job. This module is a real (if compact)
//! implementation of that scheduler class, usable for hole-filling
//! experiments: FCFS order, with EASY backfill — a waiting job may jump
//! the queue only if starting it now does not delay the reservation of
//! the queue's head job.
//!
//! Allocation is in midplane units (512 nodes): 96 midplanes across 48
//! racks, `prod-long` restricted to row 0's 32 midplanes, other queues to
//! rows 1–2.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use mira_facility::{Queue, RackId};
use mira_obs::{NoopSink, Sink};
use mira_timeseries::{Duration, SimTime};
use mira_units::convert;

use crate::job::Job;

/// Metric keys emitted by the `*_observed` scheduler entry points.
pub mod obs_keys {
    /// Jobs enqueued.
    pub const SUBMITTED: &str = "workload.submitted";
    /// Jobs started in FCFS order.
    pub const STARTED_FCFS: &str = "workload.started_fcfs";
    /// Jobs started by EASY backfill (hole-filling hits).
    pub const STARTED_BACKFILL: &str = "workload.started_backfill";
    /// Jobs completed.
    pub const COMPLETED: &str = "workload.completed";
    /// Jobs killed by rack drains.
    pub const DRAIN_KILLS: &str = "workload.drain_kills";
    /// Queue depth after each step.
    pub const QUEUE_DEPTH: &str = "workload.queue_depth";
    /// Queue-wait distribution of started jobs (hours).
    pub const WAIT_HOURS_DIST: &str = "workload.wait_hours.dist";
}

/// Queue-wait histogram bounds (hours).
const WAIT_HOURS_BOUNDS: &[f64] = &[1.0, 4.0, 12.0, 24.0, 72.0];

/// Midplanes per rack.
const MIDPLANES_PER_RACK: u32 = 2;

/// Total midplanes on the machine.
pub const TOTAL_MIDPLANES: u32 = MIDPLANES_PER_RACK * convert::u32_from_usize(RackId::COUNT);

/// A running job with its allocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunningJob {
    /// The job itself.
    pub job: Job,
    /// When it started.
    pub started: SimTime,
    /// When it will finish (start + walltime).
    pub ends: SimTime,
    /// Midplane slots held, as `(rack, midplane-within-rack)` pairs.
    pub allocation: Vec<(RackId, u8)>,
}

/// Counters describing scheduler behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedulerStats {
    /// Jobs started in FCFS order.
    pub started_fcfs: u64,
    /// Jobs started by backfill.
    pub started_backfill: u64,
    /// Jobs completed.
    pub completed: u64,
    /// Total queue wait accumulated by started jobs, in seconds.
    pub total_wait_seconds: i64,
}

impl SchedulerStats {
    /// Jobs started by either path.
    #[must_use]
    pub fn started(&self) -> u64 {
        self.started_fcfs + self.started_backfill
    }

    /// Mean queue wait of started jobs.
    #[must_use]
    pub fn mean_wait(&self) -> Duration {
        let n = self.started();
        if n == 0 {
            Duration::ZERO
        } else {
            Duration::from_seconds(self.total_wait_seconds / convert::i64_from_u64(n))
        }
    }
}

/// FCFS + EASY-backfill scheduler.
///
/// ```
/// use mira_timeseries::{Date, Duration, SimTime};
/// use mira_workload::{BackfillScheduler, JobGenerator};
///
/// let mut sched = BackfillScheduler::new();
/// let mut generator = JobGenerator::new(1);
/// let mut t = SimTime::from_date(Date::new(2016, 3, 1));
/// for _ in 0..48 {
///     for job in generator.submissions(t, Duration::from_hours(1)) {
///         sched.submit(job);
///     }
///     sched.step(t);
///     t += Duration::from_hours(1);
/// }
/// assert!(sched.utilization() > 0.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BackfillScheduler {
    /// `busy[rack][midplane]` — occupancy grid.
    busy: Vec<[bool; 2]>,
    queue: VecDeque<Job>,
    running: Vec<RunningJob>,
    stats: SchedulerStats,
    /// Racks administratively drained (failed or under maintenance).
    drained: Vec<bool>,
}

impl BackfillScheduler {
    /// Creates an empty scheduler over the full machine.
    #[must_use]
    pub fn new() -> Self {
        Self {
            busy: vec![[false; 2]; RackId::COUNT],
            queue: VecDeque::new(),
            running: Vec::new(),
            stats: SchedulerStats::default(),
            drained: vec![false; RackId::COUNT],
        }
    }

    /// Enqueues a job.
    pub fn submit(&mut self, job: Job) {
        self.submit_observed(job, &mut NoopSink);
    }

    /// [`BackfillScheduler::submit`] with an instrumentation sink.
    pub fn submit_observed<S: Sink>(&mut self, job: Job, sink: &mut S) {
        sink.add(obs_keys::SUBMITTED, 1);
        self.queue.push_back(job);
    }

    /// Number of queued jobs.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Currently running jobs.
    #[must_use]
    pub fn running(&self) -> &[RunningJob] {
        &self.running
    }

    /// Scheduler counters.
    #[must_use]
    pub fn stats(&self) -> SchedulerStats {
        self.stats
    }

    /// Marks a rack drained (its midplanes become unallocatable and any
    /// job touching it is killed). Returns the number of jobs killed.
    pub fn drain_rack(&mut self, rack: RackId, now: SimTime) -> usize {
        self.drain_rack_observed(rack, now, &mut NoopSink)
    }

    /// [`BackfillScheduler::drain_rack`] with an instrumentation sink.
    pub fn drain_rack_observed<S: Sink>(
        &mut self,
        rack: RackId,
        now: SimTime,
        sink: &mut S,
    ) -> usize {
        self.drained[rack.index()] = true;
        let (killed, keep): (Vec<RunningJob>, Vec<RunningJob>) = self
            .running
            .drain(..)
            .partition(|r| r.allocation.iter().any(|(rk, _)| *rk == rack));
        for job in &killed {
            for &(rk, mp) in &job.allocation {
                self.busy[rk.index()][usize::from(mp)] = false;
            }
        }
        self.running = keep;
        let _ = now;
        sink.add(obs_keys::DRAIN_KILLS, convert::u64_from_usize(killed.len()));
        killed.len()
    }

    /// Returns a drained rack to service.
    pub fn restore_rack(&mut self, rack: RackId) {
        self.drained[rack.index()] = false;
    }

    /// Fraction of the machine's midplanes currently running jobs.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        let busy: u32 = self
            .busy
            .iter()
            .map(|r| convert::u32_from_usize(r.iter().filter(|&&b| b).count()))
            .sum();
        f64::from(busy) / f64::from(TOTAL_MIDPLANES)
    }

    /// Racks a queue may allocate on.
    fn allowed(queue: Queue, rack: RackId) -> bool {
        match queue {
            Queue::ProdLong => rack.row() == 0,
            Queue::ProdShort | Queue::Backfill => rack.row() != 0,
        }
    }

    /// Free midplane slots available to `queue` right now.
    // mp < MIDPLANES_PER_RACK matches the busy table's row width.
    // mira-lint: allow(panic-reachability)
    fn free_slots(&self, queue: Queue) -> Vec<(RackId, u8)> {
        let mut out = Vec::new();
        for rack in RackId::all() {
            if self.drained[rack.index()] || !Self::allowed(queue, rack) {
                continue;
            }
            for mp in 0..MIDPLANES_PER_RACK as u8 {
                if !self.busy[rack.index()][usize::from(mp)] {
                    out.push((rack, mp));
                }
            }
        }
        out
    }

    // Allocation slots come from free_slots, built against the same
    // busy table. mira-lint: allow(panic-reachability)
    fn start<S: Sink>(&mut self, job: Job, now: SimTime, backfilled: bool, sink: &mut S) {
        let slots = self.free_slots(job.queue);
        debug_assert!(slots.len() >= convert::usize_from_u32(job.midplanes));
        let allocation: Vec<(RackId, u8)> = slots
            .into_iter()
            .take(convert::usize_from_u32(job.midplanes))
            .collect();
        for &(rack, mp) in &allocation {
            self.busy[rack.index()][usize::from(mp)] = true;
        }
        let ends = now + job.walltime;
        let waited = (now - job.submitted).as_seconds().max(0);
        self.running.push(RunningJob {
            job,
            started: now,
            ends,
            allocation,
        });
        if backfilled {
            self.stats.started_backfill += 1;
            sink.add(obs_keys::STARTED_BACKFILL, 1);
        } else {
            self.stats.started_fcfs += 1;
            sink.add(obs_keys::STARTED_FCFS, 1);
        }
        self.stats.total_wait_seconds += waited;
        let waited_hours = convert::f64_from_u64(u64::try_from(waited).unwrap_or(0)) / 3600.0;
        sink.observe(obs_keys::WAIT_HOURS_DIST, WAIT_HOURS_BOUNDS, waited_hours);
    }

    /// Advances the scheduler to `now`: completes finished jobs, starts
    /// FCFS-eligible jobs, then backfills.
    pub fn step(&mut self, now: SimTime) {
        self.step_observed(now, &mut NoopSink);
    }

    /// [`BackfillScheduler::step`] with an instrumentation sink. With a
    /// [`NoopSink`] every hook is an empty inlined body, so the plain
    /// wrapper compiles to the uninstrumented loop.
    // Midplane slots come from free_slots/allocations, which are built
    // against the same busy table. mira-lint: allow(panic-reachability)
    pub fn step_observed<S: Sink>(&mut self, now: SimTime, sink: &mut S) {
        // Complete.
        let (done, keep): (Vec<RunningJob>, Vec<RunningJob>) =
            self.running.drain(..).partition(|r| r.ends <= now);
        for job in &done {
            for &(rack, mp) in &job.allocation {
                self.busy[rack.index()][usize::from(mp)] = false;
            }
        }
        self.stats.completed += done.len() as u64;
        if !done.is_empty() {
            sink.add(obs_keys::COMPLETED, convert::u64_from_usize(done.len()));
        }
        self.running = keep;

        // FCFS: start from the head while it fits.
        while let Some(head) = self.queue.front() {
            if self.free_slots(head.queue).len() < convert::usize_from_u32(head.midplanes) {
                break;
            }
            let Some(job) = self.queue.pop_front() else {
                break;
            };
            self.start(job, now, false, sink);
        }

        // EASY backfill behind a blocked head.
        if let Some(head) = self.queue.front().cloned() {
            let shadow = self.shadow_time(&head, now);
            let mut i = 1;
            while i < self.queue.len() {
                let candidate = self.queue[i].clone();
                let fits = self.free_slots(candidate.queue).len()
                    >= convert::usize_from_u32(candidate.midplanes);
                // EASY rule: a backfilled job must end before the head's
                // reservation, or not touch the head's queue partition.
                let head_partition_disjoint = candidate.queue != head.queue
                    && (candidate.queue == Queue::ProdLong) != (head.queue == Queue::ProdLong);
                let ok = fits && (now + candidate.walltime <= shadow || head_partition_disjoint);
                if ok {
                    let Some(job) = self.queue.remove(i) else {
                        break;
                    };
                    self.start(job, now, true, sink);
                } else {
                    i += 1;
                }
            }
        }
        sink.gauge(
            obs_keys::QUEUE_DEPTH,
            convert::f64_from_usize(self.queue.len()),
        );
    }

    /// Earliest time the queue head could start, given running jobs'
    /// declared walltimes.
    fn shadow_time(&self, head: &Job, now: SimTime) -> SimTime {
        let mut free = convert::u32_from_usize(self.free_slots(head.queue).len());
        if free >= head.midplanes {
            return now;
        }
        let mut ends: Vec<(SimTime, u32)> = self
            .running
            .iter()
            .map(|r| {
                let relevant = convert::u32_from_usize(
                    r.allocation
                        .iter()
                        .filter(|(rack, _)| Self::allowed(head.queue, *rack))
                        .count(),
                );
                (r.ends, relevant)
            })
            .filter(|(_, n)| *n > 0)
            .collect();
        ends.sort_by_key(|(t, _)| *t);
        for (t, n) in ends {
            free += n;
            if free >= head.midplanes {
                return t;
            }
        }
        // Head can never fit (larger than its partition): park far out.
        now + Duration::from_days(365)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobGenerator, Program};
    use mira_timeseries::Date;

    fn job(id: u64, queue: Queue, midplanes: u32, hours: i64, t: SimTime) -> Job {
        Job {
            id,
            program: Program::Incite,
            queue,
            midplanes,
            walltime: Duration::from_hours(hours),
            intensity: 0.7,
            submitted: t,
        }
    }

    fn t0() -> SimTime {
        SimTime::from_date(Date::new(2016, 5, 2))
    }

    #[test]
    fn starts_and_completes_jobs() {
        let mut s = BackfillScheduler::new();
        s.submit(job(1, Queue::ProdShort, 4, 2, t0()));
        s.step(t0());
        assert_eq!(s.running().len(), 1);
        assert!((s.utilization() - 4.0 / 96.0).abs() < 1e-12);
        s.step(t0() + Duration::from_hours(3));
        assert_eq!(s.running().len(), 0);
        assert_eq!(s.stats().completed, 1);
        assert_eq!(s.utilization(), 0.0);
    }

    #[test]
    fn prod_long_lands_on_row_zero() {
        let mut s = BackfillScheduler::new();
        s.submit(job(1, Queue::ProdLong, 8, 12, t0()));
        s.step(t0());
        assert_eq!(s.running().len(), 1);
        assert!(s.running()[0]
            .allocation
            .iter()
            .all(|(rack, _)| rack.row() == 0));
    }

    #[test]
    fn backfill_fills_behind_blocked_head() {
        let mut s = BackfillScheduler::new();
        // Fill rows 1-2 almost completely (64 midplanes): 60 busy for 10 h.
        s.submit(job(1, Queue::ProdShort, 60, 10, t0()));
        s.step(t0());
        // Head needs 8 midplanes -> blocked (only 4 free).
        s.submit(job(2, Queue::ProdShort, 8, 5, t0()));
        // Short job fits in the hole and ends before the 10 h shadow.
        s.submit(job(3, Queue::ProdShort, 2, 3, t0()));
        s.step(t0() + Duration::from_minutes(5));
        let stats = s.stats();
        assert_eq!(stats.started_backfill, 1, "{stats:?}");
        assert_eq!(s.queued(), 1, "head still waiting");
    }

    #[test]
    fn backfill_does_not_delay_head() {
        let mut s = BackfillScheduler::new();
        s.submit(job(1, Queue::ProdShort, 60, 4, t0()));
        s.step(t0());
        s.submit(job(2, Queue::ProdShort, 8, 5, t0()));
        // Candidate fits the hole but runs 12 h — past the 4 h shadow.
        s.submit(job(3, Queue::ProdShort, 2, 12, t0()));
        s.step(t0() + Duration::from_minutes(5));
        assert_eq!(s.stats().started_backfill, 0);
        assert_eq!(s.queued(), 2);
    }

    #[test]
    fn drain_kills_jobs_and_blocks_allocation() {
        let mut s = BackfillScheduler::new();
        s.submit(job(1, Queue::ProdShort, 64, 10, t0()));
        s.step(t0());
        assert_eq!(s.running().len(), 1);
        let victim = s.running()[0].allocation[0].0;
        let killed = s.drain_rack(victim, t0() + Duration::from_hours(1));
        assert_eq!(killed, 1);
        assert_eq!(s.running().len(), 0);
        // The drained rack cannot be re-allocated.
        s.submit(job(2, Queue::ProdShort, 64, 1, t0()));
        s.step(t0() + Duration::from_hours(1));
        assert_eq!(s.queued(), 1, "64 midplanes no longer available");
        s.restore_rack(victim);
        s.step(t0() + Duration::from_hours(2));
        assert_eq!(s.queued(), 0);
    }

    #[test]
    fn oversized_head_parks_without_blocking_backfill_forever() {
        let mut s = BackfillScheduler::new();
        // 40 > 32 row-0 midplanes: can never run.
        s.submit(job(1, Queue::ProdLong, 64, 1, t0()));
        s.submit(job(2, Queue::ProdShort, 2, 1, t0()));
        s.step(t0());
        // The short job backfills because it uses a disjoint partition.
        assert_eq!(s.stats().started_backfill, 1);
    }

    #[test]
    fn wait_times_are_tracked() {
        let mut s = BackfillScheduler::new();
        // Saturate rows 1-2 so the next job queues.
        s.submit(job(1, Queue::ProdShort, 64, 5, t0()));
        s.step(t0());
        s.submit(job(2, Queue::ProdShort, 4, 1, t0()));
        s.step(t0());
        assert_eq!(s.stats().started(), 1, "second job queued");
        // After the first completes, the queued job starts 5 h late.
        s.step(t0() + Duration::from_hours(5));
        assert_eq!(s.stats().started(), 2);
        assert_eq!(s.stats().mean_wait(), Duration::from_hours(5) / 2);
    }

    #[test]
    fn observed_step_mirrors_stats_and_plain_path() {
        use mira_obs::{Collector, ManualClock};

        let mut plain = BackfillScheduler::new();
        let mut observed = BackfillScheduler::new();
        let mut sink = Collector::with_clock(ManualClock::new());
        let mut generator = JobGenerator::new(9);
        let mut t = t0();
        for _ in 0..48 {
            for j in generator.submissions(t, Duration::from_hours(1)) {
                plain.submit(j.clone());
                observed.submit_observed(j, &mut sink);
            }
            plain.step(t);
            observed.step_observed(t, &mut sink);
            t += Duration::from_hours(1);
        }
        assert_eq!(plain, observed, "instrumentation must not change behaviour");

        let m = sink.metrics();
        let stats = observed.stats();
        assert_eq!(m.counter(obs_keys::STARTED_FCFS), Some(stats.started_fcfs));
        assert_eq!(
            m.counter(obs_keys::STARTED_BACKFILL).unwrap_or(0),
            stats.started_backfill
        );
        assert_eq!(m.counter(obs_keys::COMPLETED).unwrap_or(0), stats.completed);
        assert!(m.counter(obs_keys::SUBMITTED).unwrap_or(0) >= stats.started());
        // One wait observation per started job.
        let wait = m.histogram(obs_keys::WAIT_HOURS_DIST).expect("histogram");
        assert_eq!(wait.count(), stats.started());
        // One queue-depth sample per step.
        let (depth_samples, _) = m.gauge_stats(obs_keys::QUEUE_DEPTH).expect("gauge");
        assert_eq!(depth_samples, 48);
    }

    #[test]
    fn observed_drain_counts_kills() {
        use mira_obs::{Collector, ManualClock};

        let mut s = BackfillScheduler::new();
        let mut sink = Collector::with_clock(ManualClock::new());
        s.submit(job(1, Queue::ProdShort, 64, 10, t0()));
        s.step(t0());
        let victim = s.running()[0].allocation[0].0;
        let killed = s.drain_rack_observed(victim, t0(), &mut sink);
        assert_eq!(killed, 1);
        assert_eq!(
            sink.metrics().counter(obs_keys::DRAIN_KILLS),
            Some(1),
            "drain kills land in the sink"
        );
    }

    #[test]
    fn sustained_load_reaches_high_utilization() {
        let mut s = BackfillScheduler::new();
        let mut generator = JobGenerator::new(77);
        let mut t = t0();
        for _ in 0..(24 * 14) {
            for j in generator.submissions(t, Duration::from_hours(1)) {
                s.submit(j);
            }
            s.step(t);
            t += Duration::from_hours(1);
        }
        assert!(
            s.utilization() > 0.6,
            "two weeks of arrivals should saturate: {}",
            s.utilization()
        );
    }
}
