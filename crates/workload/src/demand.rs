//! System-level demand: the utilization and job-mix trajectory.

use serde::{Deserialize, Serialize};

use mira_timeseries::{Date, Month, SimTime};
use mira_units::convert;
use mira_weather::{FractalCursor, NoiseCursor, ValueNoise};

use crate::maintenance::MaintenanceSchedule;

/// Cursor bundle for [`DemandModel::sample_with`]: noise cursors for the
/// four demand noise streams plus the production-period bounds.
///
/// Every cached value is a pure function of the model's constants or of
/// `(seed, lattice cell)`, so cursor-assisted sampling is bit-identical
/// to [`DemandModel::sample`] from any prior cursor state.
#[derive(Debug, Clone)]
pub struct DemandCursor {
    progress: Option<(i64, i64)>,
    util: FractalCursor,
    drop: NoiseCursor,
    drain: NoiseCursor,
    intensity: FractalCursor,
}

/// The system-wide workload state at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemDemand {
    /// Fraction of the 49,152 nodes running jobs, in `[0, 1]`.
    pub utilization: f64,
    /// Mean CPU intensity of the running job mix, in `[0, 1]`.
    pub intensity: f64,
    /// Whether a maintenance window is active.
    pub in_maintenance: bool,
}

/// Models Mira's system-level utilization and job-mix trajectory
/// 2014–2019.
///
/// Components:
/// - a year-over-year ramp (≈80 % → ≈93 %, Fig. 2b) as the INCITE/ALCC
///   program mix matured;
/// - the allocation-year seasonality (H2 heavier than H1, December peak,
///   April–May trough — Fig. 4b);
/// - transient drops: rack reservations that go unused, large-job drains
///   the backfill cannot fill, and occasional outages (Fig. 2's
///   downward spikes);
/// - Monday maintenance windows with burner jobs: utilization dips
///   slightly, CPU intensity collapses (Fig. 5).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DemandModel {
    maintenance: MaintenanceSchedule,
    util_noise: ValueNoise,
    drop_noise: ValueNoise,
    drain_noise: ValueNoise,
    intensity_noise: ValueNoise,
}

impl DemandModel {
    /// Creates the demand model for a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            maintenance: MaintenanceSchedule::mira(),
            util_noise: ValueNoise::new(seed ^ 0x07D0_11A3, 9.0 * 86_400.0),
            drop_noise: ValueNoise::new(seed ^ 0xD10D_0000, 2.5 * 86_400.0),
            drain_noise: ValueNoise::new(seed ^ 0xD2A1_4000, 1.2 * 86_400.0),
            intensity_noise: ValueNoise::new(seed ^ 0x1247_E517, 6.0 * 86_400.0),
        }
    }

    /// The maintenance schedule in force.
    #[must_use]
    pub fn maintenance(&self) -> &MaintenanceSchedule {
        &self.maintenance
    }

    /// Fraction of the production period elapsed at `t`, clamped to
    /// `[0, 1]`.
    #[must_use]
    pub fn production_progress(t: SimTime) -> f64 {
        let start = SimTime::from_date(production_start());
        let end = SimTime::from_date(Date::new(2020, 1, 1));
        (convert::f64_from_i64((t - start).as_seconds())
            / convert::f64_from_i64((end - start).as_seconds()))
        .clamp(0.0, 1.0)
    }

    /// Allocation-year seasonal factor on utilization for a month.
    ///
    /// INCITE's January–December allocation year drives a second-half
    /// surge peaking in December; ALCC's July start adds the July
    /// shoulder. April–May are the trough.
    #[must_use]
    pub fn month_factor(month: Month) -> f64 {
        match month {
            Month::January => 0.990,
            Month::February => 0.985,
            Month::March => 0.982,
            Month::April => 0.972,
            Month::May => 0.972,
            Month::June => 0.985,
            Month::July => 1.008,
            Month::August => 1.000,
            Month::September => 1.005,
            Month::October => 1.012,
            Month::November => 1.018,
            Month::December => 1.032,
        }
    }

    /// Samples the system demand at `t`.
    #[must_use]
    pub fn sample(&self, t: SimTime) -> SystemDemand {
        let secs = convert::f64_from_i64(t.epoch_seconds());
        let progress = Self::production_progress(t);
        let month = t.date().month();

        // Year-over-year ramp with allocation-year seasonality.
        let mut util = (0.81 + 0.135 * progress) * Self::month_factor(month);
        util += self.util_noise.fractal(secs, 3) * 0.025;

        // Transient drops: reservations/outages (deep, day-scale) and
        // large-job drains (shallower, hour-scale).
        let d = self.drop_noise.sample(secs);
        if d > 0.66 {
            util *= 1.0 - (d - 0.66) / 0.34 * 0.40;
        }
        let drain = self.drain_noise.sample(secs + 5.0e7);
        if drain > 0.78 {
            util *= 1.0 - (drain - 0.78) / 0.22 * 0.18;
        }

        // Job-mix CPU intensity: drifts up over the years (denser, better
        // optimized codes), slightly heavier in H2.
        let mut intensity = 0.66
            + 0.085 * progress
            + if month.is_second_half() { 0.008 } else { 0.0 }
            + self.intensity_noise.fractal(secs + 9.0e7, 2) * 0.02;

        let in_maintenance = self.maintenance.in_window(t);
        if in_maintenance {
            // Drain user jobs; burner jobs keep nodes nominally busy but
            // nearly idle in CPU terms.
            util *= 0.91;
            intensity = 0.24;
        }

        SystemDemand {
            utilization: util.clamp(0.0, 1.0),
            intensity: intensity.clamp(0.0, 1.0),
            in_maintenance,
        }
    }

    /// Builds the cursor bundle for [`Self::sample_with`].
    #[must_use]
    pub fn cursor(&self) -> DemandCursor {
        DemandCursor {
            progress: None,
            util: self.util_noise.fractal_cursor(3),
            drop: NoiseCursor::default(),
            drain: NoiseCursor::default(),
            intensity: self.intensity_noise.fractal_cursor(2),
        }
    }

    /// [`Self::sample`] with the civil date of `t` already in hand and a
    /// [`DemandCursor`] memoizing the noise lattice values; bit-identical
    /// to the cold path.
    ///
    /// `date` must be the civil date of `t` (the sweep hot path derives
    /// it once per step and shares it across consumers).
    #[must_use]
    pub fn sample_with(&self, t: SimTime, date: Date, cursor: &mut DemandCursor) -> SystemDemand {
        let secs = convert::f64_from_i64(t.epoch_seconds());
        let (start, end) = *cursor.progress.get_or_insert_with(|| {
            (
                SimTime::from_date(production_start()).epoch_seconds(),
                SimTime::from_date(Date::new(2020, 1, 1)).epoch_seconds(),
            )
        });
        let progress = (convert::f64_from_i64(t.epoch_seconds() - start)
            / convert::f64_from_i64(end - start))
        .clamp(0.0, 1.0);
        let month = date.month();

        let mut util = (0.81 + 0.135 * progress) * Self::month_factor(month);
        util += self.util_noise.fractal_with(secs, &mut cursor.util) * 0.025;

        let d = self.drop_noise.sample_with(secs, &mut cursor.drop);
        if d > 0.66 {
            util *= 1.0 - (d - 0.66) / 0.34 * 0.40;
        }
        let drain = self
            .drain_noise
            .sample_with(secs + 5.0e7, &mut cursor.drain);
        if drain > 0.78 {
            util *= 1.0 - (drain - 0.78) / 0.22 * 0.18;
        }

        let mut intensity = 0.66
            + 0.085 * progress
            + if month.is_second_half() { 0.008 } else { 0.0 }
            + self
                .intensity_noise
                .fractal_with(secs + 9.0e7, &mut cursor.intensity)
                * 0.02;

        let in_maintenance = self.maintenance.in_window_on(date, t);
        if in_maintenance {
            util *= 0.91;
            intensity = 0.24;
        }

        SystemDemand {
            utilization: util.clamp(0.0, 1.0),
            intensity: intensity.clamp(0.0, 1.0),
            in_maintenance,
        }
    }
}

/// First day of Mira's production period (2014-01-01).
#[must_use]
pub fn production_start() -> Date {
    Date::new(2014, 1, 1)
}

/// First day after Mira's production period (2020-01-01).
#[must_use]
pub fn production_end() -> Date {
    Date::new(2020, 1, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mira_timeseries::Duration;

    fn avg_util(model: &DemandModel, year: i32, month: u8) -> f64 {
        let mut t = SimTime::from_date(Date::new(year, month, 1));
        let mut total = 0.0;
        let mut n = 0u32;
        for _ in 0..(27 * 24) {
            total += model.sample(t).utilization;
            t += Duration::from_hours(1);
            n += 1;
        }
        total / f64::from(n)
    }

    #[test]
    fn utilization_ramps_over_years() {
        let m = DemandModel::new(5);
        let early = avg_util(&m, 2014, 3);
        let late = avg_util(&m, 2019, 10);
        assert!((0.72..0.85).contains(&early), "2014 ≈ 0.80, got {early}");
        assert!((0.86..0.97).contains(&late), "2019 ≈ 0.93, got {late}");
        assert!(late > early + 0.06);
    }

    #[test]
    fn december_beats_may() {
        let m = DemandModel::new(5);
        let may = avg_util(&m, 2017, 5);
        let dec = avg_util(&m, 2017, 12);
        assert!(dec > may + 0.02, "dec {dec} vs may {may}");
    }

    #[test]
    fn maintenance_collapses_intensity() {
        let m = DemandModel::new(5);
        // Find a maintenance instant.
        let mut t = SimTime::from_date(Date::new(2015, 1, 1));
        let end = SimTime::from_date(Date::new(2015, 3, 1));
        let mut found = false;
        while t < end {
            let d = m.sample(t);
            if d.in_maintenance {
                assert!(d.intensity < 0.3);
                found = true;
                break;
            }
            t += Duration::from_minutes(30);
        }
        assert!(found, "no maintenance window found in two months");
    }

    #[test]
    fn demand_stays_in_unit_interval() {
        let m = DemandModel::new(5);
        let mut t = SimTime::from_date(Date::new(2014, 1, 1));
        let end = SimTime::from_date(Date::new(2020, 1, 1));
        while t < end {
            let d = m.sample(t);
            assert!((0.0..=1.0).contains(&d.utilization));
            assert!((0.0..=1.0).contains(&d.intensity));
            t += Duration::from_hours(13);
        }
    }

    #[test]
    fn transient_drops_exist() {
        let m = DemandModel::new(5);
        let mut t = SimTime::from_date(Date::new(2016, 1, 1));
        let end = SimTime::from_date(Date::new(2017, 1, 1));
        let mut min = f64::INFINITY;
        while t < end {
            min = min.min(m.sample(t).utilization);
            t += Duration::from_hours(1);
        }
        assert!(
            min < 0.62,
            "expected at least one deep transient, min {min}"
        );
    }

    #[test]
    fn progress_clamps() {
        assert_eq!(
            DemandModel::production_progress(SimTime::from_date(Date::new(2010, 1, 1))),
            0.0
        );
        assert_eq!(
            DemandModel::production_progress(SimTime::from_date(Date::new(2022, 1, 1))),
            1.0
        );
    }
}
