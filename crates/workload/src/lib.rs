//! Job generator and rack-level workload model with allocation-year
//! cycles.
//!
//! Mira's utilization structure comes from policy, not physics:
//!
//! - **Allocation years** — INCITE projects run January–December, ALCC
//!   July–June, and users burn their remaining core-hours near their
//!   deadline, so utilization (and with it power) is higher in the second
//!   half of the calendar year, peaking in December (Fig. 4).
//! - **Monday maintenance** — scheduled windows start 9 AM Mondays and
//!   run 6–10 hours; user jobs drain and low-intensity *burner jobs*
//!   keep the racks warm (cold inlet coolant damages idle CPUs), so
//!   utilization dips slightly but power dips harder (Fig. 5).
//! - **Queue geometry** — `prod-long` capability jobs land on row 0,
//!   making it the hottest row; per-rack job mix (CPU intensity)
//!   decorrelates power from utilization down to the paper's 0.45
//!   (Fig. 6).
//!
//! The crate offers two layers: the statistical [`WorkloadModel`] the
//! six-year telemetry simulator runs on, and a genuine job-level
//! [`scheduler::BackfillScheduler`] (FCFS + EASY backfill over the rack
//! grid) for experiments that need discrete jobs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod demand;
pub mod elastic;
pub mod job;
pub mod maintenance;
pub mod model;
pub mod scheduler;
pub mod spatial;

pub use demand::{DemandCursor, DemandModel, SystemDemand};
pub use elastic::{hole_filling_experiment, ElasticPool, HoleFillingReport};
pub use job::{Job, JobGenerator, Program};
pub use maintenance::MaintenanceSchedule;
pub use model::{RackLoad, WorkloadCursor, WorkloadModel};
pub use scheduler::{BackfillScheduler, SchedulerStats};
pub use spatial::{RackUsageProfile, WobbleCursor};
