//! Discrete jobs and the job generator.
//!
//! Mira ran INCITE and ALCC capability jobs in Blue Gene/Q partitions:
//! powers of two of midplanes (512 nodes each). The generator reproduces
//! the allocation-year pressure — submission rates climb as each
//! program's deadline approaches.

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use mira_facility::Queue;
use mira_timeseries::{Duration, Month, SimTime};
use mira_units::convert;

/// Allocation program a job belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Program {
    /// INCITE: allocation year January–December; highest priority and
    /// largest allocations.
    Incite,
    /// ALCC: allocation year July–June.
    Alcc,
    /// Director's discretionary projects.
    Discretionary,
}

impl Program {
    /// Deadline pressure for this program in `month`: how close the
    /// month is to the end of the program's allocation year, in
    /// `[0, 1]`.
    #[must_use]
    pub fn deadline_pressure(self, month: Month) -> f64 {
        // Months remaining in the allocation year (0 in the final month).
        let pos = f64::from(match self {
            // Jan (1) is month 0 of the INCITE year.
            Program::Incite => month.number() - 1,
            // Jul (7) is month 0 of the ALCC year.
            Program::Alcc => (month.number() + 5) % 12,
            Program::Discretionary => return 0.3,
        });
        pos / 11.0
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Program::Incite => "INCITE",
            Program::Alcc => "ALCC",
            Program::Discretionary => "discretionary",
        };
        f.write_str(name)
    }
}

/// A batch job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Monotonically increasing id.
    pub id: u64,
    /// Owning allocation program.
    pub program: Program,
    /// Target queue.
    pub queue: Queue,
    /// Requested midplanes (512 nodes each), a power of two.
    pub midplanes: u32,
    /// Requested walltime.
    pub walltime: Duration,
    /// CPU intensity of the job, `[0, 1]`.
    pub intensity: f64,
    /// Submission time.
    pub submitted: SimTime,
}

impl Job {
    /// Requested node count.
    #[must_use]
    pub fn nodes(&self) -> u32 {
        self.midplanes * 512
    }
}

/// Generates a stream of jobs with Mira-like size/walltime/mix
/// distributions and allocation-year submission pressure.
#[derive(Debug)]
pub struct JobGenerator {
    rng: StdRng,
    next_id: u64,
}

impl JobGenerator {
    /// Creates a seeded generator.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            next_id: 1,
        }
    }

    /// Expected submissions per hour at `t` (rises toward allocation
    /// deadlines).
    #[must_use]
    pub fn arrival_rate(&self, t: SimTime) -> f64 {
        let month = t.date().month();
        let incite = Program::Incite.deadline_pressure(month);
        let alcc = Program::Alcc.deadline_pressure(month);
        // Base ≈6 jobs/hour, up to ≈10 near stacked deadlines.
        6.0 * (1.0 + 0.45 * incite + 0.25 * alcc)
    }

    /// Draws the jobs submitted during `[t, t + dt)` (Poisson thinning at
    /// hourly granularity).
    pub fn submissions(&mut self, t: SimTime, dt: Duration) -> Vec<Job> {
        let expected = self.arrival_rate(t) * dt.as_hours();
        // Poisson sample via inversion for small means, normal approx
        // otherwise.
        let count = if expected < 30.0 {
            let l = (-expected).exp();
            let mut k = 0u32;
            let mut p = 1.0;
            loop {
                p *= self.rng.random::<f64>();
                if p <= l {
                    break k;
                }
                k += 1;
            }
        } else {
            let g: f64 = self.sample_gaussian();
            convert::u32_from_f64_round((expected + g * expected.sqrt()).max(0.0))
        };
        (0..count).map(|_| self.draw_job(t)).collect()
    }

    fn sample_gaussian(&mut self) -> f64 {
        // Box-Muller.
        let u1: f64 = self.rng.random::<f64>().max(1e-12);
        let u2: f64 = self.rng.random();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Draws a single job submitted at `t`.
    pub fn draw_job(&mut self, t: SimTime) -> Job {
        let month = t.date().month();
        let program = {
            let r: f64 = self.rng.random();
            // INCITE dominates H2, ALCC H1; discretionary is a thin tail.
            let incite_share = 0.45 + 0.25 * Program::Incite.deadline_pressure(month);
            if r < incite_share {
                Program::Incite
            } else if r < 0.93 {
                Program::Alcc
            } else {
                Program::Discretionary
            }
        };

        // Partition sizes are powers of two of midplanes, skewed small
        // but with a capability tail (occasionally near-full-machine).
        let size_class: f64 = self.rng.random();
        let midplanes = if size_class < 0.42 {
            1
        } else if size_class < 0.70 {
            2
        } else if size_class < 0.86 {
            4
        } else if size_class < 0.95 {
            8
        } else if size_class < 0.99 {
            16
        } else {
            // Occasional near-full-machine capability run.
            64
        };

        let long = midplanes >= 8 || self.rng.random::<f64>() < 0.2;
        let queue = if long {
            Queue::ProdLong
        } else {
            Queue::ProdShort
        };
        let hours = if long {
            6.0 + self.rng.random::<f64>() * 18.0
        } else {
            0.5 + self.rng.random::<f64>() * 5.5
        };
        let intensity = 0.45 + self.rng.random::<f64>() * 0.5;

        let job = Job {
            id: self.next_id,
            program,
            queue,
            midplanes,
            walltime: Duration::from_seconds(convert::i64_from_f64_floor(hours * 3600.0)),
            intensity,
            submitted: t,
        };
        self.next_id += 1;
        job
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mira_timeseries::Date;

    #[test]
    fn deadline_pressure_shapes() {
        assert_eq!(Program::Incite.deadline_pressure(Month::January), 0.0);
        assert_eq!(Program::Incite.deadline_pressure(Month::December), 1.0);
        assert_eq!(Program::Alcc.deadline_pressure(Month::July), 0.0);
        assert_eq!(Program::Alcc.deadline_pressure(Month::June), 1.0);
        assert!((0.0..=1.0).contains(&Program::Discretionary.deadline_pressure(Month::May)));
    }

    #[test]
    fn arrival_rate_rises_toward_december() {
        let g = JobGenerator::new(1);
        let jan = g.arrival_rate(SimTime::from_date(Date::new(2015, 1, 15)));
        let dec = g.arrival_rate(SimTime::from_date(Date::new(2015, 12, 15)));
        assert!(dec > jan * 1.2, "jan {jan} dec {dec}");
    }

    #[test]
    fn jobs_are_wellformed() {
        let mut g = JobGenerator::new(2);
        let t = SimTime::from_date(Date::new(2016, 9, 1));
        for _ in 0..500 {
            let j = g.draw_job(t);
            assert!(j.midplanes.is_power_of_two());
            assert!(j.midplanes <= 96);
            assert!(j.nodes() == j.midplanes * 512);
            assert!(j.walltime.as_hours() > 0.0 && j.walltime.as_hours() <= 24.0);
            assert!((0.0..=1.0).contains(&j.intensity));
        }
    }

    #[test]
    fn ids_are_unique_and_increasing() {
        let mut g = JobGenerator::new(3);
        let t = SimTime::from_date(Date::new(2016, 9, 1));
        let a = g.draw_job(t);
        let b = g.draw_job(t);
        assert!(b.id > a.id);
    }

    #[test]
    fn submissions_scale_with_window() {
        let mut g = JobGenerator::new(4);
        let t = SimTime::from_date(Date::new(2015, 3, 1));
        let short: usize = (0..50)
            .map(|i| {
                g.submissions(t + Duration::from_hours(i), Duration::from_minutes(30))
                    .len()
            })
            .sum();
        let mut g2 = JobGenerator::new(4);
        let long: usize = (0..50)
            .map(|i| {
                g2.submissions(t + Duration::from_hours(i), Duration::from_hours(2))
                    .len()
            })
            .sum();
        assert!(long > short * 2, "short {short} long {long}");
    }

    #[test]
    fn large_jobs_use_prod_long() {
        let mut g = JobGenerator::new(5);
        let t = SimTime::from_date(Date::new(2016, 9, 1));
        for _ in 0..500 {
            let j = g.draw_job(t);
            if j.midplanes >= 8 {
                assert_eq!(j.queue, Queue::ProdLong);
            }
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Program::Incite.to_string(), "INCITE");
        assert_eq!(Program::Discretionary.to_string(), "discretionary");
    }
}
