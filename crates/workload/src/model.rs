//! The combined rack-level workload model.

use serde::{Deserialize, Serialize};

use mira_facility::RackId;
use mira_timeseries::{Date, SimTime};

use crate::demand::{DemandCursor, DemandModel, SystemDemand};
use crate::spatial::{RackUsageProfile, WobbleCursor};

/// Cursor bundle for the workload hot path: the system-demand cursor
/// plus the per-rack placement-wobble bank.
///
/// Built by [`WorkloadModel::cursor`]; every cached value is a pure
/// function of model constants and lattice cells, so the cursor path is
/// bit-identical to the cold path from any prior state.
#[derive(Debug, Clone)]
pub struct WorkloadCursor {
    demand: DemandCursor,
    wobble: WobbleCursor,
}

/// The workload state of one rack at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RackLoad {
    /// Fraction of the rack's 1,024 nodes running jobs.
    pub utilization: f64,
    /// Mean CPU intensity of the jobs on the rack.
    pub intensity: f64,
}

/// System demand × spatial profile = per-rack load.
///
/// ```
/// use mira_facility::RackId;
/// use mira_timeseries::{Date, SimTime};
/// use mira_workload::WorkloadModel;
///
/// let wl = WorkloadModel::new(42);
/// let t = SimTime::from_date(Date::new(2017, 10, 5));
/// let load = wl.rack_load(t, RackId::new(0, 10));
/// assert!(load.utilization > 0.5);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadModel {
    demand: DemandModel,
    profile: RackUsageProfile,
}

impl WorkloadModel {
    /// Creates the workload model for a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            demand: DemandModel::new(seed),
            profile: RackUsageProfile::mira(seed),
        }
    }

    /// The system-level demand component.
    #[must_use]
    pub fn demand(&self) -> &DemandModel {
        &self.demand
    }

    /// The spatial usage profile.
    #[must_use]
    pub fn profile(&self) -> &RackUsageProfile {
        &self.profile
    }

    /// Samples the system demand at `t`.
    #[must_use]
    pub fn system_demand(&self, t: SimTime) -> SystemDemand {
        self.demand.sample(t)
    }

    /// The load on `rack` at `t`, given an already-sampled system demand
    /// (lets one demand sample be shared across all 48 racks per step).
    #[must_use]
    pub fn rack_load_with(&self, t: SimTime, rack: RackId, demand: &SystemDemand) -> RackLoad {
        let f = self.profile.factors(rack);
        let wobble = self.profile.placement_wobble(rack, t);
        let utilization = (demand.utilization * f.utilization_factor * wobble).clamp(0.0, 1.0);
        // During maintenance every rack runs the same burner mix, so the
        // per-rack intensity structure disappears.
        let intensity = if demand.in_maintenance {
            demand.intensity
        } else {
            (demand.intensity * f.intensity_factor).clamp(0.0, 1.0)
        };
        RackLoad {
            utilization,
            intensity,
        }
    }

    /// The load on `rack` at `t` (samples the system demand internally).
    #[must_use]
    pub fn rack_load(&self, t: SimTime, rack: RackId) -> RackLoad {
        let demand = self.system_demand(t);
        self.rack_load_with(t, rack, &demand)
    }

    /// Builds the cursor bundle for the cached sampling path.
    #[must_use]
    pub fn cursor(&self) -> WorkloadCursor {
        WorkloadCursor {
            demand: self.demand.cursor(),
            wobble: self.profile.wobble_cursor(),
        }
    }

    /// [`Self::system_demand`] through the cursor, with the civil date
    /// of `t` already in hand; bit-identical to the cold path.
    #[must_use]
    pub fn system_demand_with(
        &self,
        t: SimTime,
        date: Date,
        cursor: &mut WorkloadCursor,
    ) -> SystemDemand {
        self.demand.sample_with(t, date, &mut cursor.demand)
    }

    /// [`Self::rack_load_with`] through the rack's wobble cursor;
    /// bit-identical to the cold path.
    #[must_use]
    pub fn rack_load_cached(
        &self,
        t: SimTime,
        rack: RackId,
        demand: &SystemDemand,
        cursor: &mut WorkloadCursor,
    ) -> RackLoad {
        let f = self.profile.factors(rack);
        let wobble = self
            .profile
            .placement_wobble_with(rack, t, &mut cursor.wobble);
        let utilization = (demand.utilization * f.utilization_factor * wobble).clamp(0.0, 1.0);
        let intensity = if demand.in_maintenance {
            demand.intensity
        } else {
            (demand.intensity * f.intensity_factor).clamp(0.0, 1.0)
        };
        RackLoad {
            utilization,
            intensity,
        }
    }

    /// [`Self::rack_load_cached`] for every rack at once: lane `l`
    /// receives rack `l`'s utilization and intensity. Bit-identical to
    /// the scalar path per lane — the wobble lanes share the same cursor
    /// bank, the clamp expressions match, and the maintenance branch is
    /// hoisted out of the lane loop (it depends only on the shared
    /// system demand).
    ///
    /// Lanes are computed for every rack regardless of availability;
    /// callers that zero out down racks (as the sweep does by skipping
    /// them) discard pure values, which cannot perturb any other lane.
    ///
    /// # Panics
    ///
    /// Panics if the output slices differ from the rack count.
    // Raw f64 lanes, same contract as `RackLoad`'s public fields.
    // mira-lint: allow(raw-f64-in-public-api)
    pub fn rack_load_lanes(
        &self,
        t: SimTime,
        demand: &SystemDemand,
        cursor: &mut WorkloadCursor,
        utilization: &mut [f64],
        intensity: &mut [f64],
    ) {
        // The wobble lanes land in `utilization` first (scratch reuse),
        // then each lane folds in the static factors.
        self.profile
            .placement_wobble_lanes_into(t, &mut cursor.wobble, utilization);
        let factors = self.profile.factors_slice();
        // Documented panic contract: one lane per rack.
        // mira-lint: allow(panic-reachability)
        assert_eq!(intensity.len(), factors.len(), "one lane per rack");
        if demand.in_maintenance {
            // Maintenance flattens the per-rack intensity structure.
            intensity.fill(demand.intensity);
            for (u, f) in utilization.iter_mut().zip(factors) {
                *u = (demand.utilization * f.utilization_factor * *u).clamp(0.0, 1.0);
            }
        } else {
            for ((u, i), f) in utilization
                .iter_mut()
                .zip(intensity.iter_mut())
                .zip(factors)
            {
                *u = (demand.utilization * f.utilization_factor * *u).clamp(0.0, 1.0);
                *i = (demand.intensity * f.intensity_factor).clamp(0.0, 1.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mira_timeseries::{Date, Duration};

    #[test]
    fn rack_load_bounded() {
        let wl = WorkloadModel::new(9);
        let mut t = SimTime::from_date(Date::new(2014, 1, 1));
        let end = SimTime::from_date(Date::new(2014, 3, 1));
        while t < end {
            for rack in [RackId::new(0, 0), RackId::new(1, 8), RackId::new(2, 15)] {
                let l = wl.rack_load(t, rack);
                assert!((0.0..=1.0).contains(&l.utilization));
                assert!((0.0..=1.0).contains(&l.intensity));
            }
            t += Duration::from_hours(7);
        }
    }

    #[test]
    fn shared_demand_matches_internal_sampling() {
        let wl = WorkloadModel::new(9);
        let t = SimTime::from_date(Date::new(2018, 6, 1));
        let d = wl.system_demand(t);
        let r = RackId::new(1, 3);
        assert_eq!(wl.rack_load_with(t, r, &d), wl.rack_load(t, r));
    }

    #[test]
    fn mean_rack_utilization_tracks_system_demand() {
        let wl = WorkloadModel::new(9);
        let t = SimTime::from_date(Date::new(2017, 2, 10)) + Duration::from_hours(14);
        let d = wl.system_demand(t);
        let mean: f64 = RackId::all()
            .map(|r| wl.rack_load_with(t, r, &d).utilization)
            .sum::<f64>()
            / 48.0;
        assert!(
            (mean - d.utilization).abs() < 0.05,
            "rack mean {mean} vs system {}",
            d.utilization
        );
    }

    #[test]
    fn cursor_path_is_bit_identical() {
        let wl = WorkloadModel::new(2014);
        let mut cursor = wl.cursor();
        // A fine sweep crossing maintenance Mondays, then jumps
        // (backwards, across years) that must invalidate cleanly.
        let mut t = SimTime::from_date(Date::new(2015, 1, 1));
        for _ in 0..(4 * 288) {
            let date = t.date();
            let cold = wl.system_demand(t);
            assert_eq!(wl.system_demand_with(t, date, &mut cursor), cold);
            for rack in RackId::all() {
                assert_eq!(
                    wl.rack_load_cached(t, rack, &cold, &mut cursor),
                    wl.rack_load_with(t, rack, &cold)
                );
            }
            t += Duration::from_minutes(15);
        }
        for date in [
            Date::new(2014, 1, 1),
            Date::new(2019, 12, 31),
            Date::new(2016, 2, 29),
            Date::new(2014, 6, 2),
        ] {
            let t = SimTime::from_date(date) + Duration::from_hours(10);
            let cold = wl.system_demand(t);
            assert_eq!(wl.system_demand_with(t, t.date(), &mut cursor), cold);
            let r = RackId::new(1, 7);
            assert_eq!(
                wl.rack_load_cached(t, r, &cold, &mut cursor),
                wl.rack_load_with(t, r, &cold)
            );
        }
    }

    #[test]
    fn lane_kernel_matches_cached_path_bitwise() {
        let wl = WorkloadModel::new(2014);
        let mut lane_cursor = wl.cursor();
        let mut scalar_cursor = wl.cursor();
        let mut util = [0.0f64; 48];
        let mut intensity = [0.0f64; 48];
        // Fine sweep crossing maintenance Mondays plus jumps; the lane
        // kernel must match the cached scalar path bit-for-bit.
        let mut t = SimTime::from_date(Date::new(2016, 1, 1));
        let mut saw_maintenance = false;
        for k in 0..(5 * 288) {
            let date = t.date();
            let d = wl.system_demand_with(t, date, &mut lane_cursor);
            assert_eq!(d, wl.system_demand_with(t, date, &mut scalar_cursor));
            saw_maintenance |= d.in_maintenance;
            wl.rack_load_lanes(t, &d, &mut lane_cursor, &mut util, &mut intensity);
            for rack in RackId::all() {
                let cold = wl.rack_load_cached(t, rack, &d, &mut scalar_cursor);
                assert_eq!(util[rack.index()].to_bits(), cold.utilization.to_bits());
                assert_eq!(intensity[rack.index()].to_bits(), cold.intensity.to_bits());
            }
            t += Duration::from_minutes(if k % 7 == 0 { 35 } else { 5 });
        }
        assert!(saw_maintenance, "sweep should cross a maintenance window");
    }

    #[test]
    fn maintenance_flattens_intensity_structure() {
        let wl = WorkloadModel::new(9);
        // Find a maintenance instant.
        let mut t = SimTime::from_date(Date::new(2016, 1, 1));
        loop {
            let d = wl.system_demand(t);
            if d.in_maintenance {
                let a = wl.rack_load_with(t, RackId::new(0, 13), &d);
                let b = wl.rack_load_with(t, RackId::new(2, 0), &d);
                assert_eq!(a.intensity, b.intensity);
                break;
            }
            t += Duration::from_minutes(30);
        }
    }
}
