//! The Monday maintenance schedule.
//!
//! ALCF scheduled Mira maintenance on Mondays starting at 9 AM, lasting
//! 6–10 hours — not every week, but often enough that Mondays are visibly
//! the lightest day in the telemetry (Fig. 5). During a window, user jobs
//! are drained and *burner jobs* run instead: no useful computation, just
//! enough load to keep CPUs warm, because cold inlet coolant against idle
//! silicon caused node damage and post-reboot crashes.

use serde::{Deserialize, Serialize};

use mira_timeseries::{Date, Duration, SimTime, Weekday};
use mira_units::convert;

/// Deterministic biweekly Monday maintenance windows.
///
/// ```
/// use mira_timeseries::{Date, Duration, SimTime};
/// use mira_workload::MaintenanceSchedule;
///
/// let sched = MaintenanceSchedule::mira();
/// // Maintenance only ever happens on Mondays during working hours.
/// let t = SimTime::from_date(Date::new(2015, 6, 3)); // a Wednesday
/// assert!(!sched.in_window(t));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MaintenanceSchedule {
    /// A window starts this many hours after Monday midnight (9 AM).
    start_hour: i64,
    /// Only Mondays whose week index satisfies the cadence get a window.
    cadence_weeks: i64,
}

impl MaintenanceSchedule {
    /// The Mira schedule: every other Monday, 9 AM start.
    #[must_use]
    pub fn mira() -> Self {
        Self {
            start_hour: 9,
            cadence_weeks: 2,
        }
    }

    /// Whether the Monday of the week containing `date` is a maintenance
    /// Monday.
    #[must_use]
    pub fn is_maintenance_monday(&self, date: Date) -> bool {
        if date.weekday() != Weekday::Monday {
            return false;
        }
        // Weeks since the epoch Monday (1970-01-05 was a Monday).
        let week = (date.days_since_epoch() - 4).div_euclid(7);
        week % self.cadence_weeks == 0
    }

    /// Duration of the window starting on the given maintenance Monday:
    /// 6–10 h, varying deterministically week to week.
    #[must_use]
    pub fn window_duration(&self, monday: Date) -> Duration {
        let week = (monday.days_since_epoch() - 4)
            .div_euclid(7)
            .cast_unsigned();
        let h = week.wrapping_mul(0x2545_F491_4F6C_DD1D).rotate_left(23) % 5; // 0..=4
        Duration::from_hours(6 + convert::i64_from_u64(h))
    }

    /// Whether `t` falls inside a maintenance window.
    #[must_use]
    pub fn in_window(&self, t: SimTime) -> bool {
        self.in_window_on(t.date(), t)
    }

    /// [`Self::in_window`] with the civil date of `t` already in hand
    /// (the sweep hot path derives it once per step).
    #[must_use]
    pub fn in_window_on(&self, date: Date, t: SimTime) -> bool {
        if !self.is_maintenance_monday(date) {
            return false;
        }
        let start = SimTime::from_date(date) + Duration::from_hours(self.start_hour);
        let end = start + self.window_duration(date);
        t >= start && t < end
    }

    /// Long-run fraction of all time spent in maintenance windows.
    #[must_use]
    pub fn duty_cycle(&self) -> f64 {
        // Mean window of 8 h on every cadence-th Monday.
        8.0 / (24.0 * 7.0 * convert::f64_from_i64(self.cadence_weeks))
    }
}

impl Default for MaintenanceSchedule {
    fn default() -> Self {
        Self::mira()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_mondays_qualify() {
        let s = MaintenanceSchedule::mira();
        let mut d = Date::new(2015, 3, 1);
        for _ in 0..60 {
            if s.is_maintenance_monday(d) {
                assert_eq!(d.weekday(), Weekday::Monday);
            }
            d = d.plus_days(1);
        }
    }

    #[test]
    fn cadence_is_every_other_monday() {
        let s = MaintenanceSchedule::mira();
        let mut monday = Date::new(2015, 1, 5); // a Monday
        assert_eq!(monday.weekday(), Weekday::Monday);
        let mut pattern = Vec::new();
        for _ in 0..8 {
            pattern.push(s.is_maintenance_monday(monday));
            monday = monday.plus_days(7);
        }
        let count = pattern.iter().filter(|&&b| b).count();
        assert_eq!(count, 4, "half of Mondays: {pattern:?}");
        // Alternating pattern.
        for w in pattern.windows(2) {
            assert_ne!(w[0], w[1]);
        }
    }

    #[test]
    fn window_duration_in_paper_band() {
        let s = MaintenanceSchedule::mira();
        let mut monday = Date::new(2014, 1, 6);
        for _ in 0..100 {
            let d = s.window_duration(monday).as_hours();
            assert!((6.0..=10.0).contains(&d), "duration {d}");
            monday = monday.plus_days(14);
        }
    }

    #[test]
    fn window_times_respected() {
        let s = MaintenanceSchedule::mira();
        // Find a maintenance Monday.
        let mut monday = Date::new(2015, 1, 5);
        while !s.is_maintenance_monday(monday) {
            monday = monday.plus_days(7);
        }
        let base = SimTime::from_date(monday);
        assert!(!s.in_window(base + Duration::from_hours(8)));
        assert!(s.in_window(base + Duration::from_hours(10)));
        let dur = s.window_duration(monday);
        assert!(!s.in_window(base + Duration::from_hours(9) + dur));
    }

    #[test]
    fn duty_cycle_matches_structure() {
        let s = MaintenanceSchedule::mira();
        // Empirical duty cycle over two years of 5-minute samples.
        let mut t = SimTime::from_date(Date::new(2015, 1, 1));
        let end = SimTime::from_date(Date::new(2017, 1, 1));
        let mut hits = 0u64;
        let mut total = 0u64;
        while t < end {
            if s.in_window(t) {
                hits += 1;
            }
            total += 1;
            t += Duration::from_minutes(30);
        }
        let empirical = hits as f64 / total as f64;
        assert!(
            (empirical - s.duty_cycle()).abs() < 0.005,
            "empirical {empirical} vs nominal {}",
            s.duty_cycle()
        );
    }
}
