//! Elastic hole-filling — the paper's Opportunity 1, implemented.
//!
//! "There is a need to develop more robust methods to 'fill in' the idle
//! nodes waiting for a large job to start. State-of-the-art back-filling
//! job scheduling strategies may not be able to fill all such holes …
//! an opportunity for making traditional HPC jobs more elastic to fill
//! such holes exists."
//!
//! [`ElasticPool`] models that opportunity: a reservoir of malleable,
//! instantly-preemptible work (parameter sweeps, serverless-style
//! tasks) that occupies whatever midplanes the rigid scheduler leaves
//! free and vacates the moment a rigid job needs them. Because elastic
//! work never blocks a rigid allocation, it can only raise utilization.
//! [`hole_filling_experiment`] quantifies the uplift over a driven
//! scheduler trace — including a capability-drain event, the exact hole
//! the paper describes.

use serde::{Deserialize, Serialize};

use mira_facility::Queue;
use mira_timeseries::{Duration, SimTime};
use mira_units::convert;

use crate::job::{Job, JobGenerator, Program};
use crate::scheduler::{BackfillScheduler, TOTAL_MIDPLANES};

/// A reservoir of preemptible elastic work.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ElasticPool {
    /// Fraction of free midplanes the pool is allowed to occupy
    /// (operators keep headroom for instant rigid starts).
    pub fill_fraction: f64,
    /// CPU intensity of elastic work (typically lighter than capability
    /// jobs).
    pub intensity: f64,
}

impl ElasticPool {
    /// A conservative production pool: fill 85 % of free midplanes with
    /// light tasks.
    #[must_use]
    pub fn mira() -> Self {
        Self {
            fill_fraction: 0.85,
            intensity: 0.5,
        }
    }

    /// Midplanes the pool would occupy given the rigid scheduler's
    /// current occupancy.
    #[must_use]
    pub fn occupied(&self, scheduler: &BackfillScheduler) -> u32 {
        let busy =
            convert::u32_from_f64_round(scheduler.utilization() * f64::from(TOTAL_MIDPLANES));
        let free = TOTAL_MIDPLANES - busy.min(TOTAL_MIDPLANES);
        convert::u32_from_f64_floor(f64::from(free) * self.fill_fraction.clamp(0.0, 1.0))
    }

    /// Combined utilization with elastic fill.
    #[must_use]
    pub fn combined_utilization(&self, scheduler: &BackfillScheduler) -> f64 {
        let busy = scheduler.utilization() * f64::from(TOTAL_MIDPLANES);
        (busy + f64::from(self.occupied(scheduler))) / f64::from(TOTAL_MIDPLANES)
    }
}

impl Default for ElasticPool {
    fn default() -> Self {
        Self::mira()
    }
}

/// Outcome of the hole-filling experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HoleFillingReport {
    /// Mean rigid-only utilization over the trace.
    pub rigid_utilization: f64,
    /// Mean utilization with the elastic pool filling holes.
    pub elastic_utilization: f64,
    /// Minimum rigid utilization observed (the drain hole's depth).
    pub rigid_minimum: f64,
    /// Minimum combined utilization (how well the hole was filled).
    pub elastic_minimum: f64,
    /// Hours simulated.
    pub hours: u32,
}

impl HoleFillingReport {
    /// Utilization uplift from elastic filling.
    #[must_use]
    pub fn uplift(&self) -> f64 {
        self.elastic_utilization - self.rigid_utilization
    }
}

/// Drives the FCFS+backfill scheduler for `days`, injects a
/// near-full-machine capability job mid-trace (forcing the drain the
/// paper describes), and measures utilization with and without the
/// elastic pool.
#[must_use]
pub fn hole_filling_experiment(seed: u64, days: u32, pool: ElasticPool) -> HoleFillingReport {
    let mut scheduler = BackfillScheduler::new();
    let mut generator = JobGenerator::new(seed);
    let start = SimTime::from_epoch_seconds(1_420_000_000);
    let hours = days * 24;

    let mut rigid_sum = 0.0;
    let mut elastic_sum = 0.0;
    let mut rigid_min = f64::INFINITY;
    let mut elastic_min = f64::INFINITY;

    for h in 0..hours {
        let t = start + Duration::from_hours(i64::from(h));
        for job in generator.submissions(t, Duration::from_hours(1)) {
            scheduler.submit(job);
        }
        // Mid-trace: a near-full-machine capability run arrives and the
        // queue must drain for it.
        if h == hours / 2 {
            scheduler.submit(Job {
                id: u64::MAX,
                program: Program::Incite,
                queue: Queue::ProdLong,
                midplanes: 32,
                walltime: Duration::from_hours(10),
                intensity: 0.9,
                submitted: t,
            });
        }
        scheduler.step(t);

        let rigid = scheduler.utilization();
        let elastic = pool.combined_utilization(&scheduler);
        rigid_sum += rigid;
        elastic_sum += elastic;
        rigid_min = rigid_min.min(rigid);
        elastic_min = elastic_min.min(elastic);
    }

    HoleFillingReport {
        rigid_utilization: rigid_sum / f64::from(hours),
        elastic_utilization: elastic_sum / f64::from(hours),
        rigid_minimum: rigid_min,
        elastic_minimum: elastic_min,
        hours,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_fills_free_midplanes_only() {
        let scheduler = BackfillScheduler::new();
        let pool = ElasticPool::mira();
        // Empty machine: 85 % of 96 midplanes.
        assert_eq!(pool.occupied(&scheduler), 81);
        assert!((pool.combined_utilization(&scheduler) - 81.0 / 96.0).abs() < 1e-9);
    }

    #[test]
    fn fill_fraction_is_clamped() {
        let scheduler = BackfillScheduler::new();
        let pool = ElasticPool {
            fill_fraction: 2.0,
            intensity: 0.5,
        };
        assert_eq!(pool.occupied(&scheduler), 96);
        assert!(pool.combined_utilization(&scheduler) <= 1.0 + 1e-9);
    }

    #[test]
    fn experiment_shows_uplift_and_fills_the_drain() {
        let report = hole_filling_experiment(7, 14, ElasticPool::mira());
        assert!(
            report.rigid_utilization > 0.4,
            "rigid {}",
            report.rigid_utilization
        );
        assert!(
            report.uplift() > 0.03,
            "elastic uplift {} over rigid {}",
            report.uplift(),
            report.rigid_utilization
        );
        // The drain hole is substantially shallower with elastic fill.
        assert!(
            report.elastic_minimum > report.rigid_minimum + 0.1,
            "hole: rigid min {} vs elastic min {}",
            report.rigid_minimum,
            report.elastic_minimum
        );
    }

    #[test]
    fn experiment_is_deterministic() {
        let a = hole_filling_experiment(3, 7, ElasticPool::mira());
        let b = hole_filling_experiment(3, 7, ElasticPool::mira());
        assert_eq!(a, b);
    }
}
